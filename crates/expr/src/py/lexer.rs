//! Indentation-aware tokenizer for the Python subset.
//!
//! Produces `Newline`/`Indent`/`Dedent` tokens from leading whitespace, the
//! way CPython's tokenizer does, and recognizes f-strings (the syntax the
//! paper's `InlinePythonRequirement` leans on), splitting them into literal
//! and expression parts at lex time.

use crate::error::EvalError;

/// One piece of an f-string.
#[derive(Debug, Clone, PartialEq)]
pub enum FPart {
    /// Literal text.
    Lit(String),
    /// Source text of an embedded `{expression}`.
    Expr(String),
}

/// A Python token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Int(i64),
    Float(f64),
    Str(String),
    FString(Vec<FPart>),
    Ident(String),
    // Keywords
    Def,
    Return,
    If,
    Elif,
    Else,
    For,
    While,
    In,
    Not,
    And,
    Or,
    Raise,
    Pass,
    Break,
    Continue,
    True_,
    False_,
    None_,
    Lambda,
    Import,
    // Structure
    Newline,
    Indent,
    Dedent,
    // Punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Dot,
    Colon,
    // Operators
    Plus,
    Minus,
    Star,
    StarStar,
    Slash,
    SlashSlash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    /// A CWL parameter reference `$(path)` embedded in Python code — the
    /// paper's notation for reaching workflow attributes (§V).
    ParamRef(String),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: usize,
}

/// Collapse triple-quoted strings (`"""..."""` / `'''...'''`) into ordinary
/// single-line string literals so the line-based lexer can handle them.
/// Docstrings are the dominant use; embedded newlines become `\n` escapes.
/// Line numbers after a multi-line docstring shift by its height.
fn collapse_triple_quotes(src: &str) -> Result<String, EvalError> {
    if !src.contains("\"\"\"") && !src.contains("'''") {
        return Ok(src.to_string());
    }
    let bytes = src.as_bytes();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    let mut line = 1usize;
    let mut in_str: Option<u8> = None;
    let mut in_comment = false;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            in_comment = false;
            out.push('\n');
            i += 1;
            continue;
        }
        if in_comment {
            out.push(b as char);
            i += 1;
            continue;
        }
        if let Some(q) = in_str {
            if b == b'\\' && i + 1 < bytes.len() {
                out.push_str(&src[i..i + 2]);
                i += 2;
                continue;
            }
            if b == q {
                in_str = None;
            }
            let c = src[i..].chars().next().expect("in-bounds");
            out.push(c);
            i += c.len_utf8();
            continue;
        }
        match b {
            b'#' => {
                in_comment = true;
                out.push('#');
                i += 1;
            }
            b'"' | b'\'' if bytes[i..].starts_with(&[b, b, b]) => {
                let quote = b;
                let start_line = line;
                let mut j = i + 3;
                let mut content = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(EvalError::syntax(
                            "unterminated triple-quoted string",
                            start_line,
                        ));
                    }
                    if bytes[j..].starts_with(&[quote, quote, quote]) {
                        j += 3;
                        break;
                    }
                    let c = src[j..].chars().next().expect("in-bounds");
                    if c == '\n' {
                        line += 1;
                    }
                    content.push(c);
                    j += c.len_utf8();
                }
                // Emit as a single-line escaped string literal.
                out.push('"');
                for c in content.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c => out.push(c),
                    }
                }
                out.push('"');
                i = j;
            }
            b'"' | b'\'' => {
                in_str = Some(b);
                out.push(b as char);
                i += 1;
            }
            _ => {
                let c = src[i..].chars().next().expect("in-bounds");
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
    Ok(out)
}

/// Tokenize Python source into a token stream with INDENT/DEDENT structure.
pub fn lex(raw_src: &str) -> Result<Vec<SpannedTok>, EvalError> {
    let src = &collapse_triple_quotes(raw_src)?;
    let mut out: Vec<SpannedTok> = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    let mut paren_depth = 0usize;

    for (line_idx, raw_line) in src.lines().enumerate() {
        let line_no = line_idx + 1;
        let line = raw_line.strip_suffix('\r').unwrap_or(raw_line);

        // Blank and comment-only lines produce no tokens at all.
        let trimmed = line.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }

        // Indentation handling (suppressed inside brackets).
        if paren_depth == 0 {
            let indent = line.len() - trimmed.len();
            if line[..indent].contains('\t') {
                return Err(EvalError::syntax(
                    "tabs are not allowed in indentation",
                    line_no,
                ));
            }
            let current = *indents.last().expect("indent stack never empty");
            if indent > current {
                indents.push(indent);
                out.push(SpannedTok {
                    tok: Tok::Indent,
                    line: line_no,
                });
            } else {
                while indent < *indents.last().expect("indent stack never empty") {
                    indents.pop();
                    out.push(SpannedTok {
                        tok: Tok::Dedent,
                        line: line_no,
                    });
                }
                if indent != *indents.last().expect("indent stack never empty") {
                    return Err(EvalError::syntax("inconsistent dedent", line_no));
                }
            }
        }

        lex_line(trimmed, line_no, &mut out, &mut paren_depth)?;

        if paren_depth == 0 {
            out.push(SpannedTok {
                tok: Tok::Newline,
                line: line_no,
            });
        }
    }
    if paren_depth > 0 {
        return Err(EvalError::syntax(
            "unterminated bracket at end of source",
            src.lines().count(),
        ));
    }
    while indents.len() > 1 {
        indents.pop();
        out.push(SpannedTok {
            tok: Tok::Dedent,
            line: src.lines().count(),
        });
    }
    Ok(out)
}

fn lex_line(
    s: &str,
    line: usize,
    out: &mut Vec<SpannedTok>,
    paren_depth: &mut usize,
) -> Result<(), EvalError> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' => i += 1,
            b'#' => break,
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = s[start..i].chars().filter(|c| *c != '_').collect();
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| {
                        EvalError::syntax(format!("bad float literal {text:?}"), line)
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| {
                        EvalError::syntax(format!("bad int literal {text:?}"), line)
                    })?)
                };
                out.push(SpannedTok { tok, line });
            }
            b'"' | b'\'' => {
                let (text, len) = lex_string(&s[i..], line)?;
                out.push(SpannedTok {
                    tok: Tok::Str(text),
                    line,
                });
                i += len;
            }
            b'f' | b'F' if bytes.get(i + 1).is_some_and(|c| *c == b'"' || *c == b'\'') => {
                let (parts, len) = lex_fstring(&s[i + 1..], line)?;
                out.push(SpannedTok {
                    tok: Tok::FString(parts),
                    line,
                });
                i += 1 + len;
            }
            b'$' if bytes.get(i + 1) == Some(&b'(') => {
                // `$(inputs.message)` — scan to the balanced close paren.
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < bytes.len() {
                    match bytes[j] {
                        b'(' => depth += 1,
                        b')' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if depth != 0 {
                    return Err(EvalError::syntax(
                        "unterminated $( parameter reference",
                        line,
                    ));
                }
                out.push(SpannedTok {
                    tok: Tok::ParamRef(s[start..j].trim().to_string()),
                    line,
                });
                i = j + 1;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &s[start..i];
                let tok = match word {
                    "def" => Tok::Def,
                    "return" => Tok::Return,
                    "if" => Tok::If,
                    "elif" => Tok::Elif,
                    "else" => Tok::Else,
                    "for" => Tok::For,
                    "while" => Tok::While,
                    "in" => Tok::In,
                    "not" => Tok::Not,
                    "and" => Tok::And,
                    "or" => Tok::Or,
                    "raise" => Tok::Raise,
                    "pass" => Tok::Pass,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "True" => Tok::True_,
                    "False" => Tok::False_,
                    "None" => Tok::None_,
                    "lambda" => Tok::Lambda,
                    "import" | "from" => Tok::Import,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(SpannedTok { tok, line });
            }
            _ => {
                let (tok, len) = lex_punct(&bytes[i..]).ok_or_else(|| {
                    EvalError::syntax(format!("unexpected character {:?}", b as char), line)
                })?;
                match tok {
                    Tok::LParen | Tok::LBracket | Tok::LBrace => *paren_depth += 1,
                    Tok::RParen | Tok::RBracket | Tok::RBrace => {
                        *paren_depth = paren_depth.saturating_sub(1)
                    }
                    _ => {}
                }
                out.push(SpannedTok { tok, line });
                i += len;
            }
        }
    }
    Ok(())
}

/// Lex a plain quoted string starting at `s[0]` (the quote). Returns the
/// decoded text and the number of bytes consumed.
fn lex_string(s: &str, line: usize) -> Result<(String, usize), EvalError> {
    let bytes = s.as_bytes();
    let quote = bytes[0];
    let mut i = 1;
    let mut text = String::new();
    loop {
        if i >= bytes.len() {
            return Err(EvalError::syntax("unterminated string literal", line));
        }
        let c = bytes[i];
        if c == quote {
            return Ok((text, i + 1));
        }
        if c == b'\\' {
            i += 1;
            if i >= bytes.len() {
                return Err(EvalError::syntax("dangling escape", line));
            }
            match bytes[i] {
                b'n' => text.push('\n'),
                b't' => text.push('\t'),
                b'r' => text.push('\r'),
                b'\\' => text.push('\\'),
                b'\'' => text.push('\''),
                b'"' => text.push('"'),
                b'0' => text.push('\0'),
                other => {
                    return Err(EvalError::syntax(
                        format!("unknown escape \\{}", other as char),
                        line,
                    ))
                }
            }
            i += 1;
        } else {
            let ch = s[i..].chars().next().unwrap();
            text.push(ch);
            i += ch.len_utf8();
        }
    }
}

/// Lex an f-string starting at the quote (after the `f` prefix). Splits into
/// literal and `{expression}` parts; `{{`/`}}` are brace escapes.
fn lex_fstring(s: &str, line: usize) -> Result<(Vec<FPart>, usize), EvalError> {
    let bytes = s.as_bytes();
    let quote = bytes[0];
    let mut i = 1;
    let mut parts = Vec::new();
    let mut lit = String::new();
    loop {
        if i >= bytes.len() {
            return Err(EvalError::syntax("unterminated f-string", line));
        }
        let c = bytes[i];
        if c == quote {
            if !lit.is_empty() {
                parts.push(FPart::Lit(lit));
            }
            return Ok((parts, i + 1));
        }
        match c {
            b'{' if bytes.get(i + 1) == Some(&b'{') => {
                lit.push('{');
                i += 2;
            }
            b'}' if bytes.get(i + 1) == Some(&b'}') => {
                lit.push('}');
                i += 2;
            }
            b'}' => return Err(EvalError::syntax("single '}' in f-string", line)),
            b'{' => {
                if !lit.is_empty() {
                    parts.push(FPart::Lit(std::mem::take(&mut lit)));
                }
                // Scan to the matching close brace, respecting nested
                // brackets and string quotes inside the expression.
                let start = i + 1;
                let mut depth = 0usize;
                let mut j = start;
                let mut in_str: Option<u8> = None;
                loop {
                    if j >= bytes.len() {
                        return Err(EvalError::syntax("unterminated '{' in f-string", line));
                    }
                    let b = bytes[j];
                    if let Some(q) = in_str {
                        if b == b'\\' {
                            j += 1;
                        } else if b == q {
                            in_str = None;
                        }
                    } else {
                        match b {
                            b'\'' | b'"' => in_str = Some(b),
                            b'(' | b'[' | b'{' => depth += 1,
                            b')' | b']' => depth = depth.saturating_sub(1),
                            b'}' if depth == 0 => break,
                            b'}' => depth -= 1,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                let expr_src = s[start..j].trim();
                if expr_src.is_empty() {
                    return Err(EvalError::syntax("empty expression in f-string", line));
                }
                parts.push(FPart::Expr(expr_src.to_string()));
                i = j + 1;
            }
            b'\\' => {
                i += 1;
                if i >= bytes.len() {
                    return Err(EvalError::syntax("dangling escape in f-string", line));
                }
                match bytes[i] {
                    b'n' => lit.push('\n'),
                    b't' => lit.push('\t'),
                    b'\\' => lit.push('\\'),
                    b'\'' => lit.push('\''),
                    b'"' => lit.push('"'),
                    other => {
                        return Err(EvalError::syntax(
                            format!("unknown escape \\{} in f-string", other as char),
                            line,
                        ))
                    }
                }
                i += 1;
            }
            _ => {
                let ch = s[i..].chars().next().unwrap();
                lit.push(ch);
                i += ch.len_utf8();
            }
        }
    }
}

fn lex_punct(rest: &[u8]) -> Option<(Tok, usize)> {
    let two: &[(&[u8], Tok)] = &[
        (b"**", Tok::StarStar),
        (b"//", Tok::SlashSlash),
        (b"==", Tok::EqEq),
        (b"!=", Tok::NotEq),
        (b"<=", Tok::Le),
        (b">=", Tok::Ge),
        (b"+=", Tok::PlusAssign),
        (b"-=", Tok::MinusAssign),
        (b"*=", Tok::StarAssign),
        (b"/=", Tok::SlashAssign),
    ];
    for (pat, tok) in two {
        if rest.starts_with(pat) {
            return Some((tok.clone(), 2));
        }
    }
    let one = match rest.first()? {
        b'(' => Tok::LParen,
        b')' => Tok::RParen,
        b'[' => Tok::LBracket,
        b']' => Tok::RBracket,
        b'{' => Tok::LBrace,
        b'}' => Tok::RBrace,
        b',' => Tok::Comma,
        b'.' => Tok::Dot,
        b':' => Tok::Colon,
        b'+' => Tok::Plus,
        b'-' => Tok::Minus,
        b'*' => Tok::Star,
        b'/' => Tok::Slash,
        b'%' => Tok::Percent,
        b'<' => Tok::Lt,
        b'>' => Tok::Gt,
        b'=' => Tok::Assign,
        _ => return None,
    };
    Some((one, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn numbers_int_vs_float() {
        assert_eq!(
            toks("1 2.5 1e3 1_000"),
            vec![
                Tok::Int(1),
                Tok::Float(2.5),
                Tok::Float(1000.0),
                Tok::Int(1000),
                Tok::Newline
            ]
        );
    }

    #[test]
    fn indent_dedent() {
        let ts = toks("if x:\n    y = 1\n    z = 2\nw = 3\n");
        // if x : NEWLINE INDENT y = 1 NEWLINE z = 2 NEWLINE DEDENT w = 3 NEWLINE
        assert!(ts.contains(&Tok::Indent));
        assert!(ts.contains(&Tok::Dedent));
        let indent_pos = ts.iter().position(|t| *t == Tok::Indent).unwrap();
        let dedent_pos = ts.iter().position(|t| *t == Tok::Dedent).unwrap();
        assert!(indent_pos < dedent_pos);
    }

    #[test]
    fn nested_indentation() {
        let ts = toks("def f():\n    if x:\n        return 1\n");
        let indents = ts.iter().filter(|t| **t == Tok::Indent).count();
        let dedents = ts.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(indents, 2);
        assert_eq!(dedents, 2); // closed at EOF
    }

    #[test]
    fn blank_and_comment_lines_ignored() {
        let ts = toks("x = 1\n\n# comment\n   # indented comment\ny = 2\n");
        let newlines = ts.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 2);
        assert!(!ts.contains(&Tok::Indent));
    }

    #[test]
    fn implicit_line_joining_in_brackets() {
        let ts = toks("x = [1,\n     2,\n     3]\ny = 4\n");
        // No INDENT inside the bracketed continuation.
        assert!(!ts.contains(&Tok::Indent));
        let newlines = ts.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn fstring_parts() {
        let ts = toks(r#"f"a{x}b{y.title()}c""#);
        match &ts[0] {
            Tok::FString(parts) => {
                assert_eq!(
                    parts,
                    &vec![
                        FPart::Lit("a".into()),
                        FPart::Expr("x".into()),
                        FPart::Lit("b".into()),
                        FPart::Expr("y.title()".into()),
                        FPart::Lit("c".into()),
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fstring_brace_escapes_and_nesting() {
        let ts = toks(r#"f"{{literal}} {f(a, b['}'])}""#);
        match &ts[0] {
            Tok::FString(parts) => {
                assert_eq!(parts[0], FPart::Lit("{literal} ".into()));
                assert_eq!(parts[1], FPart::Expr("f(a, b['}'])".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fstring_with_paramref() {
        // The paper's notation: f"{capitalize_words($(inputs.message))}"
        let ts = toks(r#"f"{capitalize_words($(inputs.message))}""#);
        match &ts[0] {
            Tok::FString(parts) => {
                assert_eq!(
                    parts,
                    &vec![FPart::Expr("capitalize_words($(inputs.message))".into())]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keywords() {
        assert_eq!(
            toks("def f(): pass"),
            vec![
                Tok::Def,
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::Colon,
                Tok::Pass,
                Tok::Newline
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a ** b // c != d"),
            vec![
                Tok::Ident("a".into()),
                Tok::StarStar,
                Tok::Ident("b".into()),
                Tok::SlashSlash,
                Tok::Ident("c".into()),
                Tok::NotEq,
                Tok::Ident("d".into()),
                Tok::Newline
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("x = 'unterminated").is_err());
        assert!(lex("x = f'{'").is_err());
        assert!(lex("x = f'}'").is_err());
        assert!(lex("if x:\n\ty = 1\n").is_err()); // tab indent
        assert!(lex("x = (1,\n").is_err()); // open bracket at EOF
        assert!(lex("  a = 1\n b = 2\n").is_err()); // inconsistent dedent
        assert!(lex("x = 1 ; y").is_err()); // ';' unsupported
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#"'a\nb'"#)[0], Tok::Str("a\nb".into()));
        assert_eq!(toks(r#""it\"s""#)[0], Tok::Str("it\"s".into()));
    }
}
