//! Operators, builtin functions, and methods for the Python subset.

use super::ast::{CmpOp, PBinOp};
use crate::error::EvalError;
use yamlite::{Map, Value};

/// Python type name for error messages.
pub fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "NoneType",
        Value::Bool(_) => "bool",
        Value::Int(_) => "int",
        Value::Float(_) => "float",
        Value::Str(_) => "str",
        Value::Seq(_) => "list",
        Value::Map(_) => "dict",
    }
}

/// Names treated as exception constructors in `raise` statements.
pub fn is_exception_name(name: &str) -> bool {
    matches!(
        name,
        "Exception"
            | "ValueError"
            | "TypeError"
            | "RuntimeError"
            | "KeyError"
            | "IndexError"
            | "FileNotFoundError"
            | "AssertionError"
            | "NotImplementedError"
    )
}

/// Python `str()` conversion.
pub fn py_str(v: &Value) -> String {
    match v {
        Value::Null => "None".to_string(),
        Value::Bool(b) => if *b { "True" } else { "False" }.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => py_float_str(*f),
        Value::Str(s) => s.clone(),
        Value::Seq(_) | Value::Map(_) => py_repr(v),
    }
}

/// Python `repr()` conversion.
pub fn py_repr(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'")),
        Value::Seq(items) => {
            let inner: Vec<String> = items.iter().map(py_repr).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Map(m) => {
            let inner: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("'{k}': {}", py_repr(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
        other => py_str(other),
    }
}

fn py_float_str(f: f64) -> String {
    if f.is_nan() {
        "nan".into()
    } else if f.is_infinite() {
        if f > 0.0 {
            "inf".into()
        } else {
            "-inf".into()
        }
    } else if f == f.trunc() && f.abs() < 1e16 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

fn as_number(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        _ => None,
    }
}

fn both_ints(l: &Value, r: &Value) -> Option<(i64, i64)> {
    let a = match l {
        Value::Int(i) => *i,
        Value::Bool(b) => *b as i64,
        _ => return None,
    };
    let b = match r {
        Value::Int(i) => *i,
        Value::Bool(b) => *b as i64,
        _ => return None,
    };
    Some((a, b))
}

fn type_err_bin(op: &str, l: &Value, r: &Value) -> EvalError {
    EvalError::type_err(format!(
        "unsupported operand type(s) for {op}: '{}' and '{}'",
        type_name(l),
        type_name(r)
    ))
}

/// Apply a binary arithmetic operator with Python semantics.
pub fn binary(op: PBinOp, l: &Value, r: &Value) -> Result<Value, EvalError> {
    match op {
        PBinOp::Add => match (l, r) {
            (Value::Str(a), Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
            (Value::Seq(a), Value::Seq(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                Ok(Value::Seq(out))
            }
            _ => {
                if let Some((a, b)) = both_ints(l, r) {
                    Ok(Value::Int(a.wrapping_add(b)))
                } else if let (Some(a), Some(b)) = (as_number(l), as_number(r)) {
                    Ok(Value::Float(a + b))
                } else {
                    Err(type_err_bin("+", l, r))
                }
            }
        },
        PBinOp::Sub => {
            if let Some((a, b)) = both_ints(l, r) {
                Ok(Value::Int(a.wrapping_sub(b)))
            } else if let (Some(a), Some(b)) = (as_number(l), as_number(r)) {
                Ok(Value::Float(a - b))
            } else {
                Err(type_err_bin("-", l, r))
            }
        }
        PBinOp::Mul => match (l, r) {
            (Value::Str(s), Value::Int(n)) | (Value::Int(n), Value::Str(s)) => {
                Ok(Value::Str(s.repeat((*n).max(0) as usize)))
            }
            (Value::Seq(s), Value::Int(n)) | (Value::Int(n), Value::Seq(s)) => {
                let n = (*n).max(0) as usize;
                let mut out = Vec::with_capacity(s.len() * n);
                for _ in 0..n {
                    out.extend(s.iter().cloned());
                }
                Ok(Value::Seq(out))
            }
            _ => {
                if let Some((a, b)) = both_ints(l, r) {
                    Ok(Value::Int(a.wrapping_mul(b)))
                } else if let (Some(a), Some(b)) = (as_number(l), as_number(r)) {
                    Ok(Value::Float(a * b))
                } else {
                    Err(type_err_bin("*", l, r))
                }
            }
        },
        PBinOp::Div => {
            let (a, b) = (
                as_number(l).ok_or_else(|| type_err_bin("/", l, r))?,
                as_number(r).ok_or_else(|| type_err_bin("/", l, r))?,
            );
            if b == 0.0 {
                return Err(EvalError::raised("ZeroDivisionError: division by zero"));
            }
            Ok(Value::Float(a / b))
        }
        PBinOp::FloorDiv => {
            if let Some((a, b)) = both_ints(l, r) {
                if b == 0 {
                    return Err(EvalError::raised(
                        "ZeroDivisionError: integer division by zero",
                    ));
                }
                Ok(Value::Int(py_floor_div(a, b)))
            } else if let (Some(a), Some(b)) = (as_number(l), as_number(r)) {
                if b == 0.0 {
                    return Err(EvalError::raised(
                        "ZeroDivisionError: float floor division by zero",
                    ));
                }
                Ok(Value::Float((a / b).floor()))
            } else {
                Err(type_err_bin("//", l, r))
            }
        }
        PBinOp::Mod => {
            if let Some((a, b)) = both_ints(l, r) {
                if b == 0 {
                    return Err(EvalError::raised(
                        "ZeroDivisionError: integer modulo by zero",
                    ));
                }
                Ok(Value::Int(a - py_floor_div(a, b) * b))
            } else if let (Some(a), Some(b)) = (as_number(l), as_number(r)) {
                if b == 0.0 {
                    return Err(EvalError::raised("ZeroDivisionError: float modulo"));
                }
                Ok(Value::Float(a - (a / b).floor() * b))
            } else {
                Err(type_err_bin("%", l, r))
            }
        }
        PBinOp::Pow => {
            if let Some((a, b)) = both_ints(l, r) {
                if (0..63).contains(&b) {
                    if let Some(p) = a.checked_pow(b as u32) {
                        return Ok(Value::Int(p));
                    }
                }
                Ok(Value::Float((a as f64).powf(b as f64)))
            } else if let (Some(a), Some(b)) = (as_number(l), as_number(r)) {
                Ok(Value::Float(a.powf(b)))
            } else {
                Err(type_err_bin("**", l, r))
            }
        }
    }
}

/// Python floor division for i64.
fn py_floor_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Unary negation.
pub fn negate(v: &Value) -> Result<Value, EvalError> {
    match v {
        Value::Int(i) => Ok(Value::Int(-i)),
        Value::Float(f) => Ok(Value::Float(-f)),
        Value::Bool(b) => Ok(Value::Int(-(*b as i64))),
        other => Err(EvalError::type_err(format!(
            "bad operand type for unary -: '{}'",
            type_name(other)
        ))),
    }
}

/// Python comparison (supports ordering, equality, and membership).
pub fn compare(op: CmpOp, l: &Value, r: &Value) -> Result<bool, EvalError> {
    match op {
        CmpOp::Eq => Ok(py_eq(l, r)),
        CmpOp::Ne => Ok(!py_eq(l, r)),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let ord = py_cmp(l, r).ok_or_else(|| {
                EvalError::type_err(format!(
                    "'<' not supported between instances of '{}' and '{}'",
                    type_name(l),
                    type_name(r)
                ))
            })?;
            Ok(match op {
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            })
        }
        CmpOp::In => membership(l, r),
        CmpOp::NotIn => membership(l, r).map(|b| !b),
    }
}

fn membership(needle: &Value, haystack: &Value) -> Result<bool, EvalError> {
    match haystack {
        Value::Str(s) => match needle {
            Value::Str(sub) => Ok(s.contains(sub.as_str())),
            other => Err(EvalError::type_err(format!(
                "'in <string>' requires string as left operand, not {}",
                type_name(other)
            ))),
        },
        Value::Seq(items) => Ok(items.iter().any(|v| py_eq(v, needle))),
        Value::Map(m) => Ok(m.contains_key(&py_str(needle))),
        other => Err(EvalError::type_err(format!(
            "argument of type '{}' is not iterable",
            type_name(other)
        ))),
    }
}

/// Python equality: numeric cross-type equality, deep for containers.
pub fn py_eq(l: &Value, r: &Value) -> bool {
    match (l, r) {
        (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
        (Value::Bool(a), Value::Int(b)) | (Value::Int(b), Value::Bool(a)) => (*a as i64) == *b,
        (Value::Bool(a), Value::Float(b)) | (Value::Float(b), Value::Bool(a)) => {
            (*a as i64 as f64) == *b
        }
        (a, b) => a == b,
    }
}

fn py_cmp(l: &Value, r: &Value) -> Option<std::cmp::Ordering> {
    use std::cmp::Ordering;
    match (l, r) {
        (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
        (Value::Seq(a), Value::Seq(b)) => {
            for (x, y) in a.iter().zip(b.iter()) {
                match py_cmp(x, y)? {
                    Ordering::Equal => continue,
                    other => return Some(other),
                }
            }
            Some(a.len().cmp(&b.len()))
        }
        _ => {
            let (a, b) = (as_number(l)?, as_number(r)?);
            a.partial_cmp(&b)
        }
    }
}

/// Items yielded by `for ... in <v>`.
pub fn iterate(v: &Value) -> Result<Vec<Value>, EvalError> {
    match v {
        Value::Seq(items) => Ok(items.clone()),
        Value::Str(s) => Ok(s.chars().map(|c| Value::Str(c.to_string())).collect()),
        Value::Map(m) => Ok(m.keys().map(Value::str).collect()),
        other => Err(EvalError::type_err(format!(
            "'{}' object is not iterable",
            type_name(other)
        ))),
    }
}

/// Index with Python semantics (negative indices, IndexError/KeyError).
pub fn get_index(obj: &Value, idx: &Value) -> Result<Value, EvalError> {
    match obj {
        Value::Seq(items) => {
            let i = match idx {
                Value::Int(i) => *i,
                other => {
                    return Err(EvalError::type_err(format!(
                        "list indices must be integers, not {}",
                        type_name(other)
                    )))
                }
            };
            let len = items.len() as i64;
            let j = if i < 0 { len + i } else { i };
            if j < 0 || j >= len {
                return Err(EvalError::raised(format!(
                    "IndexError: list index {i} out of range"
                )));
            }
            Ok(items[j as usize].clone())
        }
        Value::Str(s) => {
            let i = match idx {
                Value::Int(i) => *i,
                other => {
                    return Err(EvalError::type_err(format!(
                        "string indices must be integers, not {}",
                        type_name(other)
                    )))
                }
            };
            let chars: Vec<char> = s.chars().collect();
            let len = chars.len() as i64;
            let j = if i < 0 { len + i } else { i };
            if j < 0 || j >= len {
                return Err(EvalError::raised(format!(
                    "IndexError: string index {i} out of range"
                )));
            }
            Ok(Value::Str(chars[j as usize].to_string()))
        }
        Value::Map(m) => {
            let key = py_str(idx);
            m.get(&key)
                .cloned()
                .ok_or_else(|| EvalError::raised(format!("KeyError: '{key}'")))
        }
        other => Err(EvalError::type_err(format!(
            "'{}' object is not subscriptable",
            type_name(other)
        ))),
    }
}

/// Slice `obj[start:end]` for strings and lists.
pub fn get_slice(
    obj: &Value,
    start: Option<&Value>,
    end: Option<&Value>,
) -> Result<Value, EvalError> {
    let bound = |v: Option<&Value>, default: i64| -> Result<i64, EvalError> {
        match v {
            None => Ok(default),
            Some(Value::Int(i)) => Ok(*i),
            Some(other) => Err(EvalError::type_err(format!(
                "slice indices must be integers, not {}",
                type_name(other)
            ))),
        }
    };
    let clamp = |i: i64, len: i64| -> usize {
        let j = if i < 0 { len + i } else { i };
        j.clamp(0, len) as usize
    };
    match obj {
        Value::Seq(items) => {
            let len = items.len() as i64;
            let a = clamp(bound(start, 0)?, len);
            let b = clamp(bound(end, len)?, len);
            Ok(Value::Seq(if a < b {
                items[a..b].to_vec()
            } else {
                Vec::new()
            }))
        }
        Value::Str(s) => {
            let chars: Vec<char> = s.chars().collect();
            let len = chars.len() as i64;
            let a = clamp(bound(start, 0)?, len);
            let b = clamp(bound(end, len)?, len);
            Ok(Value::Str(if a < b {
                chars[a..b].iter().collect()
            } else {
                String::new()
            }))
        }
        other => Err(EvalError::type_err(format!(
            "'{}' object is not sliceable",
            type_name(other)
        ))),
    }
}

fn arg(args: &[Value], i: usize) -> Value {
    args.get(i).cloned().unwrap_or(Value::Null)
}

fn require_args(name: &str, args: &[Value], min: usize, max: usize) -> Result<(), EvalError> {
    if args.len() < min || args.len() > max {
        return Err(EvalError::type_err(format!(
            "{name}() takes {min}..{max} arguments but {} were given",
            args.len()
        )));
    }
    Ok(())
}

const MAX_RANGE: i64 = 10_000_000;

/// Call a builtin function by name.
/// Whether `name` is a builtin function [`call_builtin`] can dispatch.
pub fn is_builtin_name(name: &str) -> bool {
    matches!(
        name,
        "len"
            | "str"
            | "repr"
            | "int"
            | "float"
            | "bool"
            | "abs"
            | "round"
            | "min"
            | "max"
            | "sum"
            | "sorted"
            | "reversed"
            | "range"
            | "enumerate"
            | "list"
            | "type"
            | "print"
    )
}

pub fn call_builtin(
    name: &str,
    args: &[Value],
    printed: &mut Vec<String>,
) -> Result<Value, EvalError> {
    match name {
        "len" => {
            require_args("len", args, 1, 1)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                Value::Seq(s) => Ok(Value::Int(s.len() as i64)),
                Value::Map(m) => Ok(Value::Int(m.len() as i64)),
                other => Err(EvalError::type_err(format!(
                    "object of type '{}' has no len()",
                    type_name(other)
                ))),
            }
        }
        "str" => Ok(Value::Str(py_str(&arg(args, 0)))),
        "repr" => Ok(Value::Str(py_repr(&arg(args, 0)))),
        "int" => match &arg(args, 0) {
            Value::Int(i) => Ok(Value::Int(*i)),
            Value::Float(f) => Ok(Value::Int(f.trunc() as i64)),
            Value::Bool(b) => Ok(Value::Int(*b as i64)),
            Value::Str(s) => s.trim().parse::<i64>().map(Value::Int).map_err(|_| {
                EvalError::raised(format!(
                    "ValueError: invalid literal for int() with base 10: '{s}'"
                ))
            }),
            other => Err(EvalError::type_err(format!(
                "int() argument must be a string or a number, not '{}'",
                type_name(other)
            ))),
        },
        "float" => match &arg(args, 0) {
            Value::Int(i) => Ok(Value::Float(*i as f64)),
            Value::Float(f) => Ok(Value::Float(*f)),
            Value::Bool(b) => Ok(Value::Float(*b as i64 as f64)),
            Value::Str(s) => s.trim().parse::<f64>().map(Value::Float).map_err(|_| {
                EvalError::raised(format!(
                    "ValueError: could not convert string to float: '{s}'"
                ))
            }),
            other => Err(EvalError::type_err(format!(
                "float() argument must be a string or a number, not '{}'",
                type_name(other)
            ))),
        },
        "bool" => Ok(Value::Bool(arg(args, 0).truthy())),
        "abs" => match &arg(args, 0) {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            other => Err(EvalError::type_err(format!(
                "bad operand type for abs(): '{}'",
                type_name(other)
            ))),
        },
        "round" => {
            require_args("round", args, 1, 2)?;
            let n = as_number(&args[0]).ok_or_else(|| {
                EvalError::type_err(format!(
                    "round() argument must be a number, not '{}'",
                    type_name(&args[0])
                ))
            })?;
            if args.len() == 2 {
                let digits = match &args[1] {
                    Value::Int(d) => *d,
                    other => {
                        return Err(EvalError::type_err(format!(
                            "round() second argument must be int, not '{}'",
                            type_name(other)
                        )))
                    }
                };
                let scale = 10f64.powi(digits as i32);
                Ok(Value::Float((n * scale).round() / scale))
            } else {
                Ok(Value::Int(n.round() as i64))
            }
        }
        "min" | "max" => {
            let items: Vec<Value> = if args.len() == 1 {
                iterate(&args[0])?
            } else {
                args.to_vec()
            };
            if items.is_empty() {
                return Err(EvalError::raised(format!(
                    "ValueError: {name}() arg is an empty sequence"
                )));
            }
            let mut best = items[0].clone();
            for item in &items[1..] {
                let ord = py_cmp(item, &best)
                    .ok_or_else(|| EvalError::type_err("values are not comparable".to_string()))?;
                let take = if name == "min" {
                    ord.is_lt()
                } else {
                    ord.is_gt()
                };
                if take {
                    best = item.clone();
                }
            }
            Ok(best)
        }
        "sum" => {
            require_args("sum", args, 1, 2)?;
            let items = iterate(&args[0])?;
            let mut acc = if args.len() == 2 {
                args[1].clone()
            } else {
                Value::Int(0)
            };
            for item in &items {
                acc = binary(PBinOp::Add, &acc, item)?;
            }
            Ok(acc)
        }
        "sorted" => {
            require_args("sorted", args, 1, 1)?;
            let mut items = iterate(&args[0])?;
            let mut err = None;
            items.sort_by(|a, b| {
                py_cmp(a, b).unwrap_or_else(|| {
                    err = Some(EvalError::type_err("values are not comparable"));
                    std::cmp::Ordering::Equal
                })
            });
            if let Some(e) = err {
                return Err(e);
            }
            Ok(Value::Seq(items))
        }
        "reversed" => {
            require_args("reversed", args, 1, 1)?;
            let mut items = iterate(&args[0])?;
            items.reverse();
            Ok(Value::Seq(items))
        }
        "range" => {
            require_args("range", args, 1, 3)?;
            let geti = |v: &Value| -> Result<i64, EvalError> {
                match v {
                    Value::Int(i) => Ok(*i),
                    other => Err(EvalError::type_err(format!(
                        "range() argument must be int, not '{}'",
                        type_name(other)
                    ))),
                }
            };
            let (start, stop, step) = match args.len() {
                1 => (0, geti(&args[0])?, 1),
                2 => (geti(&args[0])?, geti(&args[1])?, 1),
                _ => (geti(&args[0])?, geti(&args[1])?, geti(&args[2])?),
            };
            if step == 0 {
                return Err(EvalError::raised(
                    "ValueError: range() arg 3 must not be zero",
                ));
            }
            // i128 arithmetic avoids overflow on pathological bounds.
            let (start_w, stop_w, step_w) = (start as i128, stop as i128, step as i128);
            let count = if step > 0 {
                ((stop_w - start_w).max(0) + step_w - 1) / step_w
            } else {
                ((start_w - stop_w).max(0) + (-step_w) - 1) / (-step_w)
            };
            if count > MAX_RANGE as i128 {
                return Err(EvalError::type_err(format!(
                    "range of {count} elements exceeds limit"
                )));
            }
            let mut out = Vec::with_capacity(count as usize);
            let mut x = start;
            while (step > 0 && x < stop) || (step < 0 && x > stop) {
                out.push(Value::Int(x));
                x += step;
            }
            Ok(Value::Seq(out))
        }
        "enumerate" => {
            require_args("enumerate", args, 1, 1)?;
            let items = iterate(&args[0])?;
            Ok(Value::Seq(
                items
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| Value::Seq(vec![Value::Int(i as i64), v]))
                    .collect(),
            ))
        }
        "list" => {
            if args.is_empty() {
                return Ok(Value::Seq(Vec::new()));
            }
            Ok(Value::Seq(iterate(&args[0])?))
        }
        "type" => Ok(Value::str(type_name(&arg(args, 0)))),
        "print" => {
            let line = args.iter().map(py_str).collect::<Vec<_>>().join(" ");
            printed.push(line);
            Ok(Value::Null)
        }
        other if is_exception_name(other) => Err(EvalError::type_err(format!(
            "{other}(...) may only be used in a raise statement"
        ))),
        other => Err(EvalError::name(format!("name '{other}' is not defined"))),
    }
}

/// Call a method on a receiver. Returns `(result, Some(new_receiver))` for
/// mutating methods so the evaluator can write the receiver back.
pub fn call_method(
    recv: Value,
    method: &str,
    args: &[Value],
) -> Result<(Value, Option<Value>), EvalError> {
    match recv {
        Value::Str(s) => str_method(&s, method, args).map(|v| (v, None)),
        Value::Seq(items) => list_method(items, method, args),
        Value::Map(m) => dict_method(&m, method, args).map(|v| (v, None)),
        other => Err(EvalError::type_err(format!(
            "'{}' object has no method {method:?}",
            type_name(&other)
        ))),
    }
}

/// Python's str.title(): first alphabetic char of each run capitalized.
fn py_title(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut prev_alpha = false;
    for c in s.chars() {
        if c.is_alphabetic() {
            if prev_alpha {
                out.extend(c.to_lowercase());
            } else {
                out.extend(c.to_uppercase());
            }
            prev_alpha = true;
        } else {
            out.push(c);
            prev_alpha = false;
        }
    }
    out
}

fn str_method(s: &str, method: &str, args: &[Value]) -> Result<Value, EvalError> {
    let str_arg = |i: usize| -> Result<String, EvalError> {
        match arg(args, i) {
            Value::Str(t) => Ok(t),
            other => Err(EvalError::type_err(format!(
                "{method}() argument must be str, not {}",
                type_name(&other)
            ))),
        }
    };
    match method {
        "title" => Ok(Value::Str(py_title(s))),
        "upper" => Ok(Value::Str(s.to_uppercase())),
        "lower" => Ok(Value::Str(s.to_lowercase())),
        "capitalize" => {
            let mut chars = s.chars();
            Ok(Value::Str(match chars.next() {
                Some(first) => {
                    first.to_uppercase().collect::<String>() + &chars.as_str().to_lowercase()
                }
                None => String::new(),
            }))
        }
        "strip" => Ok(Value::str(s.trim())),
        "lstrip" => Ok(Value::str(s.trim_start())),
        "rstrip" => Ok(Value::str(s.trim_end())),
        "split" => {
            if args.is_empty() || args[0].is_null() {
                Ok(Value::Seq(s.split_whitespace().map(Value::str).collect()))
            } else {
                let sep = str_arg(0)?;
                if sep.is_empty() {
                    return Err(EvalError::raised("ValueError: empty separator"));
                }
                Ok(Value::Seq(s.split(sep.as_str()).map(Value::str).collect()))
            }
        }
        "splitlines" => Ok(Value::Seq(s.lines().map(Value::str).collect())),
        "join" => {
            let items = iterate(&arg(args, 0))?;
            let mut parts = Vec::with_capacity(items.len());
            for item in &items {
                match item {
                    Value::Str(t) => parts.push(t.clone()),
                    other => {
                        return Err(EvalError::type_err(format!(
                            "sequence item: expected str instance, {} found",
                            type_name(other)
                        )))
                    }
                }
            }
            Ok(Value::Str(parts.join(s)))
        }
        "startswith" => Ok(Value::Bool(s.starts_with(&str_arg(0)?))),
        "endswith" => Ok(Value::Bool(s.ends_with(&str_arg(0)?))),
        "replace" => Ok(Value::Str(s.replace(&str_arg(0)?, &str_arg(1)?))),
        "find" => {
            let needle = str_arg(0)?;
            Ok(Value::Int(match s.find(&needle) {
                Some(byte_pos) => s[..byte_pos].chars().count() as i64,
                None => -1,
            }))
        }
        "count" => {
            let needle = str_arg(0)?;
            if needle.is_empty() {
                return Ok(Value::Int(s.chars().count() as i64 + 1));
            }
            Ok(Value::Int(s.matches(&needle).count() as i64))
        }
        "zfill" => {
            let width = match arg(args, 0) {
                Value::Int(w) => w.max(0) as usize,
                other => {
                    return Err(EvalError::type_err(format!(
                        "zfill() argument must be int, not {}",
                        type_name(&other)
                    )))
                }
            };
            let len = s.chars().count();
            if len >= width {
                Ok(Value::str(s))
            } else if let Some(rest) = s.strip_prefix('-') {
                Ok(Value::Str(format!("-{}{}", "0".repeat(width - len), rest)))
            } else {
                Ok(Value::Str(format!("{}{}", "0".repeat(width - len), s)))
            }
        }
        "isdigit" => Ok(Value::Bool(
            !s.is_empty() && s.chars().all(|c| c.is_ascii_digit()),
        )),
        "isalpha" => Ok(Value::Bool(
            !s.is_empty() && s.chars().all(|c| c.is_alphabetic()),
        )),
        "format" => Err(EvalError::new(
            crate::error::EvalErrorKind::Unsupported,
            "str.format() is not supported; use f-strings",
        )),
        other => Err(EvalError::type_err(format!(
            "'str' object has no method {other:?}"
        ))),
    }
}

fn list_method(
    mut items: Vec<Value>,
    method: &str,
    args: &[Value],
) -> Result<(Value, Option<Value>), EvalError> {
    match method {
        "append" => {
            require_args("append", args, 1, 1)?;
            items.push(args[0].clone());
            Ok((Value::Null, Some(Value::Seq(items))))
        }
        "extend" => {
            require_args("extend", args, 1, 1)?;
            items.extend(iterate(&args[0])?);
            Ok((Value::Null, Some(Value::Seq(items))))
        }
        "insert" => {
            require_args("insert", args, 2, 2)?;
            let i = match &args[0] {
                Value::Int(i) => (*i).clamp(0, items.len() as i64) as usize,
                other => {
                    return Err(EvalError::type_err(format!(
                        "insert() first argument must be int, not {}",
                        type_name(other)
                    )))
                }
            };
            items.insert(i, args[1].clone());
            Ok((Value::Null, Some(Value::Seq(items))))
        }
        "pop" => {
            let v = if args.is_empty() {
                items
                    .pop()
                    .ok_or_else(|| EvalError::raised("IndexError: pop from empty list"))?
            } else {
                let i = match &args[0] {
                    Value::Int(i) => *i,
                    other => {
                        return Err(EvalError::type_err(format!(
                            "pop() argument must be int, not {}",
                            type_name(other)
                        )))
                    }
                };
                let len = items.len() as i64;
                let j = if i < 0 { len + i } else { i };
                if j < 0 || j >= len {
                    return Err(EvalError::raised("IndexError: pop index out of range"));
                }
                items.remove(j as usize)
            };
            Ok((v, Some(Value::Seq(items))))
        }
        "remove" => {
            require_args("remove", args, 1, 1)?;
            let pos = items
                .iter()
                .position(|v| py_eq(v, &args[0]))
                .ok_or_else(|| EvalError::raised("ValueError: list.remove(x): x not in list"))?;
            items.remove(pos);
            Ok((Value::Null, Some(Value::Seq(items))))
        }
        "index" => {
            require_args("index", args, 1, 1)?;
            let pos = items
                .iter()
                .position(|v| py_eq(v, &args[0]))
                .ok_or_else(|| EvalError::raised("ValueError: x not in list"))?;
            Ok((Value::Int(pos as i64), None))
        }
        "count" => {
            require_args("count", args, 1, 1)?;
            let n = items.iter().filter(|v| py_eq(v, &args[0])).count();
            Ok((Value::Int(n as i64), None))
        }
        "sort" => {
            let mut err = None;
            items.sort_by(|a, b| {
                py_cmp(a, b).unwrap_or_else(|| {
                    err = Some(EvalError::type_err("values are not comparable"));
                    std::cmp::Ordering::Equal
                })
            });
            if let Some(e) = err {
                return Err(e);
            }
            Ok((Value::Null, Some(Value::Seq(items))))
        }
        "reverse" => {
            items.reverse();
            Ok((Value::Null, Some(Value::Seq(items))))
        }
        "copy" => Ok((Value::Seq(items.clone()), None)),
        other => Err(EvalError::type_err(format!(
            "'list' object has no method {other:?}"
        ))),
    }
}

fn dict_method(m: &Map, method: &str, args: &[Value]) -> Result<Value, EvalError> {
    match method {
        "get" => {
            let key = py_str(&arg(args, 0));
            Ok(m.get(&key).cloned().unwrap_or_else(|| arg(args, 1)))
        }
        "keys" => Ok(Value::Seq(m.keys().map(Value::str).collect())),
        "values" => Ok(Value::Seq(m.values().cloned().collect())),
        "items" => Ok(Value::Seq(
            m.iter()
                .map(|(k, v)| Value::Seq(vec![Value::str(k), v.clone()]))
                .collect(),
        )),
        other => Err(EvalError::type_err(format!(
            "'dict' object has no method {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn title_matches_python() {
        assert_eq!(py_title("hello world"), "Hello World");
        assert_eq!(py_title("they're bill's"), "They'Re Bill'S"); // CPython quirk
        assert_eq!(py_title("x2y abc"), "X2Y Abc");
        assert_eq!(py_title(""), "");
    }

    #[test]
    fn floor_div_and_mod() {
        let b = |op, l: i64, r: i64| binary(op, &Value::Int(l), &Value::Int(r)).unwrap();
        assert_eq!(b(PBinOp::FloorDiv, 7, 2), Value::Int(3));
        assert_eq!(b(PBinOp::FloorDiv, -7, 2), Value::Int(-4));
        assert_eq!(b(PBinOp::FloorDiv, 7, -2), Value::Int(-4));
        assert_eq!(b(PBinOp::Mod, 7, 3), Value::Int(1));
        assert_eq!(b(PBinOp::Mod, -7, 3), Value::Int(2));
        assert_eq!(b(PBinOp::Mod, 7, -3), Value::Int(-2));
    }

    #[test]
    fn division_by_zero_raises() {
        assert!(binary(PBinOp::Div, &Value::Int(1), &Value::Int(0)).is_err());
        assert!(binary(PBinOp::Mod, &Value::Int(1), &Value::Int(0)).is_err());
        assert!(binary(PBinOp::FloorDiv, &Value::Int(1), &Value::Int(0)).is_err());
    }

    #[test]
    fn py_str_formatting() {
        assert_eq!(py_str(&Value::Null), "None");
        assert_eq!(py_str(&Value::Bool(true)), "True");
        assert_eq!(py_str(&Value::Float(2.0)), "2.0");
        assert_eq!(py_str(&yamlite::vseq!["a", 1i64]), "['a', 1]");
    }

    #[test]
    fn builtin_len_and_range() {
        let mut p = Vec::new();
        assert_eq!(
            call_builtin("len", &[Value::str("héllo")], &mut p).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            call_builtin("range", &[Value::Int(3)], &mut p).unwrap(),
            yamlite::vseq![0i64, 1i64, 2i64]
        );
        assert_eq!(
            call_builtin(
                "range",
                &[Value::Int(5), Value::Int(1), Value::Int(-2)],
                &mut p
            )
            .unwrap(),
            yamlite::vseq![5i64, 3i64]
        );
        assert!(call_builtin("range", &[Value::Int(i64::MAX)], &mut p).is_err());
    }

    #[test]
    fn builtin_aggregates() {
        let mut p = Vec::new();
        let xs = yamlite::vseq![3i64, 1i64, 2i64];
        assert_eq!(
            call_builtin("min", std::slice::from_ref(&xs), &mut p).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            call_builtin("max", std::slice::from_ref(&xs), &mut p).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            call_builtin("sum", std::slice::from_ref(&xs), &mut p).unwrap(),
            Value::Int(6)
        );
        assert_eq!(
            call_builtin("sorted", &[xs], &mut p).unwrap(),
            yamlite::vseq![1i64, 2i64, 3i64]
        );
        assert!(call_builtin("min", &[Value::Seq(vec![])], &mut p).is_err());
    }

    #[test]
    fn str_methods() {
        let m = |s: &str, name: &str, args: &[Value]| str_method(s, name, args).unwrap();
        assert_eq!(
            m("a-b-c", "split", &[Value::str("-")]),
            yamlite::vseq!["a", "b", "c"]
        );
        assert_eq!(m(" a  b ", "split", &[]), yamlite::vseq!["a", "b"]);
        assert_eq!(
            m("-", "join", &[yamlite::vseq!["a", "b"]]),
            Value::str("a-b")
        );
        assert_eq!(m("abcabc", "count", &[Value::str("bc")]), Value::Int(2));
        assert_eq!(m("7", "zfill", &[Value::Int(3)]), Value::str("007"));
        assert_eq!(m("-7", "zfill", &[Value::Int(4)]), Value::str("-007"));
        assert_eq!(m("abc", "isalpha", &[]), Value::Bool(true));
        assert_eq!(m("ab1", "isalpha", &[]), Value::Bool(false));
        assert_eq!(m("123", "isdigit", &[]), Value::Bool(true));
        assert!(str_method("x", "split", &[Value::str("")]).is_err());
    }

    #[test]
    fn dict_methods() {
        let m = match yamlite::vmap! {"a" => 1i64, "b" => 2i64} {
            Value::Map(m) => m,
            _ => unreachable!(),
        };
        assert_eq!(
            dict_method(&m, "get", &[Value::str("a")]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            dict_method(&m, "get", &[Value::str("z"), Value::Int(9)]).unwrap(),
            Value::Int(9)
        );
        assert_eq!(
            dict_method(&m, "keys", &[]).unwrap(),
            yamlite::vseq!["a", "b"]
        );
    }

    #[test]
    fn comparisons() {
        assert!(compare(CmpOp::Lt, &Value::str("a"), &Value::str("b")).unwrap());
        assert!(compare(CmpOp::Eq, &Value::Int(2), &Value::Float(2.0)).unwrap());
        assert!(compare(CmpOp::In, &Value::str("el"), &Value::str("hello")).unwrap());
        assert!(compare(
            CmpOp::Lt,
            &yamlite::vseq![1i64],
            &yamlite::vseq![1i64, 2i64]
        )
        .unwrap());
        assert!(compare(CmpOp::Lt, &Value::str("a"), &Value::Int(1)).is_err());
    }
}
