//! Error type shared by both expression engines.

use std::fmt;

/// What class of failure occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalErrorKind {
    /// The source text could not be tokenized or parsed.
    Syntax,
    /// An operation was applied to values of the wrong type.
    Type,
    /// An unknown variable, attribute, or function was referenced.
    Name,
    /// User code raised an exception (`raise` / `throw`).
    Raised,
    /// A language feature outside the supported subset was used.
    Unsupported,
    /// Evaluation exceeded the step budget (runaway loop protection).
    Budget,
}

impl fmt::Display for EvalErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EvalErrorKind::Syntax => "syntax error",
            EvalErrorKind::Type => "type error",
            EvalErrorKind::Name => "name error",
            EvalErrorKind::Raised => "exception",
            EvalErrorKind::Unsupported => "unsupported feature",
            EvalErrorKind::Budget => "evaluation budget exceeded",
        };
        f.write_str(s)
    }
}

/// An error raised while compiling or evaluating an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Failure class.
    pub kind: EvalErrorKind,
    /// Human-readable description.
    pub message: String,
    /// 1-based line within the expression source (0 when unknown).
    pub line: usize,
}

impl EvalError {
    /// Build an error with an unknown position.
    pub fn new(kind: EvalErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
            line: 0,
        }
    }

    /// Build an error at a known 1-based line.
    pub fn at(kind: EvalErrorKind, message: impl Into<String>, line: usize) -> Self {
        Self {
            kind,
            message: message.into(),
            line,
        }
    }

    /// Shorthand for a syntax error.
    pub fn syntax(message: impl Into<String>, line: usize) -> Self {
        Self::at(EvalErrorKind::Syntax, message, line)
    }

    /// Shorthand for a type error.
    pub fn type_err(message: impl Into<String>) -> Self {
        Self::new(EvalErrorKind::Type, message)
    }

    /// Shorthand for a name error.
    pub fn name(message: impl Into<String>) -> Self {
        Self::new(EvalErrorKind::Name, message)
    }

    /// Shorthand for a user-raised exception.
    pub fn raised(message: impl Into<String>) -> Self {
        Self::new(EvalErrorKind::Raised, message)
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{} at line {}: {}", self.kind, self.line, self.message)
        } else {
            write!(f, "{}: {}", self.kind, self.message)
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_line() {
        let e = EvalError::syntax("unexpected token", 3);
        assert_eq!(e.to_string(), "syntax error at line 3: unexpected token");
        let e = EvalError::type_err("cannot add");
        assert_eq!(e.to_string(), "type error: cannot add");
    }

    #[test]
    fn kind_display() {
        assert_eq!(EvalErrorKind::Raised.to_string(), "exception");
        assert_eq!(
            EvalErrorKind::Budget.to_string(),
            "evaluation budget exceeded"
        );
    }
}
