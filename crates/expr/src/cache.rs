//! Compiled-expression cache: lex/parse each distinct expression source once.
//!
//! CWL workflows evaluate the *same* expression source over and over — every
//! scatter instance re-evaluates its step's `valueFrom`, every output binding
//! re-evaluates its `outputEval` — with only the context changing. The seed
//! implementation re-lexed and re-parsed the source on every evaluation, so
//! parse cost scaled with evaluation count rather than with the number of
//! distinct expressions in the document.
//!
//! This module holds one bounded, sharded LRU cache per program kind (JS
//! expression, JS statement body, Python expression), keyed by an FNV-1a
//! hash of the source with the source itself stored as a collision guard.
//! Hits return an [`Arc`]'d AST, so evaluation pays only tree-walking.
//!
//! The cache deliberately does **not** touch the modelled
//! [`crate::engine::JsCostModel`] spawn/marshal costs: those model the
//! per-evaluation `node` process boundary of the cwltool/Toil baselines,
//! which re-pay the boundary whether or not the text was seen before. Only
//! in-process interpretation — the parsl-cwl fast path — benefits.
//!
//! The cache is process-global (expressions are immutable text → immutable
//! ASTs, so sharing across engines is sound) and can be switched off with
//! [`set_enabled`], which the throughput benchmark uses to measure the
//! pre-cache baseline from the same binary.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shards per cache: spreads lock pressure when many workers evaluate
/// concurrently. Power of two so the shard index is a mask.
const SHARDS: usize = 8;

/// Entries per shard; total capacity per program kind is
/// `SHARDS * SHARD_CAPACITY`. Real workflow documents carry tens of
/// distinct expressions, so 1024 never evicts in practice — the bound
/// exists to keep adversarial inputs (generated expression text) from
/// growing memory without limit.
const SHARD_CAPACITY: usize = 128;

static ENABLED: AtomicBool = AtomicBool::new(true);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Enable or disable the cache process-wide, returning the previous state.
/// Disabling does not drop existing entries; lookups simply bypass them.
pub fn set_enabled(on: bool) -> bool {
    ENABLED.swap(on, Ordering::SeqCst)
}

/// Whether the cache is currently consulted.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Aggregate hit/miss counters across all program kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
}

/// Current counter values.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

/// Zero the hit/miss counters (benchmark harness bookkeeping).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// Process-global observability counters for the cache, resolved once so
/// the hit path never pays the registry's name lookup.
fn obs_counters() -> &'static (Arc<obs::Counter>, Arc<obs::Counter>) {
    static C: std::sync::OnceLock<(Arc<obs::Counter>, Arc<obs::Counter>)> =
        std::sync::OnceLock::new();
    C.get_or_init(|| {
        let g = obs::global();
        (
            g.counter(obs::names::EXPR_CACHE_HITS),
            g.counter(obs::names::EXPR_CACHE_MISSES),
        )
    })
}

/// FNV-1a over the source text.
fn fnv1a(src: &str) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for b in src.bytes() {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    h
}

struct Entry<T> {
    /// Collision guard: the hash keys the map, the text settles ties.
    src: Box<str>,
    prog: Arc<T>,
    last_used: u64,
}

struct Shard<T> {
    map: HashMap<u64, Entry<T>>,
    /// Monotonic use counter driving LRU eviction within the shard.
    tick: u64,
}

/// A bounded, sharded program cache for one compiled-AST type.
pub struct ProgramCache<T> {
    shards: [Mutex<Shard<T>>; SHARDS],
}

impl<T> Default for ProgramCache<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ProgramCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| {
                Mutex::new(Shard {
                    map: HashMap::new(),
                    tick: 0,
                })
            }),
        }
    }

    /// Look up the compiled program for `src`, compiling (and caching) on a
    /// miss. Compilation runs outside the shard lock; compile errors are
    /// returned and never cached (the error path re-parses, which is fine —
    /// a failing expression fails the task that carries it).
    pub fn get_or_compile<E>(
        &self,
        src: &str,
        compile: impl FnOnce(&str) -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        if !enabled() {
            return compile(src).map(Arc::new);
        }
        let h = fnv1a(src);
        let shard = &self.shards[(h as usize) & (SHARDS - 1)];
        {
            let mut g = shard.lock();
            g.tick += 1;
            let tick = g.tick;
            if let Some(e) = g.map.get_mut(&h) {
                if &*e.src == src {
                    e.last_used = tick;
                    HITS.fetch_add(1, Ordering::Relaxed);
                    if obs::global().is_enabled() {
                        obs_counters().0.incr();
                    }
                    return Ok(e.prog.clone());
                }
            }
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        if obs::global().is_enabled() {
            obs_counters().1.incr();
        }
        let prog = Arc::new(compile(src)?);
        let mut g = shard.lock();
        g.tick += 1;
        let tick = g.tick;
        if g.map.len() >= SHARD_CAPACITY && !g.map.contains_key(&h) {
            // Evict the least-recently-used entry of this shard. A linear
            // scan over ≤128 entries only runs once the shard is full,
            // which a real workflow document never reaches.
            if let Some(&lru) = g
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                g.map.remove(&lru);
            }
        }
        g.map.insert(
            h,
            Entry {
                src: src.into(),
                prog: prog.clone(),
                last_used: tick,
            },
        );
        Ok(prog)
    }

    /// Number of cached programs (tests).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds no programs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached program.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().map.clear();
        }
    }
}

/// The process-global caches, one per compiled-AST type.
pub(crate) mod global {
    use super::ProgramCache;
    use crate::js::ast::{Expr, Stmt};
    use crate::py::ast::PExpr;
    use std::sync::OnceLock;

    /// JS `$(...)` expression programs.
    pub(crate) fn js_expr() -> &'static ProgramCache<Expr> {
        static C: OnceLock<ProgramCache<Expr>> = OnceLock::new();
        C.get_or_init(ProgramCache::new)
    }

    /// JS `${...}` statement-body programs.
    pub(crate) fn js_body() -> &'static ProgramCache<Vec<Stmt>> {
        static C: OnceLock<ProgramCache<Vec<Stmt>>> = OnceLock::new();
        C.get_or_init(ProgramCache::new)
    }

    /// Python expression programs.
    pub(crate) fn py_expr() -> &'static ProgramCache<PExpr> {
        static C: OnceLock<ProgramCache<PExpr>> = OnceLock::new();
        C.get_or_init(ProgramCache::new)
    }
}

/// Drop every cached program in every global cache (benchmark harness: a
/// fresh baseline run must not inherit a warm cache).
pub fn clear_all() {
    global::js_expr().clear();
    global::js_body().clear();
    global::py_expr().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_ast() {
        let cache: ProgramCache<String> = ProgramCache::new();
        let before = stats();
        let a = cache
            .get_or_compile::<()>("inputs.x + 1", |s| Ok(s.to_uppercase()))
            .unwrap();
        let b = cache
            .get_or_compile::<()>("inputs.x + 1", |_| panic!("must not recompile"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the compiled program");
        let after = stats();
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.misses - before.misses, 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: ProgramCache<String> = ProgramCache::new();
        let e = cache.get_or_compile("boom", |_| Err::<String, _>("syntax"));
        assert_eq!(e.unwrap_err(), "syntax");
        assert_eq!(cache.len(), 0);
        // A later good compile of the same source still works.
        let ok = cache
            .get_or_compile::<()>("boom", |s| Ok(s.to_string()))
            .unwrap();
        assert_eq!(&*ok, "boom");
    }

    #[test]
    fn disabled_cache_always_compiles() {
        let cache: ProgramCache<u32> = ProgramCache::new();
        let was = set_enabled(false);
        let mut compiles = 0;
        for _ in 0..3 {
            cache
                .get_or_compile::<()>("x", |_| {
                    compiles += 1;
                    Ok(7)
                })
                .unwrap();
        }
        set_enabled(was);
        assert_eq!(compiles, 3);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn capacity_is_bounded_with_lru_eviction() {
        let cache: ProgramCache<usize> = ProgramCache::new();
        let total = SHARDS * SHARD_CAPACITY;
        for i in 0..total * 2 {
            cache
                .get_or_compile::<()>(&format!("expr-{i}"), |_| Ok(i))
                .unwrap();
        }
        assert!(
            cache.len() <= total,
            "cache grew past its bound: {}",
            cache.len()
        );
        assert!(!cache.is_empty());
    }

    #[test]
    fn distinct_sources_do_not_collide_in_use() {
        let cache: ProgramCache<String> = ProgramCache::new();
        for i in 0..64 {
            let src = format!("inputs.field{i}");
            let got = cache
                .get_or_compile::<()>(&src, |s| Ok(s.to_string()))
                .unwrap();
            assert_eq!(&*got, &src);
        }
        for i in 0..64 {
            let src = format!("inputs.field{i}");
            let got = cache
                .get_or_compile::<()>(&src, |_| panic!("recompiled"))
                .unwrap();
            assert_eq!(&*got, &src);
        }
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache: Arc<ProgramCache<String>> = Arc::new(ProgramCache::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let src = format!("shared-{}", i % 10);
                    let got = cache
                        .get_or_compile::<()>(&src, |s| Ok(s.to_string()))
                        .unwrap();
                    assert_eq!(&*got, &src, "thread {t}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() >= 10);
    }
}
