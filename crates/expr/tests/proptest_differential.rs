//! Differential/property tests for the expression engines: Python-subset
//! arithmetic must match a Rust reference implementation of CPython
//! semantics, string operations must agree with Rust's, and neither
//! interpreter may panic on arbitrary input.

use expr::py::PyLib;
use proptest::prelude::*;
use yamlite::{Map, Value};

fn py_eval(src: &str) -> Result<Value, expr::EvalError> {
    PyLib::default().eval_expression(src, &Map::new())
}

/// Reference CPython floor-div.
fn ref_floordiv(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Reference CPython modulo.
fn ref_mod(a: i64, b: i64) -> i64 {
    a - ref_floordiv(a, b) * b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn py_integer_arithmetic_matches_cpython(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        prop_assert_eq!(py_eval(&format!("{a} + {b}")).unwrap(), Value::Int(a + b));
        prop_assert_eq!(py_eval(&format!("{a} - {b}")).unwrap(), Value::Int(a - b));
        prop_assert_eq!(py_eval(&format!("{a} * {b}")).unwrap(), Value::Int(a.wrapping_mul(b)));
        if b != 0 {
            prop_assert_eq!(
                py_eval(&format!("{a} // {b}")).unwrap(),
                Value::Int(ref_floordiv(a, b))
            );
            prop_assert_eq!(py_eval(&format!("{a} % {b}")).unwrap(), Value::Int(ref_mod(a, b)));
            // The floor-div/mod identity: a == (a // b) * b + (a % b)
            let fd = py_eval(&format!("({a} // {b}) * {b} + ({a} % {b})")).unwrap();
            prop_assert_eq!(fd, Value::Int(a));
        } else {
            let fd_err = py_eval(&format!("{a} // 0")).is_err();
            let md_err = py_eval(&format!("{a} % 0")).is_err();
            prop_assert!(fd_err, "floor division by zero must raise");
            prop_assert!(md_err, "modulo by zero must raise");
        }
    }

    #[test]
    fn py_comparison_chain_matches_direct(a in -100i64..100, b in -100i64..100, c in -100i64..100) {
        let chained = py_eval(&format!("{a} < {b} < {c}")).unwrap();
        prop_assert_eq!(chained, Value::Bool(a < b && b < c));
        let mixed = py_eval(&format!("{a} <= {b} > {c}")).unwrap();
        prop_assert_eq!(mixed, Value::Bool(a <= b && b > c));
    }

    #[test]
    fn py_string_ops_match_rust(s in "[a-zA-Z0-9 ]{0,20}") {
        let quoted = format!("{s:?}");
        prop_assert_eq!(
            py_eval(&format!("{quoted}.upper()")).unwrap(),
            Value::Str(s.to_uppercase())
        );
        prop_assert_eq!(
            py_eval(&format!("len({quoted})")).unwrap(),
            Value::Int(s.chars().count() as i64)
        );
        prop_assert_eq!(
            py_eval(&format!("{quoted}.strip()")).unwrap(),
            Value::str(s.trim())
        );
        // Reversal via slicing-free approach: join(reversed(...)).
        let rev: String = s.chars().rev().collect();
        prop_assert_eq!(
            py_eval(&format!("''.join(reversed({quoted}))")).unwrap(),
            Value::Str(rev)
        );
    }

    #[test]
    fn py_fstring_round_trips_ints(n in -1_000_000i64..1_000_000) {
        prop_assert_eq!(
            py_eval(&format!("int(f\"{{{n}}}\")")).unwrap(),
            Value::Int(n)
        );
    }

    #[test]
    fn js_and_py_agree_on_shared_string_semantics(s in "[a-z]{1,12}", sep in "[,; ]") {
        // split + join round trip is identical in both languages.
        let globals = match yamlite::vmap! {"s" => s.clone(), "sep" => sep.clone()} {
            Value::Map(m) => m,
            _ => unreachable!(),
        };
        let js = expr::js::eval_expression("s.split(sep).join(sep)", &globals).unwrap();
        let py = PyLib::default()
            .eval_expression("$(sep).join($(s).split($(sep)))", &globals)
            .unwrap();
        prop_assert_eq!(js.clone(), Value::Str(s.clone()));
        prop_assert_eq!(js, py);
    }

    #[test]
    fn py_interpreter_never_panics(src in "[ -~\\n]{0,120}") {
        let _ = PyLib::compile(&src);
        let _ = py_eval(&src);
    }

    #[test]
    fn js_interpreter_never_panics(src in "[ -~]{0,120}") {
        let globals = Map::new();
        let _ = expr::js::eval_expression(&src, &globals);
        let _ = expr::js::run_body(&src, &globals);
    }

    #[test]
    fn interpolation_never_panics(s in "[ -~$({})]{0,80}") {
        let engine = expr::JsEngine::in_process();
        let ctx = expr::EvalContext::from_inputs(yamlite::vmap! {"x" => 1i64});
        let _ = expr::interpolate(&s, &engine, &ctx);
    }
}
