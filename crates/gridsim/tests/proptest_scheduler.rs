//! Property tests for the batch scheduler: node conservation and FCFS
//! safety under arbitrary submit/release interleavings.

use gridsim::{BatchScheduler, ClusterSpec, JobRequest, JobState, SchedulerConfig};
use proptest::prelude::*;
use std::time::Duration;

#[derive(Debug, Clone)]
enum Op {
    /// Submit a job wanting this many nodes (1-based).
    Submit(usize),
    /// Release the i-th still-running job (modulo live count).
    Release(usize),
    /// Cancel the i-th still-pending job (modulo pending count).
    Cancel(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1usize..4).prop_map(Op::Submit),
            (0usize..8).prop_map(Op::Release),
            (0usize..8).prop_map(Op::Cancel),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn node_conservation_under_arbitrary_interleavings(script in ops()) {
        let total_nodes = 4usize;
        let sched = BatchScheduler::new(
            ClusterSpec::small(total_nodes, 2),
            SchedulerConfig::immediate(),
        );
        let mut running = Vec::new();
        let mut pending = Vec::new();
        for op in script {
            match op {
                Op::Submit(nodes) => {
                    if nodes <= total_nodes {
                        let j = sched.submit(JobRequest::nodes(nodes, "prop")).unwrap();
                        match j.state() {
                            JobState::Running => running.push(j),
                            JobState::Pending => pending.push(j),
                            other => prop_assert!(false, "fresh job in state {other:?}"),
                        }
                    }
                }
                Op::Release(i) => {
                    if !running.is_empty() {
                        let j = running.remove(i % running.len());
                        j.release().unwrap();
                        // Releases may promote pending jobs.
                        let (now_running, still_pending): (Vec<_>, Vec<_>) =
                            pending.drain(..).partition(|p| p.state() == JobState::Running);
                        running.extend(now_running);
                        pending = still_pending;
                    }
                }
                Op::Cancel(i) => {
                    if !pending.is_empty() {
                        let idx = i % pending.len();
                        let j = pending.remove(idx);
                        // The job may have been promoted since we last looked.
                        match j.state() {
                            JobState::Pending => j.cancel().unwrap(),
                            JobState::Running => running.push(j),
                            _ => {}
                        }
                        // Cancellation can also unblock the queue head.
                        let (now_running, still_pending): (Vec<_>, Vec<_>) =
                            pending.drain(..).partition(|p| p.state() == JobState::Running);
                        running.extend(now_running);
                        pending = still_pending;
                    }
                }
            }
            // Invariant: free nodes + nodes held by running jobs == total.
            let held: usize = running
                .iter()
                .map(|j| j.wait_running(Duration::from_millis(1)).map(|n| n.len()).unwrap_or(0))
                .sum();
            prop_assert_eq!(sched.free_node_count() + held, total_nodes);
        }
        // Drain: release everything; all nodes must come back.
        for j in running {
            j.release().unwrap();
        }
        for j in pending {
            match j.state() {
                JobState::Pending => j.cancel().unwrap(),
                JobState::Running => j.release().unwrap(),
                _ => {}
            }
        }
        // A last pass: promotion chains may have started more jobs.
        prop_assert_eq!(sched.queue_depth(), 0);
        prop_assert_eq!(sched.free_node_count(), total_nodes);
    }
}
