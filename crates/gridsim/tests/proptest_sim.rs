//! Property tests over seeded simulation schedules (ISSUE 9 satellite):
//! whatever scenario a seed generates — DAG shape, cluster size, fault
//! schedule — the fault-tolerance ordering invariants must hold.
//!
//! Every failing case shrinks to a single `u64` seed; replay it with
//! `cargo run -p gridsim --bin simrun -- --log <seed>`.

use gridsim::{Scenario, SimEventKind};
use proptest::prelude::*;

/// Index of the first event matching `pred`, if any.
fn first_pos(events: &[gridsim::SimEvent], pred: impl Fn(&SimEventKind) -> bool) -> Option<usize> {
    events.iter().position(|e| pred(&e.kind))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Heartbeat loss ordering: for every node the engine declares lost,
    /// the kill precedes the loss declaration, and every re-dispatch of
    /// that node's in-flight work comes after the declaration — never
    /// speculatively before it.
    #[test]
    fn kill_then_node_lost_then_redispatch(seed in any::<u64>()) {
        let scenario = Scenario::from_seed(seed);
        let report = scenario.run();
        let events = &report.events;
        for &node in &report.nodes_lost {
            let kill = first_pos(events, |k| *k == SimEventKind::Kill { node })
                .expect("lost node must have a kill event");
            let lost = first_pos(events, |k| *k == SimEventKind::NodeLost { node })
                .expect("lost node must have a node-lost event");
            prop_assert!(
                kill < lost,
                "seed {seed}: node{node} declared lost (event {lost}) before its kill (event {kill})"
            );
            for (i, e) in events.iter().enumerate() {
                if let SimEventKind::Redispatched { node: n, task, .. } = e.kind {
                    if n == node {
                        prop_assert!(
                            i > lost,
                            "seed {seed}: task {task} redispatched off node{node} at event {i}, \
                             before the node was declared lost at event {lost}"
                        );
                    }
                }
            }
        }
    }

    /// A dispatch attempt is resolved exactly one way: a task is never both
    /// re-dispatched off a lost node and completed by that same attempt on
    /// that node — the double-execution hazard the heartbeat protocol
    /// exists to prevent.
    #[test]
    fn redispatched_attempt_never_also_completes(seed in any::<u64>()) {
        let report = Scenario::from_seed(seed).run();
        let mut redispatched: Vec<(usize, usize, u32)> = Vec::new();
        let mut completed: Vec<(usize, usize, u32)> = Vec::new();
        for e in &report.events {
            match e.kind {
                SimEventKind::Redispatched { task, node, attempt } => {
                    redispatched.push((task, node, attempt))
                }
                SimEventKind::Complete { task, node, attempt } => {
                    completed.push((task, node, attempt))
                }
                _ => {}
            }
        }
        for key in &redispatched {
            prop_assert!(
                !completed.contains(key),
                "seed {seed}: task {} attempt {} both redispatched off node{} and completed there",
                key.0, key.2, key.1
            );
        }
        // And a task never completes twice, whatever the fault schedule.
        let mut tasks_done: Vec<usize> = completed.iter().map(|&(t, _, _)| t).collect();
        let before = tasks_done.len();
        tasks_done.sort_unstable();
        tasks_done.dedup();
        prop_assert_eq!(before, tasks_done.len(), "seed {}: a task completed twice", seed);
    }

    /// The engine's own invariant checker agrees across the whole seed
    /// space, and the run is replayable: the same seed yields a
    /// byte-identical event log.
    #[test]
    fn no_violations_and_log_replays(seed in any::<u64>()) {
        let scenario = Scenario::from_seed(seed);
        let report = scenario.run();
        prop_assert!(
            report.violations.is_empty(),
            "seed {seed}: {:?}",
            report.violations
        );
        prop_assert_eq!(
            report.event_log(),
            Scenario::from_seed(seed).run().event_log(),
            "seed {} is not replayable", seed
        );
    }
}
