//! Latency and overhead models.
//!
//! Distributed-systems costs (network dispatch, interpreter start-up, batch
//! submit latency) are *paid* by sleeping a scaled duration. A global
//! [`TimeScale`] compresses every modelled latency by the same factor, so the
//! relative standings between systems — the property the paper's figures
//! report — are preserved while the absolute run time shrinks to CI scale.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Global multiplicative compression applied to all modelled latencies.
///
/// Stored as micro-units (1_000_000 == 1.0) in an atomic so tests and bench
/// harnesses can adjust it without threading a handle everywhere. Real
/// computation is never scaled — only modelled overheads go through here.
pub struct TimeScale;

static SCALE_MICRO: AtomicU64 = AtomicU64::new(1_000_000);

impl TimeScale {
    /// Set the global scale factor (e.g. `0.1` to run 10× compressed).
    pub fn set(factor: f64) {
        let clamped = factor.clamp(0.0, 1000.0);
        SCALE_MICRO.store((clamped * 1e6) as u64, Ordering::Relaxed);
    }

    /// Current scale factor.
    pub fn get() -> f64 {
        SCALE_MICRO.load(Ordering::Relaxed) as f64 / 1e6
    }
}

/// Scale a modelled duration by the global [`TimeScale`].
pub fn scaled(d: Duration) -> Duration {
    d.mul_f64(TimeScale::get())
}

/// Pay (sleep) a modelled overhead, after global scaling.
///
/// Sleeping — rather than spinning — is the right model: a Python or Node
/// process starting up, or a packet crossing the interconnect, does not
/// consume the local worker's CPU.
pub fn pay(d: Duration) {
    let d = scaled(d);
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

/// [`pay`], but sleeping on an explicit clock — under a virtual clock the
/// modelled overhead elapses logically instead of burning wall time.
pub fn pay_on(clock: &dyn simtest::Clock, d: Duration) {
    let d = scaled(d);
    if !d.is_zero() {
        clock.sleep(d);
    }
}

/// Per-boundary latency model used by executors and runners.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Cost of dispatching one task across this boundary (submit→worker).
    pub dispatch: Duration,
    /// Cost of returning one result across this boundary (worker→submit).
    pub result: Duration,
    /// Fractional uniform jitter applied to each payment (0.1 = ±10%).
    pub jitter_frac: f64,
}

impl LatencyModel {
    /// No modelled latency — same-process execution (ThreadPoolExecutor).
    pub fn in_process() -> Self {
        Self {
            dispatch: Duration::ZERO,
            result: Duration::ZERO,
            jitter_frac: 0.0,
        }
    }

    /// A LAN hop between the submit side and a pilot-job manager, as in
    /// Parsl's HighThroughputExecutor. Calibrated to O(1 ms) per task, which
    /// matches published HTEX per-task overheads at small scale.
    pub fn cluster_lan() -> Self {
        Self {
            dispatch: Duration::from_micros(500),
            result: Duration::from_micros(300),
            jitter_frac: 0.10,
        }
    }

    /// Pay the dispatch-direction cost.
    pub fn pay_dispatch(&self) {
        pay(self.jittered(self.dispatch));
    }

    /// Pay the result-direction cost.
    pub fn pay_result(&self) {
        pay(self.jittered(self.result));
    }

    /// Pay the dispatch-direction cost on an explicit clock.
    pub fn pay_dispatch_on(&self, clock: &dyn simtest::Clock) {
        pay_on(clock, self.jittered(self.dispatch));
    }

    /// Pay the result-direction cost on an explicit clock.
    pub fn pay_result_on(&self, clock: &dyn simtest::Clock) {
        pay_on(clock, self.jittered(self.result));
    }

    fn jittered(&self, base: Duration) -> Duration {
        if self.jitter_frac <= 0.0 || base.is_zero() {
            return base;
        }
        // Cheap thread-local jitter; statistical quality is irrelevant here.
        use rand::Rng;
        let mut rng = rand::thread_rng();
        let f = 1.0 + rng.gen_range(-self.jitter_frac..self.jitter_frac);
        base.mul_f64(f.max(0.0))
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::in_process()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// Serialize tests that mutate the global scale.
    static SCALE_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn scale_roundtrip() {
        let _g = SCALE_LOCK.lock();
        let old = TimeScale::get();
        TimeScale::set(0.25);
        assert!((TimeScale::get() - 0.25).abs() < 1e-9);
        assert_eq!(
            scaled(Duration::from_millis(100)),
            Duration::from_millis(25)
        );
        TimeScale::set(old);
    }

    #[test]
    fn zero_scale_eliminates_pay() {
        let _g = SCALE_LOCK.lock();
        let old = TimeScale::get();
        TimeScale::set(0.0);
        let t = Instant::now();
        pay(Duration::from_secs(10));
        assert!(t.elapsed() < Duration::from_millis(50));
        TimeScale::set(old);
    }

    #[test]
    fn pay_sleeps_roughly_scaled_amount() {
        let _g = SCALE_LOCK.lock();
        let old = TimeScale::get();
        TimeScale::set(1.0);
        let t = Instant::now();
        pay(Duration::from_millis(20));
        let e = t.elapsed();
        assert!(e >= Duration::from_millis(18), "slept only {e:?}");
        TimeScale::set(old);
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let m = LatencyModel {
            dispatch: Duration::from_millis(10),
            result: Duration::ZERO,
            jitter_frac: 0.5,
        };
        for _ in 0..200 {
            let j = m.jittered(m.dispatch);
            assert!(
                j >= Duration::from_millis(5) && j <= Duration::from_millis(15),
                "{j:?}"
            );
        }
    }

    #[test]
    fn in_process_pays_nothing() {
        let m = LatencyModel::in_process();
        let t = Instant::now();
        m.pay_dispatch();
        m.pay_result();
        assert!(t.elapsed() < Duration::from_millis(10));
    }
}
