//! `gridsim` — a simulated HPC-cluster substrate.
//!
//! The paper evaluates Parsl+CWL on a departmental Slurm cluster (3 nodes,
//! 2×12-core Intel CPUs = 48 logical CPUs and 126 GB RAM per node). This
//! workspace has no such cluster, so `gridsim` provides the closest synthetic
//! equivalent that still exercises the real code paths:
//!
//! * [`ClusterSpec`] / [`NodeSpec`] describe the simulated machine room;
//! * [`BatchScheduler`] implements a first-come-first-served batch queue with
//!   configurable submit latency and scheduling interval — pilot jobs wait in
//!   this queue exactly like Slurm jobs do;
//! * [`LatencyModel`] models network/dispatch costs that executors and
//!   baseline runners *pay* (by sleeping a scaled amount) when they would in
//!   reality cross a process or network boundary;
//! * [`TimeScale`] globally compresses all modelled latencies so full paper
//!   sweeps run in CI time while preserving the *ratios* between systems.
//!
//! Everything that represents computation (image kernels, expression
//! evaluation) runs for real on real threads; only distributed-systems
//! overheads are modelled. This preserves contention, speedup curves, and
//! scheduling behaviour — the properties the paper's figures depend on.

pub mod cluster;
pub mod fault;
pub mod latency;
pub mod scheduler;
pub mod sim;

pub use cluster::{ClusterSpec, NodeSpec};
pub use fault::FaultPlan;
pub use latency::{pay, scaled, LatencyModel, TimeScale};
pub use scheduler::{
    BatchScheduler, JobHandle, JobId, JobRequest, JobState, PreemptHook, SchedulerConfig,
};
pub use sim::{Scenario, SimConfig, SimDag, SimEvent, SimEventKind, SimFault, SimReport};
