//! A first-come-first-served batch scheduler over a [`ClusterSpec`].
//!
//! Pilot jobs (Parsl blocks) and Toil batch jobs are submitted here, wait in
//! an FCFS queue until enough whole nodes are free, and then run until
//! released. A modelled submit latency stands in for the `sbatch` round trip.
//!
//! Grants happen synchronously on submit and on release (no background
//! thread), which keeps the scheduler deterministic; waiters block on a
//! condition variable rather than polling.

use crate::cluster::ClusterSpec;
use crate::latency::pay;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Opaque job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Lifecycle of a batch job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// In the queue, waiting for nodes.
    Pending,
    /// Granted nodes; running.
    Running,
    /// Released by its owner.
    Completed,
    /// Cancelled while pending.
    Cancelled,
    /// Evicted while running (walltime expiry or explicit preemption);
    /// nodes were reclaimed without the owner's consent.
    Preempted,
}

/// What a job asks for.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Number of whole nodes requested.
    pub nodes: usize,
    /// Human-readable label for logs.
    pub label: String,
    /// Maximum running time; the scheduler preempts the job once it has
    /// been running this long (None = unlimited, the prior behaviour).
    pub walltime: Option<Duration>,
}

impl JobRequest {
    /// Request `nodes` whole nodes.
    pub fn nodes(nodes: usize, label: impl Into<String>) -> Self {
        Self {
            nodes,
            label: label.into(),
            walltime: None,
        }
    }

    /// Limit the job's running time; it is preempted when the limit passes.
    pub fn with_walltime(mut self, walltime: Duration) -> Self {
        self.walltime = Some(walltime);
        self
    }
}

/// Callback fired after a job is preempted (walltime expiry or
/// [`BatchScheduler::preempt`]). Runs outside the scheduler lock.
pub type PreemptHook = Box<dyn Fn(JobId) + Send + Sync>;

/// Scheduler tunables.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Modelled `sbatch` round-trip paid synchronously on submit.
    pub submit_latency: Duration,
    /// Modelled extra delay between resources becoming free and the grant
    /// landing (the scheduling cycle of real batch systems).
    pub grant_latency: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            // Real Slurm submit round-trips are O(100 ms); scheduling cycles
            // run every O(seconds). Scaled globally by gridsim::TimeScale.
            submit_latency: Duration::from_millis(20),
            grant_latency: Duration::from_millis(10),
        }
    }
}

impl SchedulerConfig {
    /// No modelled latencies at all (unit tests).
    pub fn immediate() -> Self {
        Self {
            submit_latency: Duration::ZERO,
            grant_latency: Duration::ZERO,
        }
    }
}

#[derive(Debug)]
struct JobRecord {
    state: JobState,
    request: JobRequest,
    granted: Vec<usize>,
    submitted_at: Instant,
    started_at: Option<Instant>,
}

#[derive(Debug)]
struct SchedState {
    free_nodes: Vec<usize>,
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, JobRecord>,
    next_id: u64,
}

struct Inner {
    cluster: ClusterSpec,
    config: SchedulerConfig,
    state: Mutex<SchedState>,
    cond: Condvar,
    preempt_hook: Mutex<Option<PreemptHook>>,
}

/// The batch scheduler. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct BatchScheduler {
    inner: Arc<Inner>,
}

impl BatchScheduler {
    /// Create a scheduler over `cluster` with `config` latencies.
    pub fn new(cluster: ClusterSpec, config: SchedulerConfig) -> Self {
        assert!(cluster.validate().is_ok(), "invalid cluster spec");
        let free_nodes = (0..cluster.node_count()).collect();
        Self {
            inner: Arc::new(Inner {
                cluster,
                config,
                state: Mutex::new(SchedState {
                    free_nodes,
                    queue: VecDeque::new(),
                    jobs: HashMap::new(),
                    next_id: 1,
                }),
                cond: Condvar::new(),
                preempt_hook: Mutex::new(None),
            }),
        }
    }

    /// Install a callback fired (outside the lock) whenever a job is
    /// preempted. Replaces any previous hook.
    pub fn set_preempt_hook(&self, hook: impl Fn(JobId) + Send + Sync + 'static) {
        *self.inner.preempt_hook.lock() = Some(Box::new(hook));
    }

    /// The cluster this scheduler manages.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.inner.cluster
    }

    /// Submit a job request; pays the modelled submit latency, enqueues the
    /// job, and runs a grant pass. Fails fast when the request can never be
    /// satisfied.
    pub fn submit(&self, request: JobRequest) -> Result<JobHandle, String> {
        if request.nodes == 0 {
            return Err("job requests zero nodes".to_string());
        }
        if request.nodes > self.inner.cluster.node_count() {
            return Err(format!(
                "job {:?} requests {} nodes but cluster {:?} has only {}",
                request.label,
                request.nodes,
                self.inner.cluster.name,
                self.inner.cluster.node_count()
            ));
        }
        pay(self.inner.config.submit_latency);
        let walltime = request.walltime;
        let id = {
            let mut st = self.inner.state.lock();
            let id = JobId(st.next_id);
            st.next_id += 1;
            st.jobs.insert(
                id,
                JobRecord {
                    state: JobState::Pending,
                    request,
                    granted: Vec::new(),
                    submitted_at: Instant::now(),
                    started_at: None,
                },
            );
            st.queue.push_back(id);
            self.grant_locked(&mut st);
            id
        };
        self.inner.cond.notify_all();
        if let Some(limit) = walltime {
            self.arm_walltime(id, limit);
        }
        Ok(JobHandle {
            id,
            scheduler: self.clone(),
        })
    }

    /// Spawn the timer that preempts `id` once it has run for `limit`.
    fn arm_walltime(&self, id: JobId, limit: Duration) {
        let sched = self.clone();
        std::thread::Builder::new()
            .name(format!("gridsim-walltime-{id}"))
            .spawn(move || {
                // Wait (generously) for the job to leave the queue; queue
                // time does not count against walltime, as in Slurm.
                if sched.wait_running(id, Duration::from_secs(3600)).is_err() {
                    return;
                }
                std::thread::sleep(limit);
                // Only preempt if still running; a released job is done.
                if sched.state(id) == Some(JobState::Running) {
                    let _ = sched.preempt(id);
                }
            })
            .expect("spawn walltime timer");
    }

    /// Forcibly evict a running job: reclaim its nodes, run a grant pass,
    /// and fire the preempt hook. Models walltime expiry / queue preemption.
    pub fn preempt(&self, id: JobId) -> Result<(), String> {
        {
            let mut st = self.inner.state.lock();
            let job = st
                .jobs
                .get_mut(&id)
                .ok_or_else(|| format!("{id} is unknown"))?;
            match job.state {
                JobState::Running => {
                    job.state = JobState::Preempted;
                    let granted = std::mem::take(&mut job.granted);
                    st.free_nodes.extend(granted);
                    self.grant_locked(&mut st);
                }
                other => return Err(format!("{id} cannot be preempted from state {other:?}")),
            }
        }
        self.inner.cond.notify_all();
        if let Some(hook) = self.inner.preempt_hook.lock().as_ref() {
            hook(id);
        }
        Ok(())
    }

    /// FCFS grant pass; caller holds the lock.
    fn grant_locked(&self, st: &mut SchedState) {
        while let Some(&head) = st.queue.front() {
            let need = st.jobs.get(&head).map(|j| j.request.nodes).unwrap_or(0);
            if need > st.free_nodes.len() {
                // Strict FCFS: the head blocks everything behind it
                // (mirrors a conservative Slurm configuration).
                break;
            }
            st.queue.pop_front();
            let granted: Vec<usize> = st.free_nodes.drain(..need).collect();
            if let Some(job) = st.jobs.get_mut(&head) {
                job.state = JobState::Running;
                job.granted = granted;
                job.started_at = Some(Instant::now());
            }
        }
    }

    /// Current state of `id` (None for unknown ids).
    pub fn state(&self, id: JobId) -> Option<JobState> {
        self.inner.state.lock().jobs.get(&id).map(|j| j.state)
    }

    /// Number of jobs waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// Number of currently free nodes.
    pub fn free_node_count(&self) -> usize {
        self.inner.state.lock().free_nodes.len()
    }

    /// Block until `id` is running (or cancelled), up to `timeout`.
    /// Returns the granted node indices on success.
    pub fn wait_running(&self, id: JobId, timeout: Duration) -> Result<Vec<usize>, String> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock();
        loop {
            match st.jobs.get(&id) {
                None => return Err(format!("{id} is unknown")),
                Some(j) => match j.state {
                    JobState::Running => {
                        let granted = j.granted.clone();
                        drop(st);
                        pay(self.inner.config.grant_latency);
                        return Ok(granted);
                    }
                    JobState::Cancelled => return Err(format!("{id} was cancelled")),
                    JobState::Completed => return Err(format!("{id} already completed")),
                    JobState::Preempted => return Err(format!("{id} was preempted")),
                    JobState::Pending => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(format!("{id} still pending after {timeout:?}"));
                        }
                        self.inner.cond.wait_until(&mut st, deadline);
                    }
                },
            }
        }
    }

    /// Release a running job's nodes (idempotent for completed jobs).
    pub fn release(&self, id: JobId) -> Result<(), String> {
        {
            let mut st = self.inner.state.lock();
            let job = st
                .jobs
                .get_mut(&id)
                .ok_or_else(|| format!("{id} is unknown"))?;
            match job.state {
                JobState::Running => {
                    job.state = JobState::Completed;
                    let granted = std::mem::take(&mut job.granted);
                    st.free_nodes.extend(granted);
                    self.grant_locked(&mut st);
                }
                // Completed is idempotent; Preempted nodes were already
                // reclaimed, so release is a harmless no-op there too.
                JobState::Completed | JobState::Preempted => {}
                other => return Err(format!("{id} cannot be released from state {other:?}")),
            }
        }
        self.inner.cond.notify_all();
        Ok(())
    }

    /// Cancel a pending job. Running jobs must be released instead.
    pub fn cancel(&self, id: JobId) -> Result<(), String> {
        {
            let mut st = self.inner.state.lock();
            let job = st
                .jobs
                .get_mut(&id)
                .ok_or_else(|| format!("{id} is unknown"))?;
            match job.state {
                JobState::Pending => {
                    job.state = JobState::Cancelled;
                    st.queue.retain(|q| *q != id);
                    self.grant_locked(&mut st);
                }
                other => return Err(format!("{id} cannot be cancelled from state {other:?}")),
            }
        }
        self.inner.cond.notify_all();
        Ok(())
    }

    /// Queue wait time for a job that has started (None while pending).
    pub fn queue_wait(&self, id: JobId) -> Option<Duration> {
        let st = self.inner.state.lock();
        let j = st.jobs.get(&id)?;
        Some(j.started_at?.duration_since(j.submitted_at))
    }
}

/// RAII-ish handle to a submitted job.
#[derive(Clone)]
pub struct JobHandle {
    /// The job's id.
    pub id: JobId,
    scheduler: BatchScheduler,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").field("id", &self.id).finish()
    }
}

impl JobHandle {
    /// Current state.
    pub fn state(&self) -> JobState {
        self.scheduler
            .state(self.id)
            .expect("job belongs to this scheduler")
    }

    /// Wait until running; returns granted node indices.
    pub fn wait_running(&self, timeout: Duration) -> Result<Vec<usize>, String> {
        self.scheduler.wait_running(self.id, timeout)
    }

    /// Release the job's nodes.
    pub fn release(&self) -> Result<(), String> {
        self.scheduler.release(self.id)
    }

    /// Cancel while pending.
    pub fn cancel(&self) -> Result<(), String> {
        self.scheduler.cancel(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(nodes: usize) -> BatchScheduler {
        BatchScheduler::new(ClusterSpec::small(nodes, 4), SchedulerConfig::immediate())
    }

    #[test]
    fn grant_immediately_when_free() {
        let s = sched(3);
        let j = s.submit(JobRequest::nodes(2, "pilot")).unwrap();
        assert_eq!(j.state(), JobState::Running);
        let nodes = j.wait_running(Duration::from_secs(1)).unwrap();
        assert_eq!(nodes.len(), 2);
        assert_eq!(s.free_node_count(), 1);
        j.release().unwrap();
        assert_eq!(s.free_node_count(), 3);
    }

    #[test]
    fn fcfs_queueing() {
        let s = sched(2);
        let a = s.submit(JobRequest::nodes(2, "a")).unwrap();
        let b = s.submit(JobRequest::nodes(1, "b")).unwrap();
        let c = s.submit(JobRequest::nodes(1, "c")).unwrap();
        assert_eq!(a.state(), JobState::Running);
        assert_eq!(b.state(), JobState::Pending);
        assert_eq!(c.state(), JobState::Pending);
        assert_eq!(s.queue_depth(), 2);
        a.release().unwrap();
        // Release grants b and c in order.
        assert_eq!(b.state(), JobState::Running);
        assert_eq!(c.state(), JobState::Running);
        assert_eq!(s.queue_depth(), 0);
    }

    #[test]
    fn strict_fcfs_head_blocks() {
        let s = sched(2);
        let a = s.submit(JobRequest::nodes(1, "a")).unwrap();
        let big = s.submit(JobRequest::nodes(2, "big")).unwrap();
        let small = s.submit(JobRequest::nodes(1, "small")).unwrap();
        assert_eq!(a.state(), JobState::Running);
        // One node is free, but the 2-node head job blocks the 1-node job.
        assert_eq!(big.state(), JobState::Pending);
        assert_eq!(small.state(), JobState::Pending);
        a.release().unwrap();
        assert_eq!(big.state(), JobState::Running);
        assert_eq!(small.state(), JobState::Pending);
    }

    #[test]
    fn oversized_request_rejected() {
        let s = sched(2);
        let err = s.submit(JobRequest::nodes(3, "huge")).unwrap_err();
        assert!(err.contains("has only 2"));
        assert!(s.submit(JobRequest::nodes(0, "none")).is_err());
    }

    #[test]
    fn cancel_pending() {
        let s = sched(1);
        let a = s.submit(JobRequest::nodes(1, "a")).unwrap();
        let b = s.submit(JobRequest::nodes(1, "b")).unwrap();
        b.cancel().unwrap();
        assert_eq!(b.state(), JobState::Cancelled);
        assert!(b.wait_running(Duration::from_millis(10)).is_err());
        // Cancelling a running job is an error; releasing works.
        assert!(a.cancel().is_err());
        a.release().unwrap();
    }

    #[test]
    fn wait_running_times_out() {
        let s = sched(1);
        let _a = s.submit(JobRequest::nodes(1, "a")).unwrap();
        let b = s.submit(JobRequest::nodes(1, "b")).unwrap();
        let err = b.wait_running(Duration::from_millis(30)).unwrap_err();
        assert!(err.contains("pending"), "{err}");
    }

    #[test]
    fn wait_running_wakes_on_release() {
        let s = sched(1);
        let a = s.submit(JobRequest::nodes(1, "a")).unwrap();
        let b = s.submit(JobRequest::nodes(1, "b")).unwrap();
        let s2 = b.clone();
        let waiter = std::thread::spawn(move || s2.wait_running(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        a.release().unwrap();
        let nodes = waiter.join().unwrap().unwrap();
        assert_eq!(nodes.len(), 1);
    }

    #[test]
    fn release_is_idempotent_for_completed() {
        let s = sched(1);
        let a = s.submit(JobRequest::nodes(1, "a")).unwrap();
        a.release().unwrap();
        a.release().unwrap();
        assert_eq!(a.state(), JobState::Completed);
    }

    #[test]
    fn queue_wait_recorded() {
        let s = sched(1);
        let a = s.submit(JobRequest::nodes(1, "a")).unwrap();
        let b = s.submit(JobRequest::nodes(1, "b")).unwrap();
        assert!(s.queue_wait(b.id).is_none());
        std::thread::sleep(Duration::from_millis(15));
        a.release().unwrap();
        assert!(s.queue_wait(b.id).unwrap() >= Duration::from_millis(10));
    }

    #[test]
    fn preempt_reclaims_nodes_and_fires_hook() {
        let s = sched(2);
        let preempted = Arc::new(Mutex::new(Vec::new()));
        let seen = preempted.clone();
        s.set_preempt_hook(move |id| seen.lock().push(id));
        let a = s.submit(JobRequest::nodes(2, "victim")).unwrap();
        let b = s.submit(JobRequest::nodes(1, "waiter")).unwrap();
        assert_eq!(b.state(), JobState::Pending);
        s.preempt(a.id).unwrap();
        assert_eq!(a.state(), JobState::Preempted);
        // Reclaimed nodes grant the queued job.
        assert_eq!(b.state(), JobState::Running);
        assert_eq!(preempted.lock().as_slice(), &[a.id]);
        // Releasing a preempted job is a no-op, not an error.
        a.release().unwrap();
        // Preempting twice is an error (not running any more).
        assert!(s.preempt(a.id).is_err());
        assert!(a.wait_running(Duration::from_millis(10)).is_err());
    }

    #[test]
    fn walltime_expiry_preempts() {
        let s = sched(1);
        let hits = Arc::new(Mutex::new(0usize));
        let h = hits.clone();
        s.set_preempt_hook(move |_| *h.lock() += 1);
        let j = s
            .submit(JobRequest::nodes(1, "short").with_walltime(Duration::from_millis(25)))
            .unwrap();
        assert_eq!(j.state(), JobState::Running);
        // Deadline-bounded wait for the walltime timer (a real-time timer
        // thread by design) to fire.
        assert!(simtest::wait_until(Duration::from_secs(2), || j.state() != JobState::Running));
        assert_eq!(j.state(), JobState::Preempted);
        assert_eq!(s.free_node_count(), 1);
        assert_eq!(*hits.lock(), 1);
    }

    #[test]
    fn released_job_escapes_walltime() {
        let s = sched(1);
        let j = s
            .submit(JobRequest::nodes(1, "quick").with_walltime(Duration::from_millis(30)))
            .unwrap();
        j.release().unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(j.state(), JobState::Completed);
    }

    #[test]
    fn concurrent_submit_release_stress() {
        let s = BatchScheduler::new(ClusterSpec::small(4, 2), SchedulerConfig::immediate());
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    let j = s
                        .submit(JobRequest::nodes(1 + (t + i) % 2, format!("t{t}-{i}")))
                        .unwrap();
                    let nodes = j.wait_running(Duration::from_secs(10)).unwrap();
                    assert!(!nodes.is_empty());
                    j.release().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.free_node_count(), 4);
        assert_eq!(s.queue_depth(), 0);
    }
}
