//! `simrun` — drive the deterministic executor simulation from the CLI.
//!
//! ```text
//! simrun --log <seed>              print the byte-stable event log for one seed
//! simrun --suite --seeds 1,2,3     run the invariant suite over a seed list
//! simrun --suite --count 50 [--base B]   ... over B..B+50
//! ```
//!
//! The suite checks, per seed: no lost tasks, no double completions, and no
//! task accepted from a node it was re-dispatched away from. On any
//! violation it prints the reproducing seed and the exact replay command,
//! then exits nonzero — the contract ci.sh relies on.

use gridsim::sim::Scenario;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: simrun --log <seed>\n       simrun --suite (--seeds a,b,c | --count N [--base B])"
    );
    exit(2);
}

fn parse_u64(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("simrun: not a u64 seed: {s:?}");
        exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = None;
    let mut seeds: Vec<u64> = Vec::new();
    let mut count: Option<u64> = None;
    let mut base: u64 = 1;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--log" => {
                mode = Some("log");
                seeds.push(parse_u64(
                    it.next().map(String::as_str).unwrap_or_else(|| usage()),
                ));
            }
            "--suite" => mode = Some("suite"),
            "--seeds" => {
                let list = it.next().unwrap_or_else(|| usage());
                seeds.extend(list.split(',').filter(|s| !s.is_empty()).map(parse_u64));
            }
            "--count" => count = Some(parse_u64(it.next().unwrap_or_else(|| usage()))),
            "--base" => base = parse_u64(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if let Some(n) = count {
        seeds.extend(base..base + n);
    }

    match mode {
        Some("log") => {
            let sc = Scenario::from_seed(seeds[0]);
            let report = sc.run();
            print!("{}", report.event_log());
            if !report.violations.is_empty() {
                for v in &report.violations {
                    eprintln!("violation: {v}");
                }
                exit(1);
            }
        }
        Some("suite") => {
            if seeds.is_empty() {
                usage();
            }
            let mut failed = false;
            for &seed in &seeds {
                let sc = Scenario::from_seed(seed);
                let report = sc.run();
                let ok = report.violations.is_empty() && report.all_completed();
                if ok {
                    println!(
                        "seed {seed}: ok ({} shape, {} tasks, {} node(s) lost, {} redispatch(es), makespan {}us)",
                        sc.shape,
                        report.labels.len(),
                        report.nodes_lost.len(),
                        report.redispatches,
                        report.makespan_us
                    );
                } else {
                    failed = true;
                    println!("seed {seed}: FAILED ({} shape)", sc.shape);
                    for v in &report.violations {
                        println!("  violation: {v}");
                    }
                    for &t in &report.stranded {
                        println!("  stranded: {}", report.labels[t]);
                    }
                }
            }
            if failed {
                let bad: Vec<String> = seeds
                    .iter()
                    .filter(|&&s| {
                        let r = Scenario::from_seed(s).run();
                        !(r.violations.is_empty() && r.all_completed())
                    })
                    .map(|s| s.to_string())
                    .collect();
                eprintln!(
                    "simrun: invariant suite FAILED for seed(s) {}; replay with:",
                    bad.join(", ")
                );
                for s in &bad {
                    eprintln!("  cargo run -p gridsim --bin simrun -- --log {s}");
                }
                exit(1);
            }
            println!("simrun: {} seed(s) passed the invariant suite", seeds.len());
        }
        _ => usage(),
    }
}
