//! Node fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] scripts node deaths so fault-tolerance machinery can be
//! exercised deterministically: kill a named node after it has fully
//! executed N tasks, after a delay on the plan's clock (wall-clock by
//! default, a virtual clock under simulation), or immediately. Executors
//! consult the plan from their workers ([`FaultPlan::note_task`]) and
//! heartbeat threads ([`FaultPlan::is_dead`]); a dead node stops executing
//! and stops heartbeating, exactly as if its manager process were gone.
//!
//! Task-count triggers use *arrival* semantics: `kill_after_tasks(node, n)`
//! lets `n` task arrivals execute to completion, and the `(n+1)`-th arrival
//! finds the node dead before the task runs. This guarantees that at least
//! one task is lost in flight (and must be re-dispatched) the moment the
//! trigger fires, which is what fault-tolerance tests need to observe.

use parking_lot::Mutex;
use simtest::ClockRef;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug)]
enum Trigger {
    /// Let `remaining` more arrivals run; the next one after that dies.
    AfterTasks { remaining: usize },
    /// Dead once the plan's clock passes this offset.
    AfterElapsed { at: Duration },
}

struct FaultState {
    /// Time source for elapsed-time triggers: the process-wide real clock by
    /// default, a virtual clock under simulation (so deaths land at chosen
    /// *logical* instants).
    clock: ClockRef,
    triggers: HashMap<String, Trigger>,
    dead: HashMap<String, Duration>,
}

impl Default for FaultState {
    fn default() -> Self {
        Self {
            clock: simtest::real_clock(),
            triggers: HashMap::new(),
            dead: HashMap::new(),
        }
    }
}

impl FaultState {
    /// Promote elapsed-time triggers whose deadline has passed.
    fn apply_elapsed(&mut self) {
        let now = self.clock.now();
        let expired: Vec<String> = self
            .triggers
            .iter()
            .filter(|(_, t)| matches!(t, Trigger::AfterElapsed { at } if *at <= now))
            .map(|(n, _)| n.clone())
            .collect();
        for node in expired {
            self.triggers.remove(&node);
            self.dead.insert(node, now);
        }
    }
}

/// A scripted set of node deaths. Cheap to clone; all clones share state, so
/// the same plan can be handed to an executor, a scheduler, and a test.
#[derive(Clone, Default)]
pub struct FaultPlan {
    state: Arc<Mutex<FaultState>>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("FaultPlan")
            .field("pending", &st.triggers.len())
            .field("dead", &st.dead.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl FaultPlan {
    /// A plan with no scripted faults, timed against the real clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// A plan timed against an explicit clock — under a virtual clock,
    /// `kill_after` fires at a logical instant rather than a wall-clock one.
    pub fn with_clock(clock: ClockRef) -> Self {
        let plan = Self::default();
        plan.state.lock().clock = clock;
        plan
    }

    /// Kill `node` after it has fully executed `tasks` task arrivals; the
    /// next arrival finds it dead.
    pub fn kill_after_tasks(self, node: impl Into<String>, tasks: usize) -> Self {
        self.state
            .lock()
            .triggers
            .insert(node.into(), Trigger::AfterTasks { remaining: tasks });
        self
    }

    /// Kill `node` once `delay` has elapsed on the plan's clock.
    pub fn kill_after(self, node: impl Into<String>, delay: Duration) -> Self {
        {
            let mut st = self.state.lock();
            let at = st.clock.now() + delay;
            st.triggers
                .insert(node.into(), Trigger::AfterElapsed { at });
        }
        self
    }

    /// Kill `node` immediately.
    pub fn kill_now(self, node: impl Into<String>) -> Self {
        let node = node.into();
        let mut st = self.state.lock();
        st.triggers.remove(&node);
        let now = st.clock.now();
        st.dead.insert(node, now);
        drop(st);
        self
    }

    /// A worker on `node` is about to execute a task. Returns `true` when
    /// the node is (now) dead and the task must NOT run — the caller should
    /// leave it for re-dispatch and stop the worker.
    pub fn note_task(&self, node: &str) -> bool {
        let mut st = self.state.lock();
        st.apply_elapsed();
        if st.dead.contains_key(node) {
            return true;
        }
        match st.triggers.get_mut(node) {
            Some(Trigger::AfterTasks { remaining }) => {
                if *remaining == 0 {
                    st.triggers.remove(node);
                    let now = st.clock.now();
                    st.dead.insert(node.to_string(), now);
                    true
                } else {
                    *remaining -= 1;
                    false
                }
            }
            _ => false,
        }
    }

    /// Whether `node` is dead (elapsed-time triggers are applied lazily).
    pub fn is_dead(&self, node: &str) -> bool {
        let mut st = self.state.lock();
        st.apply_elapsed();
        st.dead.contains_key(node)
    }

    /// Names of all nodes that have died so far.
    pub fn dead_nodes(&self) -> Vec<String> {
        let mut st = self.state.lock();
        st.apply_elapsed();
        let mut nodes: Vec<String> = st.dead.keys().cloned().collect();
        nodes.sort();
        nodes
    }

    /// Whether the plan scripts any faults at all (pending or fired).
    pub fn is_empty(&self) -> bool {
        let st = self.state.lock();
        st.triggers.is_empty() && st.dead.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_kills_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(!plan.note_task("node01"));
        assert!(!plan.is_dead("node01"));
        assert!(plan.dead_nodes().is_empty());
    }

    #[test]
    fn task_count_trigger_uses_arrival_semantics() {
        let plan = FaultPlan::new().kill_after_tasks("node02", 2);
        // Two arrivals execute...
        assert!(!plan.note_task("node02"));
        assert!(!plan.note_task("node02"));
        assert!(!plan.is_dead("node02"));
        // ...the third finds the node dead and must not run.
        assert!(plan.note_task("node02"));
        assert!(plan.is_dead("node02"));
        assert!(plan.note_task("node02"));
        assert_eq!(plan.dead_nodes(), vec!["node02".to_string()]);
        // Other nodes are unaffected.
        assert!(!plan.note_task("node01"));
    }

    #[test]
    fn elapsed_trigger_fires_lazily() {
        let plan = FaultPlan::new().kill_after("node01", Duration::from_millis(20));
        assert!(!plan.is_dead("node01"));
        std::thread::sleep(Duration::from_millis(30));
        assert!(plan.is_dead("node01"));
        assert!(plan.note_task("node01"));
    }

    #[test]
    fn kill_now_is_immediate() {
        let plan = FaultPlan::new().kill_now("node03");
        assert!(plan.is_dead("node03"));
        assert!(plan.note_task("node03"));
    }

    #[test]
    fn elapsed_trigger_follows_virtual_clock() {
        let vc = simtest::VirtualClock::new();
        vc.set_auto(false);
        let plan = FaultPlan::with_clock(vc.clone()).kill_after("node01", Duration::from_secs(60));
        // A full real-time pause changes nothing: only logical time counts.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!plan.is_dead("node01"));
        vc.advance(Duration::from_secs(59));
        assert!(!plan.is_dead("node01"));
        vc.advance(Duration::from_secs(1));
        assert!(plan.is_dead("node01"));
    }

    #[test]
    fn clones_share_state() {
        let plan = FaultPlan::new().kill_after_tasks("n", 0);
        let observer = plan.clone();
        assert!(plan.note_task("n"));
        assert!(observer.is_dead("n"));
    }
}
