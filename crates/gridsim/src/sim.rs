//! Deterministic discrete-event simulation of the executor stack.
//!
//! This is the virtual-time event loop the simtest harness drives: simulated
//! nodes with a fixed worker count, message delays on the dispatch and
//! result paths, heartbeats with a staleness monitor, and fault injection at
//! chosen logical instants. It mirrors the semantics of
//! `parsl::htex` — slot-reserving dispatch, heartbeat loss → `NodeLost` →
//! re-dispatch of exactly the unfinished in-flight set, results from dead
//! nodes dropped at the flush boundary — but runs single-threaded on a
//! logical clock, so the *entire* schedule is a pure function of the seed:
//! the same seed produces a byte-identical event log, and a failing seed
//! replays the exact interleaving in a debugger.
//!
//! Invariants are checked inside the engine as events are applied (not
//! re-derived afterwards from the log):
//!
//! * **no lost tasks** — every task completes unless every node that could
//!   run it has been killed (reported as `stranded`, distinct from a bug);
//! * **no double completion** — a task result is accepted at most once;
//! * **lost-node exclusion** — a task attempt that was re-dispatched after
//!   its node was declared lost is never *also* accepted from that node.

use simtest::SimRng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashSet, VecDeque};
use std::fmt::Write as _;

/// One task in a simulated workflow DAG. `deps` are indices of tasks that
/// must complete first (always smaller than the task's own index).
#[derive(Clone, Debug)]
pub struct SimTask {
    pub label: String,
    pub deps: Vec<usize>,
}

/// A workflow DAG for the simulator.
#[derive(Clone, Debug)]
pub struct SimDag {
    pub tasks: Vec<SimTask>,
}

impl SimDag {
    fn task(label: impl Into<String>, deps: Vec<usize>) -> SimTask {
        SimTask {
            label: label.into(),
            deps,
        }
    }

    /// The paper's 4-step diamond: seed → (left, right) → join.
    pub fn diamond() -> Self {
        SimDag {
            tasks: vec![
                Self::task("seed", vec![]),
                Self::task("left", vec![0]),
                Self::task("right", vec![0]),
                Self::task("join", vec![1, 2]),
            ],
        }
    }

    /// Fan-out/fan-in: seed → `width` shards → join.
    pub fn scatter(width: usize) -> Self {
        let mut tasks = vec![Self::task("seed", vec![])];
        for i in 0..width {
            tasks.push(Self::task(format!("shard{i}"), vec![0]));
        }
        tasks.push(Self::task("join", (1..=width).collect()));
        SimDag { tasks }
    }

    /// A strict chain of `n` tasks.
    pub fn chain(n: usize) -> Self {
        let tasks = (0..n)
            .map(|i| Self::task(format!("c{i}"), if i == 0 { vec![] } else { vec![i - 1] }))
            .collect();
        SimDag { tasks }
    }

    /// A random DAG over `n` tasks; edges only point forward, so it is
    /// acyclic by construction.
    pub fn random(rng: &mut SimRng, n: usize) -> Self {
        let tasks = (0..n)
            .map(|i| {
                let mut deps = Vec::new();
                for j in 0..i {
                    if rng.gen_bool(2.0 / (i as f64 + 1.0)) {
                        deps.push(j);
                    }
                }
                Self::task(format!("t{i}"), deps)
            })
            .collect();
        SimDag { tasks }
    }
}

/// Kill `node` at logical instant `at_us`.
#[derive(Clone, Copy, Debug)]
pub struct SimFault {
    pub node: usize,
    pub at_us: u64,
}

/// Simulation parameters. All times are logical microseconds; `(lo, hi)`
/// pairs are half-open uniform draw ranges.
#[derive(Clone, Debug)]
pub struct SimConfig {
    pub seed: u64,
    pub nodes: usize,
    pub workers_per_node: usize,
    pub heartbeat_period_us: u64,
    pub heartbeat_threshold_us: u64,
    pub exec_us: (u64, u64),
    pub dispatch_delay_us: (u64, u64),
    pub result_delay_us: (u64, u64),
    pub faults: Vec<SimFault>,
}

impl SimConfig {
    /// Small healthy cluster, no faults.
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            nodes: 3,
            workers_per_node: 2,
            heartbeat_period_us: 1_000,
            heartbeat_threshold_us: 4_000,
            exec_us: (200, 2_000),
            dispatch_delay_us: (10, 200),
            result_delay_us: (10, 200),
            faults: Vec::new(),
        }
    }
}

/// What happened, when. `seq` is the tie-breaker within one logical instant;
/// together `(at_us, seq)` totally order the schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimEvent {
    pub at_us: u64,
    pub seq: u64,
    pub kind: SimEventKind,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimEventKind {
    Dispatch {
        task: usize,
        node: usize,
        attempt: u32,
    },
    Complete {
        task: usize,
        node: usize,
        attempt: u32,
    },
    Kill {
        node: usize,
    },
    NodeLost {
        node: usize,
    },
    Redispatched {
        task: usize,
        node: usize,
        attempt: u32,
    },
    ResultDropped {
        task: usize,
        node: usize,
        attempt: u32,
    },
    Stranded {
        task: usize,
    },
}

impl SimEvent {
    fn render(&self, labels: &[String]) -> String {
        let name = |t: usize| labels[t].as_str();
        match &self.kind {
            SimEventKind::Dispatch {
                task,
                node,
                attempt,
            } => {
                format!(
                    "dispatch {} -> node{} attempt {}",
                    name(*task),
                    node,
                    attempt
                )
            }
            SimEventKind::Complete {
                task,
                node,
                attempt,
            } => {
                format!(
                    "complete {} on node{} attempt {}",
                    name(*task),
                    node,
                    attempt
                )
            }
            SimEventKind::Kill { node } => format!("kill node{node}"),
            SimEventKind::NodeLost { node } => format!("node-lost node{node}"),
            SimEventKind::Redispatched {
                task,
                node,
                attempt,
            } => {
                format!(
                    "redispatch {} (was node{} attempt {})",
                    name(*task),
                    node,
                    attempt
                )
            }
            SimEventKind::ResultDropped {
                task,
                node,
                attempt,
            } => {
                format!(
                    "result-dropped {} from node{} attempt {}",
                    name(*task),
                    node,
                    attempt
                )
            }
            SimEventKind::Stranded { task } => format!("stranded {}", name(*task)),
        }
    }
}

/// Outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    pub events: Vec<SimEvent>,
    pub labels: Vec<String>,
    pub completed: usize,
    pub redispatches: usize,
    pub nodes_lost: Vec<usize>,
    pub stranded: Vec<usize>,
    pub violations: Vec<String>,
    pub makespan_us: u64,
}

impl SimReport {
    /// All tasks ran to completion (nothing lost, nothing stranded).
    pub fn all_completed(&self) -> bool {
        self.stranded.is_empty() && self.completed == self.labels.len()
    }

    /// Byte-stable rendering of the schedule: one line per event, ordered by
    /// `(at_us, seq)`. Two runs of the same seed must produce identical
    /// bytes here — CI diffs this output directly.
    pub fn event_log(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            let _ = writeln!(
                out,
                "{:>10}us #{:04} {}",
                ev.at_us,
                ev.seq,
                ev.render(&self.labels)
            );
        }
        out
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskState {
    Waiting,
    Ready,
    InFlight { node: usize, attempt: u32 },
    Done { node: usize, attempt: u32 },
}

struct TaskInfo {
    deps_left: usize,
    children: Vec<usize>,
    state: TaskState,
    attempts: u32,
}

struct NodeState {
    alive: bool,
    declared_lost: bool,
    last_beat_us: u64,
    free_workers: usize,
    /// task index → attempt currently assigned to this node.
    in_flight: BTreeMap<usize, u32>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ev {
    Kill {
        node: usize,
    },
    Heartbeat {
        node: usize,
    },
    MonitorScan,
    TaskArrive {
        task: usize,
        node: usize,
        attempt: u32,
    },
    ExecDone {
        task: usize,
        node: usize,
        attempt: u32,
    },
    ResultArrive {
        task: usize,
        node: usize,
        attempt: u32,
    },
}

struct Engine {
    cfg: SimConfig,
    rng: SimRng,
    now_us: u64,
    /// Scheduled events, indexed by their (unique) sequence number; the heap
    /// orders `(at_us, seq)` pairs, so ties at one instant resolve in
    /// scheduling order.
    pending: Vec<Ev>,
    queue: BinaryHeap<Reverse<(u64, u64)>>,
    tasks: Vec<TaskInfo>,
    nodes: Vec<NodeState>,
    ready: VecDeque<usize>,
    rr: usize,
    // Report accumulation.
    labels: Vec<String>,
    events: Vec<SimEvent>,
    log_seq: u64,
    completed: usize,
    redispatches: usize,
    nodes_lost: Vec<usize>,
    violations: Vec<String>,
    /// (task, node, attempt) triples that were re-dispatched away from a
    /// lost node; accepting a result for one of these is the invariant
    /// violation the proptest hunts for.
    redispatched_attempts: HashSet<(usize, usize, u32)>,
}

/// Run `dag` under `cfg` and return the full schedule and its invariants.
pub fn run(cfg: &SimConfig, dag: &SimDag) -> SimReport {
    let mut tasks: Vec<TaskInfo> = dag
        .tasks
        .iter()
        .map(|t| TaskInfo {
            deps_left: t.deps.len(),
            children: Vec::new(),
            state: if t.deps.is_empty() {
                TaskState::Ready
            } else {
                TaskState::Waiting
            },
            attempts: 0,
        })
        .collect();
    for (i, t) in dag.tasks.iter().enumerate() {
        for &d in &t.deps {
            tasks[d].children.push(i);
        }
    }
    let ready: VecDeque<usize> = tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.state == TaskState::Ready)
        .map(|(i, _)| i)
        .collect();
    let nodes = (0..cfg.nodes.max(1))
        .map(|_| NodeState {
            alive: true,
            declared_lost: false,
            last_beat_us: 0,
            free_workers: cfg.workers_per_node.max(1),
            in_flight: BTreeMap::new(),
        })
        .collect();

    let mut eng = Engine {
        rng: SimRng::seeded(cfg.seed),
        cfg: cfg.clone(),
        now_us: 0,
        pending: Vec::new(),
        queue: BinaryHeap::new(),
        tasks,
        nodes,
        ready,
        rr: 0,
        labels: dag.tasks.iter().map(|t| t.label.clone()).collect(),
        events: Vec::new(),
        log_seq: 0,
        completed: 0,
        redispatches: 0,
        nodes_lost: Vec::new(),
        violations: Vec::new(),
        redispatched_attempts: HashSet::new(),
    };
    eng.run();

    let stranded: Vec<usize> = eng
        .tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.state, TaskState::Done { .. }))
        .map(|(i, _)| i)
        .collect();
    for &t in &stranded {
        eng.log(SimEventKind::Stranded { task: t });
        // A task left behind while a live node could still run it is a lost
        // task — the core invariant. Stranding is only legitimate when the
        // whole cluster is gone.
        if eng.nodes.iter().any(|n| n.alive && !n.declared_lost) {
            eng.violations.push(format!(
                "lost task: {} never completed although node(s) survive",
                eng.labels[t]
            ));
        }
    }
    SimReport {
        makespan_us: eng.now_us,
        labels: eng.labels,
        events: eng.events,
        completed: eng.completed,
        redispatches: eng.redispatches,
        nodes_lost: eng.nodes_lost,
        stranded,
        violations: eng.violations,
    }
}

impl Engine {
    fn schedule(&mut self, delay_us: u64, ev: Ev) {
        let at = self.now_us + delay_us;
        let seq = self.pending.len() as u64;
        self.pending.push(ev);
        self.queue.push(Reverse((at, seq)));
    }

    fn log(&mut self, kind: SimEventKind) {
        let seq = self.log_seq;
        self.log_seq += 1;
        self.events.push(SimEvent {
            at_us: self.now_us,
            seq,
            kind,
        });
    }

    fn draw(&mut self, range: (u64, u64)) -> u64 {
        self.rng.gen_range_u64(range.0, range.1)
    }

    fn all_done(&self) -> bool {
        self.tasks
            .iter()
            .all(|t| matches!(t.state, TaskState::Done { .. }))
    }

    /// Is there any point keeping periodic machinery armed? Yes while work
    /// remains and some node is either still usable or still awaiting its
    /// `NodeLost` declaration (i.e. not yet declared lost).
    fn keep_periodic(&self) -> bool {
        !self.all_done() && self.nodes.iter().any(|n| !n.declared_lost)
    }

    fn run(&mut self) {
        for f in self.cfg.faults.clone() {
            if f.node < self.nodes.len() {
                self.schedule(f.at_us, Ev::Kill { node: f.node });
            }
        }
        for node in 0..self.nodes.len() {
            let period = self.cfg.heartbeat_period_us;
            self.schedule(period, Ev::Heartbeat { node });
        }
        self.schedule(self.cfg.heartbeat_period_us, Ev::MonitorScan);
        self.try_dispatch();

        while let Some(Reverse((at, seq))) = self.queue.pop() {
            self.now_us = at;
            let ev = self.pending[seq as usize];
            self.apply(ev);
            if self.all_done() {
                break;
            }
        }
    }

    fn apply(&mut self, ev: Ev) {
        match ev {
            Ev::Kill { node } => {
                if self.nodes[node].alive {
                    self.nodes[node].alive = false;
                    self.log(SimEventKind::Kill { node });
                }
            }
            Ev::Heartbeat { node } => {
                // A dead node's heartbeat thread is gone: no beat, no re-arm.
                if self.nodes[node].alive {
                    self.nodes[node].last_beat_us = self.now_us;
                    if self.keep_periodic() {
                        let period = self.cfg.heartbeat_period_us;
                        self.schedule(period, Ev::Heartbeat { node });
                    }
                }
            }
            Ev::MonitorScan => {
                for node in 0..self.nodes.len() {
                    let stale = self.now_us.saturating_sub(self.nodes[node].last_beat_us)
                        > self.cfg.heartbeat_threshold_us;
                    if !self.nodes[node].declared_lost && stale {
                        self.declare_lost(node);
                    }
                }
                if self.keep_periodic() {
                    let period = self.cfg.heartbeat_period_us;
                    self.schedule(period, Ev::MonitorScan);
                }
                self.try_dispatch();
            }
            Ev::TaskArrive {
                task,
                node,
                attempt,
            } => {
                // Only start executing if the node is still alive and the
                // assignment has not been superseded by a re-dispatch.
                if self.nodes[node].alive && self.nodes[node].in_flight.get(&task) == Some(&attempt)
                {
                    let exec = self.draw(self.cfg.exec_us);
                    self.schedule(
                        exec,
                        Ev::ExecDone {
                            task,
                            node,
                            attempt,
                        },
                    );
                }
            }
            Ev::ExecDone {
                task,
                node,
                attempt,
            } => {
                if self.nodes[node].alive && self.nodes[node].in_flight.get(&task) == Some(&attempt)
                {
                    let delay = self.draw(self.cfg.result_delay_us);
                    self.schedule(
                        delay,
                        Ev::ResultArrive {
                            task,
                            node,
                            attempt,
                        },
                    );
                }
            }
            Ev::ResultArrive {
                task,
                node,
                attempt,
            } => {
                // The flush boundary: results from nodes now known dead are
                // dropped; the monitor re-dispatches their tasks.
                if !self.nodes[node].alive || self.nodes[node].declared_lost {
                    self.log(SimEventKind::ResultDropped {
                        task,
                        node,
                        attempt,
                    });
                    return;
                }
                if self.redispatched_attempts.contains(&(task, node, attempt)) {
                    self.violations.push(format!(
                        "task {} attempt {} completed on node{} after being re-dispatched away",
                        self.labels[task], attempt, node
                    ));
                }
                if let TaskState::Done { .. } = self.tasks[task].state {
                    self.violations.push(format!(
                        "task {} completed twice (second result from node{} attempt {})",
                        self.labels[task], node, attempt
                    ));
                    return;
                }
                self.tasks[task].state = TaskState::Done { node, attempt };
                self.nodes[node].in_flight.remove(&task);
                self.nodes[node].free_workers += 1;
                self.completed += 1;
                self.log(SimEventKind::Complete {
                    task,
                    node,
                    attempt,
                });
                let children = self.tasks[task].children.clone();
                for c in children {
                    self.tasks[c].deps_left -= 1;
                    if self.tasks[c].deps_left == 0 {
                        self.tasks[c].state = TaskState::Ready;
                        self.ready.push_back(c);
                    }
                }
                self.try_dispatch();
            }
        }
    }

    fn declare_lost(&mut self, node: usize) {
        self.nodes[node].declared_lost = true;
        self.nodes_lost.push(node);
        self.log(SimEventKind::NodeLost { node });
        // Drain exactly the unfinished in-flight set back to ready, in
        // deterministic (task index) order.
        let drained: Vec<(usize, u32)> = std::mem::take(&mut self.nodes[node].in_flight)
            .into_iter()
            .collect();
        self.nodes[node].free_workers = 0;
        for (task, attempt) in drained {
            if matches!(self.tasks[task].state, TaskState::Done { .. }) {
                continue;
            }
            self.redispatched_attempts.insert((task, node, attempt));
            self.redispatches += 1;
            self.log(SimEventKind::Redispatched {
                task,
                node,
                attempt,
            });
            self.tasks[task].state = TaskState::Ready;
            self.ready.push_back(task);
        }
    }

    /// Assign ready tasks to free workers, round-robin over usable nodes.
    /// Deterministic: ready queue is FIFO, node choice rotates from `rr`.
    fn try_dispatch(&mut self) {
        while let Some(&task) = self.ready.front() {
            let n = self.nodes.len();
            let mut chosen = None;
            for off in 0..n {
                let node = (self.rr + off) % n;
                let ns = &self.nodes[node];
                if ns.alive && !ns.declared_lost && ns.free_workers > 0 {
                    chosen = Some(node);
                    break;
                }
            }
            let Some(node) = chosen else { break };
            self.ready.pop_front();
            self.rr = (node + 1) % n;
            self.tasks[task].attempts += 1;
            let attempt = self.tasks[task].attempts;
            self.tasks[task].state = TaskState::InFlight { node, attempt };
            self.nodes[node].free_workers -= 1;
            self.nodes[node].in_flight.insert(task, attempt);
            self.log(SimEventKind::Dispatch {
                task,
                node,
                attempt,
            });
            let delay = self.draw(self.cfg.dispatch_delay_us);
            self.schedule(
                delay,
                Ev::TaskArrive {
                    task,
                    node,
                    attempt,
                },
            );
        }
    }
}

/// A fully seeded scenario: workflow shape, cluster size, and fault plan all
/// derived from one `u64`. This is the unit of the schedule-exploration
/// suite — `simrun --log <seed>` replays exactly this.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub seed: u64,
    pub shape: &'static str,
    pub cfg: SimConfig,
    pub dag: SimDag,
}

impl Scenario {
    pub fn from_seed(seed: u64) -> Self {
        // Salted so scenario-shape draws never collide with the engine's own
        // stream (which is seeded with the raw seed).
        let mut rng = SimRng::seeded(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5CE9_A210);
        let nodes = 2 + rng.gen_index(3); // 2..=4
        let workers = 1 + rng.gen_index(3); // 1..=3
        let (shape, dag) = match rng.gen_index(4) {
            0 => ("diamond", SimDag::diamond()),
            1 => ("scatter", SimDag::scatter(4 + rng.gen_index(9))),
            2 => ("chain", SimDag::chain(4 + rng.gen_index(5))),
            _ => {
                let n = 6 + rng.gen_index(11);
                ("random", SimDag::random(&mut rng, n))
            }
        };
        let mut cfg = SimConfig::new(seed);
        cfg.nodes = nodes;
        cfg.workers_per_node = workers;
        // Kill up to nodes-1 distinct nodes (always leave node0 as a
        // survivor). Most seeds inject at least one fault, and kill instants
        // are biased into the first half of a typical makespan so the node
        // usually still holds in-flight work when it dies.
        let mut faults = Vec::new();
        let kills = if rng.gen_bool(0.7) {
            1 + rng.gen_index(nodes - 1)
        } else {
            0
        };
        let mut victims: Vec<usize> = (1..nodes).collect();
        for _ in 0..kills {
            let pick = rng.gen_index(victims.len());
            let node = victims.swap_remove(pick);
            let at_us = rng.gen_range_u64(500, 8_000);
            faults.push(SimFault { node, at_us });
        }
        faults.sort_by_key(|f| (f.at_us, f.node));
        cfg.faults = faults;
        Scenario {
            seed,
            shape,
            cfg,
            dag,
        }
    }

    pub fn run(&self) -> SimReport {
        run(&self.cfg, &self.dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_diamond_completes() {
        let cfg = SimConfig::new(1);
        let report = run(&cfg, &SimDag::diamond());
        assert!(report.all_completed(), "{:?}", report.violations);
        assert!(report.violations.is_empty());
        assert_eq!(report.completed, 4);
        assert!(report.redispatches == 0 && report.nodes_lost.is_empty());
    }

    #[test]
    fn kill_triggers_node_lost_then_redispatch_then_completion() {
        let mut cfg = SimConfig::new(7);
        cfg.nodes = 2;
        cfg.workers_per_node = 2;
        // Kill node1 early enough that it still holds in-flight shards.
        cfg.faults = vec![SimFault {
            node: 1,
            at_us: 600,
        }];
        let report = run(&cfg, &SimDag::scatter(8));
        assert!(report.all_completed(), "{:?}", report.violations);
        assert!(report.violations.is_empty());
        assert_eq!(report.nodes_lost, vec![1]);
        // The kill must precede the loss declaration, which must precede
        // every redispatch of that node's tasks.
        let pos =
            |pred: &dyn Fn(&SimEventKind) -> bool| report.events.iter().position(|e| pred(&e.kind));
        let kill = pos(&|k| matches!(k, SimEventKind::Kill { node: 1 })).unwrap();
        let lost = pos(&|k| matches!(k, SimEventKind::NodeLost { node: 1 })).unwrap();
        assert!(kill < lost);
        for (i, e) in report.events.iter().enumerate() {
            if matches!(e.kind, SimEventKind::Redispatched { node: 1, .. }) {
                assert!(i > lost);
            }
        }
    }

    #[test]
    fn same_seed_byte_identical_logs() {
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let sc = Scenario::from_seed(seed);
            let first = sc.run().event_log();
            for _ in 0..9 {
                assert_eq!(first, Scenario::from_seed(seed).run().event_log());
            }
        }
    }

    #[test]
    fn different_seeds_explore_different_schedules() {
        let a = Scenario::from_seed(100).run().event_log();
        let b = Scenario::from_seed(101).run().event_log();
        assert_ne!(a, b);
    }

    #[test]
    fn all_nodes_killed_strands_rather_than_violates() {
        let mut cfg = SimConfig::new(3);
        cfg.nodes = 2;
        cfg.faults = vec![
            SimFault {
                node: 0,
                at_us: 300,
            },
            SimFault {
                node: 1,
                at_us: 300,
            },
        ];
        let report = run(&cfg, &SimDag::chain(6));
        assert!(!report.all_completed());
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(!report.stranded.is_empty());
    }
}
