//! Descriptions of the simulated machine room.

use std::fmt;

/// A single compute node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Node hostname (e.g. `node01`).
    pub name: String,
    /// Logical CPU count (the paper's nodes expose 48).
    pub cores: usize,
    /// Memory in GiB (informational; used for validation only).
    pub mem_gib: usize,
}

impl NodeSpec {
    /// Build a node spec.
    pub fn new(name: impl Into<String>, cores: usize, mem_gib: usize) -> Self {
        Self {
            name: name.into(),
            cores,
            mem_gib,
        }
    }
}

impl fmt::Display for NodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} cores, {} GiB)",
            self.name, self.cores, self.mem_gib
        )
    }
}

/// A named collection of nodes — the whole simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Cluster name (appears in logs).
    pub name: String,
    /// Member nodes.
    pub nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// A homogeneous cluster of `n_nodes` identical nodes.
    pub fn homogeneous(
        name: impl Into<String>,
        n_nodes: usize,
        cores: usize,
        mem_gib: usize,
    ) -> Self {
        let nodes = (0..n_nodes)
            .map(|i| NodeSpec::new(format!("node{:02}", i + 1), cores, mem_gib))
            .collect();
        Self {
            name: name.into(),
            nodes,
        }
    }

    /// The paper's evaluation cluster: 3 nodes × 48 logical CPUs × 126 GiB.
    pub fn paper_cluster() -> Self {
        Self::homogeneous("dept-hpc", 3, 48, 126)
    }

    /// A single node of the paper's cluster (Fig. 1b configuration).
    pub fn paper_single_node() -> Self {
        Self::homogeneous("dept-hpc-1", 1, 48, 126)
    }

    /// A small cluster sized for laptop-scale tests: `n_nodes` × `cores`.
    pub fn small(n_nodes: usize, cores: usize) -> Self {
        Self::homogeneous("testgrid", n_nodes, cores, 16)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total logical cores across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes.iter().map(|n| n.cores).sum()
    }

    /// Validate basic sanity (non-empty, every node has cores).
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err(format!("cluster {:?} has no nodes", self.name));
        }
        for node in &self.nodes {
            if node.cores == 0 {
                return Err(format!("node {:?} has zero cores", node.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_builds_numbered_nodes() {
        let c = ClusterSpec::homogeneous("c", 3, 8, 16);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.nodes[0].name, "node01");
        assert_eq!(c.nodes[2].name, "node03");
        assert_eq!(c.total_cores(), 24);
    }

    #[test]
    fn paper_cluster_matches_hardware_section() {
        let c = ClusterSpec::paper_cluster();
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.nodes[0].cores, 48);
        assert_eq!(c.nodes[0].mem_gib, 126);
        assert_eq!(c.total_cores(), 144);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_specs() {
        let empty = ClusterSpec {
            name: "x".into(),
            nodes: vec![],
        };
        assert!(empty.validate().is_err());
        let zero = ClusterSpec {
            name: "x".into(),
            nodes: vec![NodeSpec::new("n", 0, 1)],
        };
        assert!(zero.validate().is_err());
    }

    #[test]
    fn display_formats() {
        let n = NodeSpec::new("node01", 48, 126);
        assert_eq!(n.to_string(), "node01 (48 cores, 126 GiB)");
    }
}
