//! `cwlexec` — the shared tool-execution engine every runner in this
//! workspace builds on.
//!
//! Running one `CommandLineTool` means: resolve the input object → run the
//! paper's `validate:` hooks → build the command line → execute it → collect
//! the output object. That pipeline is identical whether the caller is the
//! Parsl bridge (`cwl_parsl`), the cwltool-like reference runner, or the
//! Toil-like runner — they differ in *scheduling* and *overhead structure*,
//! not in per-tool semantics. This crate owns the per-tool semantics:
//!
//! * [`engine_for`] — pick and build the expression engine a tool needs
//!   (inline Python from the paper's `InlinePythonRequirement`, otherwise
//!   JavaScript with a configurable process-boundary cost model);
//! * [`ToolDispatch`] — how a built command actually runs:
//!   [`SubprocessDispatch`] spawns the real process;
//!   [`BuiltinDispatch`] recognizes the workspace's workload commands
//!   (`imgtool`, `echo`, `cat`, `sleepms`, `wc-words`) and executes them
//!   in-process, which keeps thousand-task benchmark sweeps hermetic while
//!   exercising the identical binding/collection code path;
//! * [`execute_tool`] — the full per-tool pipeline; [`execute_tool_staged`]
//!   is the same pipeline with the content-addressed data plane attached
//!   (inputs staged zero-copy into the workdir, outputs registered as CAS
//!   handles with digests).

pub mod dispatch;
pub mod engine;
pub mod exec;
pub mod staging;

pub use dispatch::{BuiltinDispatch, FlakyDispatch, SubprocessDispatch, ToolDispatch};
pub use engine::engine_for;
pub use exec::{execute_tool, execute_tool_staged, ToolRun};
pub use staging::{publish_stage_stats, StageCtx, StagingSettings};
