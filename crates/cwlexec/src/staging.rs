//! The execution engine's view of the data plane: configuration, the
//! per-task staging context, and publication of stage counters into the
//! observability layer.

use datastore::{ContentStore, StageMode, StageStats, Stager};
use obs::Observability;
use std::path::PathBuf;
use std::sync::Arc;

/// The `staging:` config block, resolved. Shared by every runner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StagingSettings {
    /// How files materialize in task workdirs.
    pub mode: StageMode,
    /// Content-store directory. `None` = per-run (`<run dir>/cas`); a
    /// path points several runs at one shared store.
    pub dir: Option<PathBuf>,
    /// Parallel stage-in pool width (prestage hashing).
    pub pool: usize,
}

impl Default for StagingSettings {
    fn default() -> Self {
        StagingSettings {
            mode: StageMode::Auto,
            dir: None,
            pool: 4,
        }
    }
}

impl StagingSettings {
    /// Open the store (under `run_dir` unless pinned by config) and build
    /// a stager in the configured mode.
    pub fn build(&self, run_dir: &std::path::Path) -> Result<Arc<Stager>, String> {
        let root = self.dir.clone().unwrap_or_else(|| run_dir.join("cas"));
        let store = ContentStore::open(&root)
            .map_err(|e| format!("cannot open content store {}: {e}", root.display()))?;
        Ok(Stager::new(store, self.mode))
    }

    /// Reject settings that would fail mid-run: a pinned `staging.dir`
    /// whose deepest existing ancestor is not a writable directory (the
    /// store `open` would error only after tasks started), and a
    /// nonsensical pool width. Config loaders call this so bad user YAML
    /// fails at load with a clear message.
    pub fn validate(&self) -> Result<(), String> {
        if self.pool == 0 {
            return Err("staging.pool must be at least 1".to_string());
        }
        let Some(dir) = &self.dir else { return Ok(()) };
        // Walk up to the deepest ancestor that exists; the store will
        // mkdir -p the rest, so that ancestor is what must be writable.
        let mut probe = dir.as_path();
        loop {
            if probe.exists() {
                if !probe.is_dir() {
                    return Err(format!(
                        "staging.dir {}: ancestor {} exists but is not a directory",
                        dir.display(),
                        probe.display()
                    ));
                }
                let marker = probe.join(format!(".staging-probe-{}", std::process::id()));
                return match std::fs::File::create(&marker) {
                    Ok(_) => {
                        let _ = std::fs::remove_file(&marker);
                        Ok(())
                    }
                    Err(e) => Err(format!(
                        "staging.dir {} is not writable ({} at {})",
                        dir.display(),
                        e,
                        probe.display()
                    )),
                };
            }
            match probe.parent() {
                Some(p) if p != probe => probe = p,
                _ => return Ok(()), // relative path with no existing prefix
            }
        }
    }
}

/// Per-task staging context threaded into [`crate::execute_tool_staged`]:
/// the stager plus where its spans should land.
pub struct StageCtx<'a> {
    pub stager: &'a Stager,
    /// Observability instance for stage spans (a per-run instance, so
    /// spans appear in the exported trace next to the task's other spans).
    pub obs: &'a Observability,
    /// Lineage (task) id the spans belong to; 0 = untracked.
    pub lineage: u64,
    /// Parent span id (usually the task's exec span).
    pub parent: u64,
}

/// Fold a stager's cumulative counters into an observability instance.
/// Called once per run, after execution and before export — stagers are
/// shared across concurrent tasks, so per-task deltas would race.
pub fn publish_stage_stats(obs: &Observability, stats: StageStats) {
    obs.counter(obs::names::STAGE_HITS).add(stats.hits);
    obs.counter(obs::names::STAGE_LINKS).add(stats.links);
    obs.counter(obs::names::STAGE_COPIES).add(stats.copies);
    obs.counter(obs::names::STAGE_BYTES_SAVED)
        .add(stats.bytes_saved);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_defaults_and_existing_dirs() {
        assert!(StagingSettings::default().validate().is_ok());
        let s = StagingSettings {
            dir: Some(std::env::temp_dir().join("staging-validate-test/cas")),
            ..Default::default()
        };
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_pool() {
        let s = StagingSettings {
            pool: 0,
            ..Default::default()
        };
        assert!(s.validate().unwrap_err().contains("staging.pool"));
    }

    #[test]
    fn validate_rejects_file_ancestor() {
        // /etc/passwd exists and is not a directory, so no path below it
        // can ever be created (this also holds when running as root,
        // unlike permission-based probes).
        let s = StagingSettings {
            dir: Some(PathBuf::from("/etc/passwd/cas")),
            ..Default::default()
        };
        let err = s.validate().unwrap_err();
        assert!(err.contains("not a directory"), "{err}");
    }
}
