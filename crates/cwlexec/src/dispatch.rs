//! How a built command actually executes.
//!
//! [`SubprocessDispatch`] spawns the real program. [`BuiltinDispatch`]
//! recognizes this workspace's workload tools and runs them in-process —
//! the same pixels get crunched and the same files get written, but
//! thousand-task sweeps stay hermetic (no PATH dependence) and avoid
//! fork/exec noise that would drown the scheduling effects the paper's
//! figures measure. All runners share whichever dispatch the experiment
//! selects, so comparisons stay apples-to-apples.

use cwl::BuiltCommand;
use std::io::Write;
use std::path::Path;

/// Executes a built command in a working directory.
pub trait ToolDispatch: Send + Sync {
    /// Run the command; `Ok(())` on success, `Err` with a message otherwise
    /// (non-zero exit counts as failure, mirroring CWL semantics).
    fn run(&self, cmd: &BuiltCommand, workdir: &Path) -> Result<(), String>;

    /// Label for logs.
    fn label(&self) -> &'static str;
}

/// Spawn the real subprocess.
pub struct SubprocessDispatch;

impl ToolDispatch for SubprocessDispatch {
    fn run(&self, cmd: &BuiltCommand, workdir: &Path) -> Result<(), String> {
        let Some(program) = cmd.argv.first() else {
            return Err("empty argv".to_string());
        };
        let mut command = std::process::Command::new(program);
        command.args(&cmd.argv[1..]).current_dir(workdir);
        for (k, v) in &cmd.env {
            command.env(k, v);
        }
        let stdout_file = cmd
            .stdout
            .as_ref()
            .map(|name| std::fs::File::create(workdir.join(name)))
            .transpose()
            .map_err(|e| format!("cannot create stdout capture: {e}"))?;
        if let Some(f) = stdout_file {
            command.stdout(f);
        }
        let stderr_file = cmd
            .stderr
            .as_ref()
            .map(|name| std::fs::File::create(workdir.join(name)))
            .transpose()
            .map_err(|e| format!("cannot create stderr capture: {e}"))?;
        if let Some(f) = stderr_file {
            command.stderr(f);
        }
        let status = command
            .status()
            .map_err(|e| format!("cannot spawn {program:?}: {e}"))?;
        if status.success() {
            Ok(())
        } else {
            Err(format!("{program:?} exited with status {status}"))
        }
    }

    fn label(&self) -> &'static str {
        "subprocess"
    }
}

/// Run the workspace's workload tools in-process.
///
/// Recognized commands:
/// * `imgtool resize|sepia|blur|gen|info …` — the imaging kernels;
/// * `echo args…` — writes args to the stdout capture;
/// * `cat file…` — concatenates files to the stdout capture;
/// * `wc-words file` — writes the file's word count to the stdout capture;
/// * `sleepms N` — sleeps N ms (synthetic workload knob).
///
/// Unrecognized commands return an error (use [`SubprocessDispatch`] for
/// arbitrary programs).
pub struct BuiltinDispatch;

impl BuiltinDispatch {
    fn write_stdout(cmd: &BuiltCommand, workdir: &Path, content: &str) -> Result<(), String> {
        if let Some(name) = &cmd.stdout {
            let mut f = std::fs::File::create(workdir.join(name))
                .map_err(|e| format!("cannot create stdout capture: {e}"))?;
            f.write_all(content.as_bytes())
                .map_err(|e| format!("cannot write stdout capture: {e}"))?;
        }
        Ok(())
    }
}

/// Positional arguments plus `--flag value` option pairs.
type ParsedArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Parse `--flag value` style options from an argv tail.
fn parse_opts(args: &[String]) -> Result<ParsedArgs<'_>, String> {
    let mut pos = Vec::new();
    let mut opts = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("option --{name} requires a value"))?;
            opts.push((name, value.as_str()));
            i += 2;
        } else {
            pos.push(args[i].as_str());
            i += 1;
        }
    }
    Ok((pos, opts))
}

fn opt<'a>(opts: &[(&'a str, &'a str)], name: &str) -> Option<&'a str> {
    opts.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
}

fn req_u32(opts: &[(&str, &str)], name: &str) -> Result<u32, String> {
    opt(opts, name)
        .ok_or_else(|| format!("--{name} is required"))?
        .parse::<u32>()
        .map_err(|_| format!("--{name} must be an integer"))
}

impl ToolDispatch for BuiltinDispatch {
    fn run(&self, cmd: &BuiltCommand, workdir: &Path) -> Result<(), String> {
        let argv = &cmd.argv;
        let Some(program) = argv.first().map(String::as_str) else {
            return Err("empty argv".to_string());
        };
        match program {
            "echo" => {
                let line = argv[1..].join(" ") + "\n";
                Self::write_stdout(cmd, workdir, &line)
            }
            "cat" => {
                let mut out = String::new();
                for name in &argv[1..] {
                    let p = workdir.join(name);
                    let p = if p.exists() { p } else { name.into() };
                    out.push_str(
                        &std::fs::read_to_string(&p)
                            .map_err(|e| format!("cat: {}: {e}", p.display()))?,
                    );
                }
                Self::write_stdout(cmd, workdir, &out)
            }
            "wc-words" => {
                let name = argv.get(1).ok_or("wc-words: missing file")?;
                let p = workdir.join(name);
                let p = if p.exists() { p } else { name.into() };
                let text = std::fs::read_to_string(&p)
                    .map_err(|e| format!("wc-words: {}: {e}", p.display()))?;
                Self::write_stdout(
                    cmd,
                    workdir,
                    &format!("{}\n", text.split_whitespace().count()),
                )
            }
            "sleepms" => {
                let ms: u64 = argv
                    .get(1)
                    .ok_or("sleepms: missing duration")?
                    .parse()
                    .map_err(|_| "sleepms: bad duration".to_string())?;
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Self::write_stdout(cmd, workdir, "slept\n")
            }
            "imgtool" => {
                let sub = argv
                    .get(1)
                    .map(String::as_str)
                    .ok_or("imgtool: missing subcommand")?;
                let (pos, opts) = parse_opts(&argv[2..])?;
                let resolve = |name: &str| {
                    let p = workdir.join(name);
                    if p.exists() || name.starts_with('/') {
                        if p.exists() {
                            p
                        } else {
                            name.into()
                        }
                    } else {
                        p
                    }
                };
                match sub {
                    "gen" => {
                        let [out] = pos[..] else {
                            return Err("imgtool gen: need out path".into());
                        };
                        let w = req_u32(&opts, "width")?;
                        let h = req_u32(&opts, "height")?;
                        let seed = opt(&opts, "seed")
                            .and_then(|s| s.parse().ok())
                            .unwrap_or(0u64);
                        let img = match opt(&opts, "kind").unwrap_or("gradient") {
                            "gradient" => imaging::gradient(w, h, seed),
                            "noise" => imaging::noise(w, h, seed),
                            "checker" => imaging::checkerboard(w, h, seed.max(1) as u32),
                            other => return Err(format!("imgtool gen: unknown kind {other:?}")),
                        };
                        imaging::write_rimg(workdir.join(out), &img).map_err(|e| e.to_string())
                    }
                    "resize" => {
                        let [input, output] = pos[..] else {
                            return Err("imgtool resize: need <in> <out>".into());
                        };
                        let size = req_u32(&opts, "size")?;
                        if size == 0 {
                            return Err("imgtool resize: --size must be positive".into());
                        }
                        let img = imaging::read_rimg(resolve(input)).map_err(|e| e.to_string())?;
                        let out = imaging::resize_bilinear(&img, size, size);
                        imaging::write_rimg(workdir.join(output), &out).map_err(|e| e.to_string())
                    }
                    "sepia" => {
                        let [input, output] = pos[..] else {
                            return Err("imgtool sepia: need <in> <out>".into());
                        };
                        let apply = match opt(&opts, "sepia").unwrap_or("true") {
                            "true" => true,
                            "false" => false,
                            other => return Err(format!("imgtool sepia: bad flag {other:?}")),
                        };
                        let img = imaging::read_rimg(resolve(input)).map_err(|e| e.to_string())?;
                        let out = if apply { imaging::sepia(&img) } else { img };
                        imaging::write_rimg(workdir.join(output), &out).map_err(|e| e.to_string())
                    }
                    "blur" => {
                        let [input, output] = pos[..] else {
                            return Err("imgtool blur: need <in> <out>".into());
                        };
                        let radius = req_u32(&opts, "radius")?;
                        let img = imaging::read_rimg(resolve(input)).map_err(|e| e.to_string())?;
                        let out = imaging::box_blur(&img, radius);
                        imaging::write_rimg(workdir.join(output), &out).map_err(|e| e.to_string())
                    }
                    other => Err(format!("imgtool: unknown subcommand {other:?}")),
                }
            }
            other => Err(format!(
                "builtin dispatch does not recognize {other:?} (use SubprocessDispatch)"
            )),
        }
    }

    fn label(&self) -> &'static str {
        "builtin"
    }
}

/// Failure-injection wrapper: fails the first `fail_first` invocations
/// (across all commands) before delegating to the inner dispatch. Used to
/// test retry and failure-propagation paths end to end.
pub struct FlakyDispatch<D: ToolDispatch> {
    inner: D,
    remaining_failures: std::sync::atomic::AtomicUsize,
    /// Total invocations observed (including failed ones).
    invocations: std::sync::atomic::AtomicUsize,
}

impl<D: ToolDispatch> FlakyDispatch<D> {
    /// Fail the first `fail_first` calls, then behave like `inner`.
    pub fn new(inner: D, fail_first: usize) -> Self {
        Self {
            inner,
            remaining_failures: std::sync::atomic::AtomicUsize::new(fail_first),
            invocations: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of dispatch invocations seen so far.
    pub fn invocations(&self) -> usize {
        self.invocations.load(std::sync::atomic::Ordering::SeqCst)
    }
}

impl<D: ToolDispatch> ToolDispatch for FlakyDispatch<D> {
    fn run(&self, cmd: &BuiltCommand, workdir: &Path) -> Result<(), String> {
        use std::sync::atomic::Ordering;
        self.invocations.fetch_add(1, Ordering::SeqCst);
        if self
            .remaining_failures
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(format!(
                "injected failure for {:?} (FlakyDispatch)",
                cmd.argv.first().map(String::as_str).unwrap_or("")
            ));
        }
        self.inner.run(cmd, workdir)
    }

    fn label(&self) -> &'static str {
        "flaky"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dispatch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn cmd(argv: &[&str], stdout: Option<&str>) -> BuiltCommand {
        BuiltCommand {
            argv: argv.iter().map(|s| s.to_string()).collect(),
            stdout: stdout.map(str::to_string),
            stderr: None,
            env: vec![],
        }
    }

    #[test]
    fn builtin_echo_and_cat() {
        let dir = workdir("echo");
        BuiltinDispatch
            .run(&cmd(&["echo", "hello", "world"], Some("o.txt")), &dir)
            .unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join("o.txt")).unwrap(),
            "hello world\n"
        );
        BuiltinDispatch
            .run(&cmd(&["cat", "o.txt", "o.txt"], Some("2x.txt")), &dir)
            .unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join("2x.txt")).unwrap(),
            "hello world\nhello world\n"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn builtin_wc_words() {
        let dir = workdir("wc");
        std::fs::write(dir.join("in.txt"), "one two  three\nfour").unwrap();
        BuiltinDispatch
            .run(&cmd(&["wc-words", "in.txt"], Some("n.txt")), &dir)
            .unwrap();
        assert_eq!(std::fs::read_to_string(dir.join("n.txt")).unwrap(), "4\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn builtin_imgtool_pipeline() {
        let dir = workdir("img");
        BuiltinDispatch
            .run(
                &cmd(
                    &[
                        "imgtool", "gen", "src.rimg", "--width", "32", "--height", "32", "--seed",
                        "7",
                    ],
                    None,
                ),
                &dir,
            )
            .unwrap();
        BuiltinDispatch
            .run(
                &cmd(
                    &["imgtool", "resize", "src.rimg", "r.rimg", "--size", "16"],
                    None,
                ),
                &dir,
            )
            .unwrap();
        BuiltinDispatch
            .run(
                &cmd(
                    &["imgtool", "sepia", "r.rimg", "s.rimg", "--sepia", "true"],
                    None,
                ),
                &dir,
            )
            .unwrap();
        BuiltinDispatch
            .run(
                &cmd(
                    &["imgtool", "blur", "s.rimg", "b.rimg", "--radius", "1"],
                    None,
                ),
                &dir,
            )
            .unwrap();
        let img = imaging::read_rimg(dir.join("b.rimg")).unwrap();
        assert_eq!((img.width(), img.height()), (16, 16));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn builtin_error_paths() {
        let dir = workdir("err");
        assert!(BuiltinDispatch
            .run(&cmd(&["nonsense"], None), &dir)
            .is_err());
        assert!(BuiltinDispatch
            .run(&cmd(&["imgtool", "resize", "a", "b"], None), &dir)
            .is_err());
        assert!(BuiltinDispatch
            .run(
                &cmd(
                    &["imgtool", "resize", "ghost.rimg", "o.rimg", "--size", "4"],
                    None
                ),
                &dir
            )
            .is_err());
        assert!(BuiltinDispatch
            .run(&cmd(&["cat", "ghost.txt"], Some("o")), &dir)
            .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn subprocess_dispatch_runs_real_programs() {
        let dir = workdir("sub");
        SubprocessDispatch
            .run(&cmd(&["echo", "via", "subprocess"], Some("out.txt")), &dir)
            .unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join("out.txt")).unwrap(),
            "via subprocess\n"
        );
        assert!(SubprocessDispatch
            .run(&cmd(&["false"], None), &dir)
            .is_err());
        assert!(SubprocessDispatch
            .run(&cmd(&["no-such-program-zzz"], None), &dir)
            .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flaky_dispatch_fails_then_recovers() {
        let dir = workdir("flaky");
        let d = FlakyDispatch::new(BuiltinDispatch, 2);
        let c = cmd(&["echo", "x"], Some("o.txt"));
        assert!(d.run(&c, &dir).unwrap_err().contains("injected"));
        assert!(d.run(&c, &dir).is_err());
        assert!(d.run(&c, &dir).is_ok());
        assert!(d.run(&c, &dir).is_ok());
        assert_eq!(d.invocations(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn builtin_and_subprocess_agree_on_echo() {
        let dir = workdir("agree");
        BuiltinDispatch
            .run(&cmd(&["echo", "same"], Some("a.txt")), &dir)
            .unwrap();
        SubprocessDispatch
            .run(&cmd(&["echo", "same"], Some("b.txt")), &dir)
            .unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join("a.txt")).unwrap(),
            std::fs::read_to_string(dir.join("b.txt")).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
