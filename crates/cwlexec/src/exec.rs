//! The per-tool execution pipeline shared by every runner.

use crate::dispatch::ToolDispatch;
use crate::staging::StageCtx;
use cwl::{build_command, CommandLineTool};
use expr::ExpressionEngine;
use obs::SpanKind;
use std::path::Path;
use yamlite::{Map, Value};

/// The result of one tool execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolRun {
    /// The collected output object (output id → value).
    pub outputs: Map,
    /// The command line that ran (for logs and reports).
    pub command: Vec<String>,
}

/// Execute one `CommandLineTool` in `workdir`:
/// resolve inputs → `validate:` hooks → build argv → dispatch → collect
/// outputs.
pub fn execute_tool(
    tool: &CommandLineTool,
    provided: &Map,
    workdir: &Path,
    engine: &dyn ExpressionEngine,
    dispatch: &dyn ToolDispatch,
) -> Result<ToolRun, String> {
    execute_tool_staged(tool, provided, workdir, engine, dispatch, None)
}

/// [`execute_tool`] with the data plane attached: inputs are staged into
/// `workdir` through the content store (zero-copy where the filesystem
/// allows), and collected outputs are registered back as CAS handles with
/// their content digest attached — the next step links instead of copying.
pub fn execute_tool_staged(
    tool: &CommandLineTool,
    provided: &Map,
    workdir: &Path,
    engine: &dyn ExpressionEngine,
    dispatch: &dyn ToolDispatch,
    staging: Option<&StageCtx<'_>>,
) -> Result<ToolRun, String> {
    std::fs::create_dir_all(workdir)
        .map_err(|e| format!("cannot create workdir {}: {e}", workdir.display()))?;
    let mut inputs = cwl::input::resolve_inputs(&tool.inputs, provided)?;
    if let Some(ctx) = staging {
        let span = ctx
            .obs
            .start_span(SpanKind::StageIn, ctx.lineage, ctx.parent, "stage_in");
        let staged = ctx
            .stager
            .stage_value(&Value::Map(inputs), workdir)
            .map_err(|e| format!("stage-in into {}: {e}", workdir.display()))?;
        ctx.obs.finish_span(span);
        inputs = match staged {
            Value::Map(m) => m,
            _ => unreachable!("stage_value preserves value shape"),
        };
    }
    cwl::input::run_validate_hooks(tool, &inputs, engine)?;
    let cmd = build_command(tool, &inputs, engine)?;
    // Tool dispatch has no handle to a run, so it records against the
    // process-global observability instance (disabled unless a run
    // enables it).
    let obs = obs::global();
    if obs.is_enabled() {
        let t0 = obs.now_us();
        let run = dispatch.run(&cmd, workdir);
        obs.counter(obs::names::DISPATCH_EXECS).incr();
        obs.histogram(obs::names::DISPATCH_EXEC_US)
            .record(obs.now_us().saturating_sub(t0));
        run?;
    } else {
        dispatch.run(&cmd, workdir)?;
    }
    let mut outputs = cwl::outputs::collect_outputs(
        tool,
        &inputs,
        engine,
        workdir,
        cmd.stdout.as_deref(),
        cmd.stderr.as_deref(),
    )?;
    if let Some(ctx) = staging {
        let span = ctx
            .obs
            .start_span(SpanKind::StageOut, ctx.lineage, ctx.parent, "stage_out");
        for (_, v) in outputs.iter_mut() {
            register_output_files(ctx, v);
        }
        ctx.obs.finish_span(span);
    }
    Ok(ToolRun {
        outputs,
        command: cmd.argv,
    })
}

/// Bind every collected `class: File` into the content store and attach
/// its digest. Registration failures are not fatal — the output is still
/// valid, it just won't be linkable downstream.
fn register_output_files(ctx: &StageCtx<'_>, value: &mut Value) {
    match value {
        Value::Map(map) => {
            if map.get("class").and_then(Value::as_str) == Some("File") {
                if let Some(path) = map.get("path").and_then(Value::as_str) {
                    if let Ok(digest) = ctx.stager.register_output(Path::new(path)) {
                        map.insert("checksum", digest.checksum());
                        map.insert("size", digest.len as i64);
                    }
                    return;
                }
            }
            for (_, v) in map.iter_mut() {
                register_output_files(ctx, v);
            }
        }
        Value::Seq(items) => {
            for v in items {
                register_output_files(ctx, v);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::BuiltinDispatch;
    use crate::engine::engine_for;
    use expr::JsCostModel;
    use yamlite::{parse_str, vmap, Value};

    fn workdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cwlexec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn tool(src: &str) -> CommandLineTool {
        CommandLineTool::parse(&parse_str(src).unwrap()).unwrap()
    }

    fn as_map(v: Value) -> Map {
        match v {
            Value::Map(m) => m,
            _ => unreachable!(),
        }
    }

    /// Listing 1+2 end-to-end: echo through the whole pipeline.
    #[test]
    fn echo_end_to_end() {
        let dir = workdir("echo");
        let t = tool(
            r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message:
    type: string
    default: "Hello World"
    inputBinding:
      position: 1
outputs:
  output:
    type: stdout
stdout: hello.txt
"#,
        );
        let engine = engine_for(&t.requirements, JsCostModel::free()).unwrap();
        let run = execute_tool(
            &t,
            &as_map(vmap! {"message" => "Hello, World!"}),
            &dir,
            engine.as_ref(),
            &BuiltinDispatch,
        )
        .unwrap();
        assert_eq!(run.command, vec!["echo", "Hello, World!"]);
        let out = run.outputs.get("output").unwrap();
        assert_eq!(out["basename"].as_str(), Some("hello.txt"));
        assert_eq!(
            std::fs::read_to_string(dir.join("hello.txt")).unwrap(),
            "Hello, World!\n"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The paper's resize tool: File in, File out via glob expression.
    #[test]
    fn resize_tool_end_to_end() {
        let dir = workdir("resize");
        imaging::write_rimg(dir.join("input.rimg"), &imaging::gradient(32, 32, 1)).unwrap();
        let t = tool(
            r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: [imgtool, resize]
inputs:
  input_image:
    type: File
    inputBinding: {position: 1}
  output_image:
    type: string
    inputBinding: {position: 2}
  size:
    type: int
    inputBinding: {position: 3, prefix: --size}
outputs:
  resized:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
"#,
        );
        let engine = engine_for(&t.requirements, JsCostModel::free()).unwrap();
        let provided = as_map(vmap! {
            "input_image" => dir.join("input.rimg").to_string_lossy().into_owned(),
            "output_image" => "resized.rimg",
            "size" => 16i64,
        });
        let run = execute_tool(&t, &provided, &dir, engine.as_ref(), &BuiltinDispatch).unwrap();
        let out_path = run.outputs.get("resized").unwrap()["path"]
            .as_str()
            .unwrap()
            .to_string();
        let img = imaging::read_rimg(&out_path).unwrap();
        assert_eq!((img.width(), img.height()), (16, 16));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Listing 6: the validate hook rejects a bad extension before running.
    #[test]
    fn validate_hook_blocks_execution() {
        let dir = workdir("validate");
        std::fs::write(dir.join("data.txt"), "not,a,csv").unwrap();
        let t = tool(
            r#"
cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InlinePythonRequirement
    expressionLib: |
      def valid_file(file, ext):
          if not file.lower().endswith(ext):
              raise Exception(f"Invalid file. Expected '{ext}'")
          return True
baseCommand: cat
inputs:
  data_file:
    type: File
    validate: |
      f"{valid_file($(inputs.data_file.basename), '.csv')}"
    inputBinding:
      position: 1
outputs:
  validated_output:
    type: stdout
stdout: out.txt
"#,
        );
        let engine = engine_for(&t.requirements, JsCostModel::free()).unwrap();
        let provided = as_map(vmap! {
            "data_file" => dir.join("data.txt").to_string_lossy().into_owned(),
        });
        let err = execute_tool(&t, &provided, &dir, engine.as_ref(), &BuiltinDispatch).unwrap_err();
        assert!(err.contains("Expected '.csv'"), "{err}");
        assert!(!dir.join("out.txt").exists(), "tool must not have run");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The staged pipeline: a File input outside the workdir is
    /// materialized through the content store, the run produces the same
    /// result as the unstaged path, and collected File outputs come back
    /// with their digest attached and bracketed by stage spans.
    #[test]
    fn staged_execution_stages_inputs_and_attaches_digests() {
        use crate::staging::StageCtx;
        use datastore::{ContentStore, StageMode, Stager};

        let dir = workdir("staged");
        let src_dir = workdir("staged-src");
        imaging::write_rimg(src_dir.join("input.rimg"), &imaging::gradient(32, 32, 1)).unwrap();
        let t = tool(
            r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: [imgtool, resize]
inputs:
  input_image:
    type: File
    inputBinding: {position: 1}
  output_image:
    type: string
    inputBinding: {position: 2}
  size:
    type: int
    inputBinding: {position: 3, prefix: --size}
outputs:
  resized:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
"#,
        );
        let engine = engine_for(&t.requirements, JsCostModel::free()).unwrap();
        let provided = as_map(vmap! {
            "input_image" => src_dir.join("input.rimg").to_string_lossy().into_owned(),
            "output_image" => "resized.rimg",
            "size" => 16i64,
        });
        let store = ContentStore::open(dir.join("cas")).unwrap();
        let stager = Stager::new(store, StageMode::Link);
        let obs = obs::Observability::on();
        let ctx = StageCtx {
            stager: &stager,
            obs: &obs,
            lineage: 7,
            parent: 0,
        };
        let run = execute_tool_staged(
            &t,
            &provided,
            &dir,
            engine.as_ref(),
            &BuiltinDispatch,
            Some(&ctx),
        )
        .unwrap();

        // The tool ran against the staged copy inside its workdir.
        let staged_input = dir.join("input.rimg");
        assert!(staged_input.exists(), "input was not staged into workdir");
        assert_eq!(run.command[2], staged_input.to_string_lossy());

        // The output File carries its content digest.
        let out = run.outputs.get("resized").unwrap();
        let checksum = out["checksum"].as_str().unwrap();
        assert!(checksum.starts_with("xxh64:"), "{checksum}");
        let out_path = out["path"].as_str().unwrap();
        let size = out["size"].as_int().unwrap() as u64;
        assert_eq!(size, std::fs::metadata(out_path).unwrap().len());

        // The input went through the zero-copy ladder, and both phases of
        // the data plane left spans on the task's lineage.
        assert_eq!(stager.stats().links, 1);
        let kinds: Vec<SpanKind> = obs.spans().iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SpanKind::StageIn), "{kinds:?}");
        assert!(kinds.contains(&SpanKind::StageOut), "{kinds:?}");

        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&src_dir).unwrap();
    }

    #[test]
    fn failed_command_reports_error() {
        let dir = workdir("fail");
        let t = tool(
            "cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: [imgtool, resize]\ninputs:\n  f:\n    type: string\n    inputBinding: {position: 1}\noutputs: {}\n",
        );
        let engine = engine_for(&t.requirements, JsCostModel::free()).unwrap();
        let err = execute_tool(
            &t,
            &as_map(vmap! {"f" => "ghost.rimg"}),
            &dir,
            engine.as_ref(),
            &BuiltinDispatch,
        )
        .unwrap_err();
        assert!(err.contains("imgtool resize"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
