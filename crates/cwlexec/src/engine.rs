//! Expression-engine selection from a tool's requirements.

use cwl::Requirements;
use expr::{EvalError, ExpressionEngine, JsCostModel, JsEngine, PyEngine};

/// Build the expression engine a document's requirements call for.
///
/// * `InlinePythonRequirement` → a [`PyEngine`] compiled from the document's
///   `expressionLib` blocks (evaluates in-process — the paper's fast path);
/// * otherwise → a [`JsEngine`] with the caller's process-boundary cost
///   model (pass [`JsCostModel::free`] for overhead-free evaluation, or a
///   `cwltool_like`/`toil_like` model to reproduce Fig. 2's curves).
///
/// Documents are free to use plain `$(inputs.x)` references under either
/// engine — those never pay the JS boundary cost, matching real runners.
pub fn engine_for(
    reqs: &Requirements,
    js_cost: JsCostModel,
) -> Result<Box<dyn ExpressionEngine>, String> {
    if reqs.inline_python {
        let mut lib = expr::py::PyLib::default();
        for src in &reqs.py_expression_lib {
            let compiled = expr::py::PyLib::compile(src)
                .map_err(|e: EvalError| format!("InlinePythonRequirement expressionLib: {e}"))?;
            lib.extend(&compiled);
        }
        return Ok(Box::new(PyEngine::new(lib)));
    }
    // InlineJavascriptRequirement expressionLib blocks would need a JS
    // function-definition layer; the workloads in this repository (and the
    // paper) only use inline expressions, so reject libs loudly.
    if !reqs.js_expression_lib.is_empty() {
        return Err(
            "InlineJavascriptRequirement expressionLib is not supported; \
             inline the expression or use InlinePythonRequirement"
                .to_string(),
        );
    }
    Ok(Box::new(JsEngine::new(js_cost)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use expr::{EngineKind, EvalContext};
    use yamlite::{parse_str, Value};

    fn reqs(src: &str) -> Requirements {
        Requirements::parse(&parse_str(src).unwrap()["requirements"]).unwrap()
    }

    #[test]
    fn plain_tool_gets_js_engine() {
        let engine = engine_for(&Requirements::default(), JsCostModel::free()).unwrap();
        assert_eq!(engine.kind(), EngineKind::Javascript);
    }

    #[test]
    fn python_requirement_gets_py_engine_with_lib() {
        let r = reqs(
            "requirements:\n  - class: InlinePythonRequirement\n    expressionLib: |\n      def dbl(x):\n          return x * 2\n",
        );
        let engine = engine_for(&r, JsCostModel::free()).unwrap();
        assert_eq!(engine.kind(), EngineKind::InlinePython);
        let ctx = EvalContext::from_inputs(yamlite::vmap! {"n" => 5i64});
        assert_eq!(
            engine.eval_paren("dbl($(inputs.n))", &ctx).unwrap(),
            Value::Int(10)
        );
    }

    #[test]
    fn bad_python_lib_reports_compile_error() {
        let r = reqs(
            "requirements:\n  - class: InlinePythonRequirement\n    expressionLib: |\n      def broken(:\n          pass\n",
        );
        assert!(engine_for(&r, JsCostModel::free()).is_err());
    }

    #[test]
    fn js_expression_lib_rejected() {
        let r = reqs(
            "requirements:\n  - class: InlineJavascriptRequirement\n    expressionLib:\n      - \"function f() {}\"\n",
        );
        assert!(engine_for(&r, JsCostModel::free()).is_err());
    }
}
