//! Whole-document static analysis: typed dataflow checking and expression
//! linting, producing span-carrying diagnostics with stable codes.
//!
//! This pass sits between loading and execution — the role `cwltool
//! --validate` and Toil's pre-flight check play in the CWL ecosystem, plus
//! an expression linter those runners cannot offer because they shell out to
//! `node`: we own the `expr::js`/`expr::py` parsers, so every `$(...)` and
//! `${...}` body is parsed (never evaluated) at analysis time.
//!
//! * [`diag`] — diagnostic model: stable `E0xx`/`W1xx` codes, severity,
//!   source positions from [`yamlite::SpanIndex`], text + JSON rendering;
//! * [`dataflow`] — the typed dataflow checker over the workflow graph:
//!   link resolution, type assignability (with scatter array wrapping and
//!   `when` optional wrapping), `linkMerge` shapes, scatter dimensionality,
//!   cycles, dead steps, and unused outputs;
//! * [`exprlint`] — parse-only expression linting: syntax errors and free
//!   variables outside the CWL binding set (`inputs`, `self`, `runtime`),
//!   plus requirement gating for `${...}` bodies.
//!
//! Entry points: [`analyze_file`] / [`analyze_str`] for source text (spans
//! included), [`analyze_value`] for an already-parsed document.

pub mod dataflow;
pub mod diag;
pub mod exprlint;

pub use diag::{codes, Diag, Report};

use crate::loader::{load_document, CwlDocument};
use crate::validate::Severity;
use std::path::Path;
use yamlite::{parse_str_spanned, SpanIndex, Value};

/// Diagnostic emission context shared by the checkers: resolves dotted
/// paths to source positions through the span index.
pub(crate) struct Sink<'a> {
    spans: &'a SpanIndex,
    report: &'a mut Report,
}

impl Sink<'_> {
    fn push(&mut self, code: &'static str, severity: Severity, path: String, message: String) {
        let position = self.spans.resolve(&path);
        self.report.diags.push(Diag {
            code,
            severity,
            path,
            position,
            message,
        });
    }

    pub(crate) fn error(
        &mut self,
        code: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.push(code, Severity::Error, path.into(), message.into());
    }

    pub(crate) fn warning(
        &mut self,
        code: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.push(code, Severity::Warning, path.into(), message.into());
    }
}

/// Analyze a document from source text. `file`, when given, names the
/// report and provides the base directory for resolving step `run` paths.
pub fn analyze_str(text: &str, file: Option<&Path>) -> Report {
    let mut report = Report::new();
    report.file = file.map(|p| p.display().to_string());
    match parse_str_spanned(text) {
        Err(e) => report.diags.push(Diag {
            code: codes::YAML_PARSE,
            severity: Severity::Error,
            path: String::new(),
            position: Some(e.position),
            message: e.message,
        }),
        Ok((doc, spans)) => {
            let base_dir = file.and_then(Path::parent);
            analyze_value(&doc, &spans, base_dir, &mut report);
        }
    }
    report.sort();
    report
}

/// Analyze a CWL file on disk.
pub fn analyze_file(path: impl AsRef<Path>) -> Report {
    let path = path.as_ref();
    match std::fs::read_to_string(path) {
        Ok(text) => analyze_str(&text, Some(path)),
        Err(e) => {
            let mut report = Report::new();
            report.file = Some(path.display().to_string());
            report.diags.push(Diag {
                code: codes::YAML_PARSE,
                severity: Severity::Error,
                path: String::new(),
                position: None,
                message: format!("cannot read {}: {e}", path.display()),
            });
            report
        }
    }
}

/// Analyze an already-parsed document, appending findings to `report`.
/// Pass an empty [`SpanIndex`] when no span data is available — positions
/// are then omitted from the diagnostics.
pub fn analyze_value(doc: &Value, spans: &SpanIndex, base_dir: Option<&Path>, report: &mut Report) {
    let mut sink = Sink { spans, report };
    match doc.get("cwlVersion").and_then(Value::as_str) {
        None => sink.error(codes::CWL_MODEL, "cwlVersion", "missing cwlVersion"),
        Some(v) if !matches!(v, "v1.0" | "v1.1" | "v1.2") => sink.warning(
            codes::ODD_VERSION,
            "cwlVersion",
            format!("unrecognized cwlVersion {v:?} (treating as v1.2)"),
        ),
        _ => {}
    }
    match load_document(doc) {
        Err(e) => sink.error(codes::CWL_MODEL, "", e),
        Ok(CwlDocument::Tool(tool)) => {
            dataflow::check_tool(&tool, doc, &mut sink);
            exprlint::lint_tool(&tool, doc, &mut sink);
        }
        Ok(CwlDocument::Workflow(wf)) => {
            dataflow::check_workflow(&wf, doc, base_dir, &mut sink);
            exprlint::lint_workflow(&wf, doc, &mut sink);
        }
    }
}

/// Join a path segment onto a dotted base path.
pub(crate) fn join(base: &str, seg: &str) -> String {
    yamlite::span::child_path(base, seg)
}

/// Path of an id-addressed entry inside `container[section]`, matching the
/// document's actual layout: `section.id` when the section is a map,
/// `section[i]` when it is a list of `id:`-carrying entries.
pub(crate) fn entry_path(container: &Value, base: &str, section: &str, id: &str) -> String {
    let section_path = join(base, section);
    match container.get(section) {
        Some(Value::Seq(items)) => {
            for (i, item) in items.iter().enumerate() {
                if item.get("id").and_then(Value::as_str) == Some(id) {
                    return yamlite::span::item_path(&section_path, i);
                }
            }
            section_path
        }
        _ => join(&section_path, id),
    }
}

/// The raw YAML node of a step body, honouring both `steps:` layouts.
pub(crate) fn step_value<'a>(doc: &'a Value, id: &str) -> Option<&'a Value> {
    match doc.get("steps") {
        Some(Value::Map(m)) => m.get(id),
        Some(Value::Seq(items)) => items
            .iter()
            .find(|it| it.get("id").and_then(Value::as_str) == Some(id)),
        _ => None,
    }
}
