//! Whole-document static analysis: typed dataflow checking and expression
//! linting, producing span-carrying diagnostics with stable codes.
//!
//! This pass sits between loading and execution — the role `cwltool
//! --validate` and Toil's pre-flight check play in the CWL ecosystem, plus
//! an expression linter those runners cannot offer because they shell out to
//! `node`: we own the `expr::js`/`expr::py` parsers, so every `$(...)` and
//! `${...}` body is parsed (never evaluated) at analysis time.
//!
//! * [`diag`] — diagnostic model: stable `E0xx`/`W1xx` codes, severity,
//!   source positions from [`yamlite::SpanIndex`], text + JSON rendering;
//! * [`dataflow`] — the typed dataflow checker over the workflow graph:
//!   link resolution, type assignability (with scatter array wrapping and
//!   `when` optional wrapping), `linkMerge` shapes, scatter dimensionality,
//!   cycles, dead steps, and unused outputs;
//! * [`exprlint`] — parse-only expression linting: syntax errors and free
//!   variables outside the CWL binding set (`inputs`, `self`, `runtime`),
//!   plus requirement gating for `${...}` bodies.
//!
//! Entry points: [`analyze_file`] / [`analyze_str`] for source text (spans
//! included), [`analyze_value`] for an already-parsed document.

pub mod dataflow;
pub mod diag;
pub mod effects;
pub mod exprlint;
pub mod plan;

pub use diag::{codes, Diag, Report};
pub use plan::ExecutorCapacity;

use crate::loader::{load_document, CwlDocument};
use crate::validate::Severity;
use crate::workflow::{RunRef, Workflow};
use std::collections::BTreeMap;
use std::path::Path;
use yamlite::{parse_str_spanned, SpanIndex, Value};

/// Options for the cwl-check v2 passes. The default runs every pass that
/// needs no external context; adding an [`ExecutorCapacity`] additionally
/// checks `ResourceRequirement`s against the configured executor.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    /// Executor capacity for the feasibility pass (from a run config).
    pub capacity: Option<ExecutorCapacity>,
}

/// Diagnostic emission context shared by the checkers: resolves dotted
/// paths to source positions through the span index.
pub(crate) struct Sink<'a> {
    spans: &'a SpanIndex,
    report: &'a mut Report,
}

impl Sink<'_> {
    fn push(&mut self, code: &'static str, severity: Severity, path: String, message: String) {
        let position = self.spans.resolve(&path);
        self.report.diags.push(Diag {
            code,
            severity,
            path,
            position,
            message,
            file: None,
        });
    }

    pub(crate) fn error(
        &mut self,
        code: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.push(code, Severity::Error, path.into(), message.into());
    }

    pub(crate) fn warning(
        &mut self,
        code: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.push(code, Severity::Warning, path.into(), message.into());
    }
}

/// Analyze a document from source text. `file`, when given, names the
/// report and provides the base directory for resolving step `run` paths.
pub fn analyze_str(text: &str, file: Option<&Path>) -> Report {
    analyze_str_opts(text, file, &AnalyzeOptions::default())
}

/// [`analyze_str`] with explicit [`AnalyzeOptions`].
pub fn analyze_str_opts(text: &str, file: Option<&Path>, opts: &AnalyzeOptions) -> Report {
    let mut report = Report::new();
    report.file = file.map(|p| p.display().to_string());
    match parse_str_spanned(text) {
        Err(e) => report.diags.push(Diag {
            code: codes::YAML_PARSE,
            severity: Severity::Error,
            path: String::new(),
            position: Some(e.position),
            message: e.message,
            file: None,
        }),
        Ok((doc, spans)) => {
            let base_dir = file.and_then(Path::parent);
            analyze_value_opts(&doc, &spans, base_dir, opts, &mut report);
        }
    }
    report.sort();
    report
}

/// Analyze a CWL file on disk.
pub fn analyze_file(path: impl AsRef<Path>) -> Report {
    analyze_file_opts(path, &AnalyzeOptions::default())
}

/// [`analyze_file`] with explicit [`AnalyzeOptions`].
pub fn analyze_file_opts(path: impl AsRef<Path>, opts: &AnalyzeOptions) -> Report {
    let path = path.as_ref();
    match std::fs::read_to_string(path) {
        Ok(text) => analyze_str_opts(&text, Some(path), opts),
        Err(e) => {
            let mut report = Report::new();
            report.file = Some(path.display().to_string());
            report.diags.push(Diag {
                code: codes::YAML_PARSE,
                severity: Severity::Error,
                path: String::new(),
                position: None,
                message: format!("cannot read {}: {e}", path.display()),
                file: None,
            });
            report
        }
    }
}

/// Analyze an already-parsed document, appending findings to `report`.
/// Pass an empty [`SpanIndex`] when no span data is available — positions
/// are then omitted from the diagnostics.
pub fn analyze_value(doc: &Value, spans: &SpanIndex, base_dir: Option<&Path>, report: &mut Report) {
    analyze_value_opts(doc, spans, base_dir, &AnalyzeOptions::default(), report)
}

/// [`analyze_value`] with explicit [`AnalyzeOptions`].
pub fn analyze_value_opts(
    doc: &Value,
    spans: &SpanIndex,
    base_dir: Option<&Path>,
    opts: &AnalyzeOptions,
    report: &mut Report,
) {
    let loaded = load_document(doc);
    {
        let mut sink = Sink { spans, report };
        match doc.get("cwlVersion").and_then(Value::as_str) {
            None => sink.error(codes::CWL_MODEL, "cwlVersion", "missing cwlVersion"),
            Some(v) if !matches!(v, "v1.0" | "v1.1" | "v1.2") => sink.warning(
                codes::ODD_VERSION,
                "cwlVersion",
                format!("unrecognized cwlVersion {v:?} (treating as v1.2)"),
            ),
            _ => {}
        }
        match &loaded {
            Err(e) => sink.error(codes::CWL_MODEL, "", e.clone()),
            Ok(CwlDocument::Tool(tool)) => {
                dataflow::check_tool(tool, doc, &mut sink);
                exprlint::lint_tool(tool, doc, &mut sink);
                effects::check_tool(tool, &mut sink);
                plan::check_tool(tool, opts.capacity.as_ref(), &mut sink);
            }
            Ok(CwlDocument::Workflow(wf)) => {
                dataflow::check_workflow(wf, doc, base_dir, &mut sink);
                exprlint::lint_workflow(wf, doc, &mut sink);
                effects::check_workflow(wf, doc, base_dir, &mut sink);
                plan::check_workflow(wf, doc, base_dir, opts.capacity.as_ref(), &mut sink);
            }
        }
    }
    // File-local findings inside *referenced* tool files, deduped per file.
    if let (Ok(CwlDocument::Workflow(wf)), Some(dir)) = (&loaded, base_dir) {
        check_referenced_tools(wf, dir, report);
    }
}

/// File-local error codes a referenced tool file surfaces into the
/// referencing workflow's report (once per file, not once per step).
const REFERENCED_FILE_CODES: &[&str] = &[
    codes::NO_COMMAND,
    codes::DUPLICATE_ID,
    codes::VALIDATE_NEEDS_PY,
    codes::JS_SYNTAX,
    codes::PY_SYNTAX,
    codes::UNBOUND_VAR,
    codes::BODY_NEEDS_REQ,
];

/// Analyze each tool file referenced by `run:` paths exactly once, no
/// matter how many steps reference it, and surface its file-local errors
/// annotated with the referencing steps. Referenced *workflows* are not
/// descended into (they get their own report when checked themselves, and
/// skipping them keeps reference cycles harmless).
fn check_referenced_tools(wf: &Workflow, base_dir: &Path, report: &mut Report) {
    // Group referencing steps per resolved path; BTreeMap keeps the
    // output order stable across runs.
    let mut refs: BTreeMap<std::path::PathBuf, Vec<&str>> = BTreeMap::new();
    for step in &wf.steps {
        if let RunRef::Path(p) = &step.run {
            let path = if Path::new(p).is_absolute() {
                std::path::PathBuf::from(p)
            } else {
                base_dir.join(p)
            };
            let path = path.canonicalize().unwrap_or(path);
            refs.entry(path).or_default().push(&step.id);
        }
    }
    for (path, steps) in refs {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // unloadable targets are already E003
        };
        let is_tool = yamlite::parse_str(&text)
            .ok()
            .and_then(|d| d.get("class").and_then(Value::as_str).map(str::to_string))
            == Some("CommandLineTool".to_string());
        if !is_tool {
            continue;
        }
        let sub = analyze_str(&text, Some(&path));
        let note = format!(
            " (referenced from {} step{}: {})",
            steps.len(),
            if steps.len() == 1 { "" } else { "s" },
            steps.join(", ")
        );
        for d in sub.diags {
            if REFERENCED_FILE_CODES.contains(&d.code) {
                report.diags.push(Diag {
                    message: format!("{}{note}", d.message),
                    file: Some(path.display().to_string()),
                    ..d
                });
            }
        }
    }
}

/// Join a path segment onto a dotted base path.
pub(crate) fn join(base: &str, seg: &str) -> String {
    yamlite::span::child_path(base, seg)
}

/// Path of an id-addressed entry inside `container[section]`, matching the
/// document's actual layout: `section.id` when the section is a map,
/// `section[i]` when it is a list of `id:`-carrying entries.
pub(crate) fn entry_path(container: &Value, base: &str, section: &str, id: &str) -> String {
    let section_path = join(base, section);
    match container.get(section) {
        Some(Value::Seq(items)) => {
            for (i, item) in items.iter().enumerate() {
                if item.get("id").and_then(Value::as_str) == Some(id) {
                    return yamlite::span::item_path(&section_path, i);
                }
            }
            section_path
        }
        _ => join(&section_path, id),
    }
}

/// The raw YAML node of a step body, honouring both `steps:` layouts.
pub(crate) fn step_value<'a>(doc: &'a Value, id: &str) -> Option<&'a Value> {
    match doc.get("steps") {
        Some(Value::Map(m)) => m.get(id),
        Some(Value::Seq(items)) => items
            .iter()
            .find(|it| it.get("id").and_then(Value::as_str) == Some(id)),
        _ => None,
    }
}
