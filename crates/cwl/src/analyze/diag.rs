//! The diagnostic framework: stable codes, severity, source spans, and the
//! [`Report`] container with text and JSON rendering.
//!
//! Codes are stable across releases so tooling can match on them:
//!
//! | code | meaning |
//! |------|---------|
//! | E001 | YAML parse error |
//! | E002 | document does not fit the CWL model |
//! | E003 | step `run` target cannot be loaded |
//! | E004 | tool has neither `baseCommand` nor `arguments` |
//! | E005 | duplicate parameter id |
//! | E006 | `validate:` requires `InlinePythonRequirement` |
//! | E010 | link source names no workflow input or step output |
//! | E011 | step link type mismatch |
//! | E012 | scatter target is not a step input |
//! | E013 | scatter source is not an array |
//! | E014 | scatter requires `ScatterFeatureRequirement` |
//! | E015 | invalid `linkMerge` |
//! | E016 | workflow output type mismatch |
//! | E017 | workflow step graph contains a cycle |
//! | E018 | step `out` entry not declared by the run target |
//! | E019 | subworkflow step requires `SubworkflowFeatureRequirement` |
//! | E020 | JavaScript expression syntax error |
//! | E021 | Python expression syntax error |
//! | E022 | unbound variable in expression |
//! | E023 | `${...}` body without an expression requirement |
//! | E024 | `valueFrom` requires `StepInputExpressionRequirement` |
//! | E025 | step input has no source, default, or valueFrom |
//! | E026 | required run-target input is not wired |
//! | E027 | `when` requires cwlVersion v1.2 |
//! | E028 | step input does not match any run-target input |
//! | W101 | step contributes to no workflow output |
//! | W102 | step output is never consumed |
//! | W103 | optional source feeds a required sink |
//! | W104 | unrecognized cwlVersion |
//! | W105 | requirement recognized but ignored by this runner |
//! | W106 | unknown requirement |
//!
//! cwl-check v2 adds the runtime-plane codes. `E03x`/`W11x` come from the
//! effect and feasibility passes over CWL documents; `E04x`/`W12x` come
//! from the `parsl-lint` run-config analyzer (which reuses this framework):
//!
//! | code | meaning |
//! |------|---------|
//! | E030 | write-write collision between steps with no ordering edge |
//! | E031 | scatter shards write a shared path that does not vary per shard |
//! | E032 | ResourceRequirement statically unschedulable |
//! | W110 | writable InitialWorkDirRequirement entry may mutate a staged input |
//! | W111 | ResourceRequirement near executor capacity |
//! | E041 | unknown config key |
//! | E042 | invalid config value |
//! | E043 | invalid config combination |
//! | E044 | staging dir not writable |
//! | E045 | serve socket dir not writable |
//! | W120 | config setting has no effect |
//! | W121 | two configs share one checkpoint dir |

use crate::validate::Severity;
use yamlite::Position;

/// Stable diagnostic code constants (see the module table).
pub mod codes {
    pub const YAML_PARSE: &str = "E001";
    pub const CWL_MODEL: &str = "E002";
    pub const RUN_UNLOADABLE: &str = "E003";
    pub const NO_COMMAND: &str = "E004";
    pub const DUPLICATE_ID: &str = "E005";
    pub const VALIDATE_NEEDS_PY: &str = "E006";
    pub const UNKNOWN_SOURCE: &str = "E010";
    pub const LINK_TYPE: &str = "E011";
    pub const SCATTER_NOT_INPUT: &str = "E012";
    pub const SCATTER_NOT_ARRAY: &str = "E013";
    pub const SCATTER_NEEDS_REQ: &str = "E014";
    pub const LINK_MERGE: &str = "E015";
    pub const OUTPUT_TYPE: &str = "E016";
    pub const CYCLE: &str = "E017";
    pub const BAD_STEP_OUT: &str = "E018";
    pub const SUBWORKFLOW_NEEDS_REQ: &str = "E019";
    pub const JS_SYNTAX: &str = "E020";
    pub const PY_SYNTAX: &str = "E021";
    pub const UNBOUND_VAR: &str = "E022";
    pub const BODY_NEEDS_REQ: &str = "E023";
    pub const VALUE_FROM_NEEDS_REQ: &str = "E024";
    pub const DANGLING_STEP_INPUT: &str = "E025";
    pub const UNWIRED_INPUT: &str = "E026";
    pub const WHEN_NEEDS_V12: &str = "E027";
    pub const UNKNOWN_STEP_INPUT: &str = "E028";
    pub const EFFECT_COLLISION: &str = "E030";
    pub const SCATTER_EFFECT: &str = "E031";
    pub const UNSCHEDULABLE: &str = "E032";
    pub const CFG_UNKNOWN_KEY: &str = "E041";
    pub const CFG_VALUE: &str = "E042";
    pub const CFG_COMBO: &str = "E043";
    pub const CFG_STAGING_DIR: &str = "E044";
    pub const CFG_SERVE_SOCKET: &str = "E045";
    pub const DEAD_STEP: &str = "W101";
    pub const UNUSED_OUTPUT: &str = "W102";
    pub const OPTIONAL_COERCION: &str = "W103";
    pub const ODD_VERSION: &str = "W104";
    pub const IGNORED_REQ: &str = "W105";
    pub const UNKNOWN_REQ: &str = "W106";
    pub const WRITABLE_INPUT: &str = "W110";
    pub const NEAR_CAPACITY: &str = "W111";
    pub const CFG_NO_EFFECT: &str = "W120";
    pub const CFG_SHARED_CKPT: &str = "W121";
}

/// One analysis finding with a stable code and a best-effort source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Diag {
    /// Stable code (`E0xx` error / `W1xx` warning).
    pub code: &'static str,
    pub severity: Severity,
    /// Dotted path into the document (`steps.per_image.scatter`).
    pub path: String,
    /// 1-based line/column in the source file, when span data is available.
    pub position: Option<Position>,
    pub message: String,
    /// File the finding is in, when it differs from the report's file —
    /// set for findings surfaced from a *referenced* tool file, so the
    /// rendering points at the tool source, not the referencing workflow.
    pub file: Option<String>,
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        match self.position {
            Some(p) => write!(
                f,
                "{}:{}: {sev}[{}]: {}",
                p.line, p.col, self.code, self.message
            )?,
            None => write!(f, "{sev}[{}]: {}", self.code, self.message)?,
        }
        if !self.path.is_empty() {
            write!(f, " (at {})", self.path)?;
        }
        Ok(())
    }
}

/// All findings for one document.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Display name of the analyzed file, when known.
    pub file: Option<String>,
    pub diags: Vec<Diag>,
}

impl Report {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn warning_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Clean means no errors; under `strict`, warnings also fail.
    pub fn is_clean(&self, strict: bool) -> bool {
        self.error_count() == 0 && (!strict || self.warning_count() == 0)
    }

    /// Whether any finding carries `code`.
    pub fn has_code(&self, code: &str) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Sort findings by source position, then code (stable output order).
    pub fn sort(&mut self) {
        self.diags.sort_by_key(|d| {
            let (l, c) = d
                .position
                .map(|p| (p.line, p.col))
                .unwrap_or((usize::MAX, 0));
            (l, c, d.code)
        });
    }

    /// Compiler-style text rendering, one line per finding.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let file = self.file.as_deref().unwrap_or("<input>");
        for d in &self.diags {
            out.push_str(d.file.as_deref().unwrap_or(file));
            out.push(':');
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// JSON rendering: an object with the file name and a findings array.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"file\":");
        json_string(self.file.as_deref().unwrap_or("<input>"), &mut out);
        out.push_str(&format!(
            ",\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.warning_count()
        ));
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":");
            json_string(d.code, &mut out);
            out.push_str(",\"severity\":");
            json_string(
                match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                },
                &mut out,
            );
            match d.position {
                Some(p) => out.push_str(&format!(",\"line\":{},\"column\":{}", p.line, p.col)),
                None => out.push_str(",\"line\":null,\"column\":null"),
            }
            if let Some(f) = &d.file {
                out.push_str(",\"file\":");
                json_string(f, &mut out);
            }
            out.push_str(",\"path\":");
            json_string(&d.path, &mut out);
            out.push_str(",\"message\":");
            json_string(&d.message, &mut out);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping.
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            file: Some("wf.cwl".into()),
            diags: vec![
                Diag {
                    code: codes::LINK_TYPE,
                    severity: Severity::Error,
                    path: "steps.s.in.x".into(),
                    position: Some(Position::new(7, 5)),
                    message: "source type string does not match sink type File".into(),
                    file: None,
                },
                Diag {
                    code: codes::UNUSED_OUTPUT,
                    severity: Severity::Warning,
                    path: "steps.s".into(),
                    position: None,
                    message: "output \"o\" is never consumed".into(),
                    file: None,
                },
            ],
        }
    }

    #[test]
    fn counts_and_strictness() {
        let r = sample();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.is_clean(false));
        let warn_only = Report {
            diags: vec![r.diags[1].clone()],
            file: None,
        };
        assert!(warn_only.is_clean(false));
        assert!(!warn_only.is_clean(true));
    }

    #[test]
    fn text_rendering_has_span_and_code() {
        let text = sample().render_text();
        assert!(text.contains("wf.cwl:7:5: error[E011]:"), "{text}");
        assert!(text.contains("(at steps.s.in.x)"), "{text}");
    }

    #[test]
    fn json_rendering_is_wellformed() {
        let json = sample().to_json();
        assert!(json.contains("\"code\":\"E011\""), "{json}");
        assert!(json.contains("\"line\":7,\"column\":5"), "{json}");
        assert!(json.contains("\"line\":null"), "{json}");
        // The escaped quotes in the warning message must survive.
        assert!(json.contains("output \\\"o\\\""), "{json}");
    }

    #[test]
    fn sort_orders_by_position() {
        let mut r = sample();
        r.diags.reverse();
        r.sort();
        assert_eq!(r.diags[0].code, codes::LINK_TYPE);
    }
}
