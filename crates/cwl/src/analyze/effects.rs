//! Effect analysis: each step's static write-set, and write-write
//! collisions between steps the DAG does not order.
//!
//! Every task instance runs in its own working directory (`<run>/<step>`,
//! or `<run>/<step>_<k>` per scatter shard), so *relative* output names
//! never collide across steps — `diamond.cwl`'s `left` and `right` both
//! writing `copy.txt` is fine. The collision namespace is what escapes the
//! task directory:
//!
//! * absolute paths (`/tmp/log.txt`);
//! * relative paths whose normalization climbs out of the task directory
//!   (`../audit.log` lands in the shared run directory);
//! * writable `InitialWorkDirRequirement` entries referencing a staged
//!   input — mutating a content-store object shared across tasks (W110).
//!
//! Write names are resolved statically: literals, and `$(inputs.X)` where
//! `X` is bound to a literal constant. Anything dynamic is skipped —
//! this pass under-approximates, so every report is a real hazard.

use super::{codes, entry_path, join, Sink};
use crate::loader::{resolve_run, CwlDocument};
use crate::tool::CommandLineTool;
use crate::types::CwlType;
use crate::workflow::{RunRef, Step, Workflow};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use yamlite::Value;

/// One statically-known write that escapes the task's private directory.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedWrite {
    /// Normalized shared-namespace path (collision key).
    pub key: String,
    /// What produced it, for the message (`stdout`, `output "o" glob`, ...).
    pub origin: String,
}

/// Normalize a write name and classify it: `Some(key)` when it lands in
/// the namespace shared between tasks, `None` when it stays private to
/// the task's working directory.
pub fn shared_key(name: &str) -> Option<String> {
    let absolute = name.starts_with('/');
    let mut stack: Vec<&str> = Vec::new();
    let mut escapes = 0usize;
    for seg in name.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                if stack.pop().is_none() {
                    escapes += 1;
                }
            }
            s => stack.push(s),
        }
    }
    if absolute {
        Some(format!("/{}", stack.join("/")))
    } else if escapes > 0 {
        let mut parts = vec![".."; escapes];
        parts.extend(stack);
        Some(parts.join("/"))
    } else {
        None
    }
}

/// Resolve a write name to a static string: a literal, or `$(inputs.X)`
/// where `X` has a literal constant binding. `step` is `None` when the
/// tool is analyzed standalone (only tool-level defaults apply).
fn static_name(raw: &str, tool: &CommandLineTool, step: Option<&Step>) -> Option<String> {
    let raw = raw.trim();
    if !raw.contains("$(") && !raw.contains("${") {
        return Some(raw.to_string());
    }
    let param = raw.strip_prefix("$(inputs.")?.strip_suffix(')')?;
    if !param.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    let literal = |v: &Value| match v {
        Value::Str(s) if !s.contains("$(") && !s.contains("${") => Some(s.clone()),
        Value::Int(n) => Some(n.to_string()),
        _ => None,
    };
    if let Some(step) = step {
        let si = step.inputs.iter().find(|i| i.id == param)?;
        // A sourced or expression-transformed value is dynamic; a scattered
        // input varies per shard. Only a bare literal default is constant.
        if !si.sources.is_empty() || si.value_from.is_some() || step.scatter.contains(&si.id) {
            return None;
        }
        return si.default.as_ref().and_then(literal);
    }
    let p = tool.inputs.iter().find(|i| i.id == param)?;
    p.default.as_ref().and_then(literal)
}

/// The statically-known shared-namespace writes of one tool invocation.
pub fn shared_writes(tool: &CommandLineTool, step: Option<&Step>) -> Vec<SharedWrite> {
    let mut out = Vec::new();
    let mut push = |raw: &str, origin: String| {
        if let Some(name) = static_name(raw, tool, step) {
            // Wildcard globs collect, they don't name a single write.
            if name.contains('*') || name.contains('?') || name.contains('[') {
                return;
            }
            if let Some(key) = shared_key(&name) {
                out.push(SharedWrite { key, origin });
            }
        }
    };
    if let Some(s) = &tool.stdout {
        push(s, "stdout".to_string());
    }
    if let Some(s) = &tool.stderr {
        push(s, "stderr".to_string());
    }
    for o in &tool.outputs {
        if let Some(g) = &o.glob {
            push(g, format!("output {:?} glob", o.id));
        }
    }
    for entry in &tool.requirements.initial_workdir {
        if let Some(name) = &entry.entryname {
            push(name, "InitialWorkDirRequirement entry".to_string());
        }
    }
    out
}

/// Inputs named by writable `InitialWorkDirRequirement` entries that
/// reference a `File`/`Directory` input — under the content-addressed data
/// plane those resolve to staged objects shared with every other consumer
/// of the same content, so an in-place write corrupts them (W110).
fn writable_input_hazards(tool: &CommandLineTool) -> Vec<String> {
    let mut hazards = Vec::new();
    for entry in &tool.requirements.initial_workdir {
        if !entry.writable {
            continue;
        }
        let Some(expr) = &entry.entry else { continue };
        let Some(param) = expr
            .trim()
            .strip_prefix("$(inputs.")
            .and_then(|p| p.strip_suffix(')'))
        else {
            continue;
        };
        let is_file_input = tool.inputs.iter().any(|i| {
            i.id == param
                && matches!(
                    &i.typ,
                    CwlType::File | CwlType::Directory | CwlType::Optional(_)
                )
        });
        if is_file_input {
            hazards.push(param.to_string());
        }
    }
    hazards
}

fn w110_message(param: &str) -> String {
    format!(
        "writable InitialWorkDirRequirement entry for input {param:?} \
         may mutate a staged input shared through the content store"
    )
}

/// Tool-level effect checks (standalone tool documents): W110.
pub(crate) fn check_tool(tool: &CommandLineTool, out: &mut Sink) {
    for param in writable_input_hazards(tool) {
        out.warning(codes::WRITABLE_INPUT, "requirements", w110_message(&param));
    }
}

/// Resolve a step's run target to a tool, when it is one. Load failures
/// are already E003 in the dataflow pass and produce `None` here.
fn step_tool(step: &Step, base_dir: Option<&Path>) -> Option<CommandLineTool> {
    let doc = match (&step.run, base_dir) {
        (RunRef::Inline(_), _) => resolve_run(&step.run, Path::new(".")).ok()?,
        (RunRef::Path(_), Some(dir)) => resolve_run(&step.run, dir).ok()?,
        (RunRef::Path(_), None) => return None,
    };
    match doc {
        CwlDocument::Tool(t) => Some(t),
        CwlDocument::Workflow(_) => None,
    }
}

/// Workflow-level effect analysis: E030 write-write collisions between
/// unordered steps, E031 scatter shards sharing one write, and W110 on
/// inline tools.
pub(crate) fn check_workflow(wf: &Workflow, doc: &Value, base_dir: Option<&Path>, out: &mut Sink) {
    // Per-step shared write-sets.
    let mut writes: Vec<(usize, &Step, Vec<SharedWrite>)> = Vec::new();
    for (i, step) in wf.steps.iter().enumerate() {
        let Some(tool) = step_tool(step, base_dir) else {
            continue;
        };
        if matches!(step.run, RunRef::Inline(_)) {
            let spath = entry_path(doc, "", "steps", &step.id);
            for param in writable_input_hazards(&tool) {
                out.warning(
                    codes::WRITABLE_INPUT,
                    join(&join(&spath, "run"), "requirements"),
                    w110_message(&param),
                );
            }
        }
        writes.push((i, step, shared_writes(&tool, Some(step))));
    }

    // E031: every scatter shard of a step runs concurrently in its own
    // `<step>_<k>` directory; a statically-constant shared write collides
    // with itself across shards.
    for (_, step, ws) in &writes {
        if step.scatter.is_empty() {
            continue;
        }
        let spath = entry_path(doc, "", "steps", &step.id);
        for w in ws {
            out.error(
                codes::SCATTER_EFFECT,
                join(&spath, "scatter"),
                format!(
                    "scatter shards of step {:?} all write {:?} ({}); \
                     the name does not vary per shard",
                    step.id, w.key, w.origin
                ),
            );
        }
    }

    // Transitive reachability over the step DAG (ordering edges).
    let index: HashMap<&str, usize> = wf
        .steps
        .iter()
        .enumerate()
        .map(|(i, s)| (s.id.as_str(), i))
        .collect();
    let n = wf.steps.len();
    let mut downstream: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for (i, step) in wf.steps.iter().enumerate() {
        for up in step.upstream_steps() {
            if let Some(&u) = index.get(up) {
                downstream[u].insert(i);
            }
        }
    }
    // Floyd–Warshall-style closure; workflows are small.
    loop {
        let mut changed = false;
        for u in 0..n {
            let next: Vec<usize> = downstream[u].iter().copied().collect();
            for v in next {
                let add: Vec<usize> = downstream[v].difference(&downstream[u]).copied().collect();
                for w in add {
                    changed |= downstream[u].insert(w);
                }
            }
        }
        if !changed {
            break;
        }
    }
    let ordered = |a: usize, b: usize| downstream[a].contains(&b) || downstream[b].contains(&a);

    // E030: same shared key written by two steps with no ordering edge.
    // Reported once per (pair, key), anchored on the later step.
    for (ai, (ia, sa, was)) in writes.iter().enumerate() {
        for (ib, sb, wbs) in writes.iter().skip(ai + 1) {
            if ordered(*ia, *ib) {
                continue;
            }
            let mut seen = HashSet::new();
            for wa in was {
                for wb in wbs {
                    if wa.key == wb.key && seen.insert(wa.key.as_str()) {
                        out.error(
                            codes::EFFECT_COLLISION,
                            entry_path(doc, "", "steps", &sb.id),
                            format!(
                                "steps {:?} and {:?} both write {:?} ({} / {}) \
                                 but no dataflow edge orders them",
                                sa.id, sb.id, wa.key, wa.origin, wb.origin
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_key_classifies() {
        assert_eq!(shared_key("copy.txt"), None);
        assert_eq!(shared_key("./sub/copy.txt"), None);
        assert_eq!(shared_key("sub/../copy.txt"), None);
        assert_eq!(shared_key("../audit.log"), Some("../audit.log".to_string()));
        assert_eq!(
            shared_key("a/../../log/x.txt"),
            Some("../log/x.txt".to_string())
        );
        assert_eq!(
            shared_key("/tmp/upper.txt"),
            Some("/tmp/upper.txt".to_string())
        );
        assert_eq!(shared_key("/tmp/../var/log"), Some("/var/log".to_string()));
    }
}
