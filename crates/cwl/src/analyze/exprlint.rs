//! Parse-only expression linting.
//!
//! Every `$(...)` and `${...}` fragment in the document is run through the
//! same `expr::js` / `expr::py` parsers the runtime uses — via their
//! `parse_only_*` entry points, which share the compiled-expression cache
//! with execution but never evaluate anything. The linter rejects syntax
//! errors at analysis time (E020/E021), flags free variables outside the
//! CWL binding set — `inputs`, `self`, `runtime` — (E022), and gates
//! `${...}` bodies on an expression requirement (E023).
//!
//! Engine selection mirrors `cwlexec::engine_for`: a document with
//! `InlinePythonRequirement` lints its expressions as Python (including
//! bare f-string literals), everything else as JavaScript. A plain
//! `$(...)` parameter reference needs no requirement, so it is linted
//! unconditionally. Inline `run:` documents contribute their IO signatures
//! to the dataflow checker but are not descended into here.

use super::{codes, entry_path, join, step_value, Sink};
use crate::requirements::Requirements;
use crate::tool::CommandLineTool;
use crate::workflow::Workflow;
use expr::js::ast::{Expr, Stmt};
use expr::py::ast::{FSeg, PExpr, PStmt};
use expr::Frag;
use std::collections::HashSet;
use yamlite::Value;

/// The expression environment a document's requirements establish.
pub(crate) struct LintEnv {
    js: bool,
    py: bool,
    /// Names defined by the `expressionLib` of `InlinePythonRequirement`.
    py_names: HashSet<String>,
}

/// Build the lint environment, diagnosing unusable requirement payloads.
fn env_for(reqs: &Requirements, out: &mut Sink) -> LintEnv {
    if !reqs.js_expression_lib.is_empty() {
        // `cwlexec::engine_for` rejects this at run time; say so statically.
        out.error(
            codes::CWL_MODEL,
            "requirements",
            "InlineJavascriptRequirement expressionLib is not supported; \
             inline the expression or use InlinePythonRequirement",
        );
    }
    let mut py_names = HashSet::new();
    if reqs.inline_python {
        for lib in &reqs.py_expression_lib {
            match expr::py::parse_only_module(lib) {
                Err(e) => out.error(
                    codes::PY_SYNTAX,
                    "requirements",
                    format!("expressionLib: {e}"),
                ),
                Ok(stmts) => collect_py_module_names(&stmts, &mut py_names),
            }
        }
    }
    LintEnv {
        js: reqs.inline_javascript,
        py: reqs.inline_python,
        py_names,
    }
}

/// Names an `expressionLib` module binds at module scope.
fn collect_py_module_names(stmts: &[PStmt], names: &mut HashSet<String>) {
    for s in stmts {
        match s {
            PStmt::Def(f) => {
                names.insert(f.name.clone());
            }
            PStmt::Assign(PExpr::Ident(n), _) => {
                names.insert(n.clone());
            }
            PStmt::For(var, _, body) => {
                names.insert(var.clone());
                collect_py_module_names(body, names);
            }
            PStmt::If(branches, orelse) => {
                for (_, body) in branches {
                    collect_py_module_names(body, names);
                }
                collect_py_module_names(orelse, names);
            }
            PStmt::While(_, body) => collect_py_module_names(body, names),
            _ => {}
        }
    }
}

/// Lint one interpolatable string field.
pub(crate) fn lint_string(s: &str, path: &str, env: &LintEnv, out: &mut Sink) {
    // Under InlinePythonRequirement a bare f-string literal is itself an
    // expression (no `$(...)` wrapper), matching `PyEngine::eval_literal`.
    if env.py && expr::is_fstring_literal(s) {
        lint_py_expression(s.trim(), path, env, out);
        return;
    }
    let frags = match expr::fragments(s) {
        Err(e) => {
            out.error(codes::JS_SYNTAX, path, e.to_string());
            return;
        }
        Ok(f) => f,
    };
    for frag in &frags {
        match frag {
            Frag::Text(_) => {}
            Frag::Paren(src) => {
                if env.py {
                    lint_py_expression(src, path, env, out);
                } else {
                    match expr::js::parse_only_expression(src) {
                        Err(e) => out.error(codes::JS_SYNTAX, path, e.to_string()),
                        Ok(ast) => js_expr_vars(&ast, &HashSet::new(), path, out),
                    }
                }
            }
            Frag::Body(src) => {
                if !env.js && !env.py {
                    out.error(
                        codes::BODY_NEEDS_REQ,
                        path,
                        "`${...}` requires InlineJavascriptRequirement or \
                         InlinePythonRequirement",
                    );
                } else if env.py {
                    // PyEngine evaluates a body as a single expression.
                    lint_py_expression(src.trim(), path, env, out);
                } else {
                    match expr::js::parse_only_body(src) {
                        Err(e) => out.error(codes::JS_SYNTAX, path, e.to_string()),
                        Ok(stmts) => {
                            let mut locals = HashSet::new();
                            js_hoist(&stmts, &mut locals);
                            js_body_vars(&stmts, &locals, path, out);
                        }
                    }
                }
            }
        }
    }
}

fn lint_py_expression(src: &str, path: &str, env: &LintEnv, out: &mut Sink) {
    match expr::py::parse_only_expression(src) {
        Err(e) => out.error(codes::PY_SYNTAX, path, e.to_string()),
        Ok(ast) => py_expr_vars(&ast, env, &HashSet::new(), path, out),
    }
}

// ---------------------------------------------------------------- JavaScript

fn js_ident_allowed(name: &str, locals: &HashSet<String>) -> bool {
    matches!(
        name,
        "inputs" | "self" | "runtime" | "NaN" | "Infinity" | "undefined"
    ) || expr::js::stdlib::is_namespace(name)
        || expr::js::stdlib::is_global_function(name)
        || locals.contains(name)
}

/// Hoisting prepass: collect every name a body binds, anywhere. `var` has
/// function scope and the evaluator is lenient about assigning to fresh
/// names, so one flat set matches runtime behaviour.
fn js_hoist(stmts: &[Stmt], locals: &mut HashSet<String>) {
    for s in stmts {
        match s {
            Stmt::VarDecl(decls) => {
                for (name, _) in decls {
                    locals.insert(name.clone());
                }
            }
            Stmt::Expr(Expr::Assign(target, _)) => {
                if let Expr::Ident(name) = target.as_ref() {
                    locals.insert(name.clone());
                }
            }
            Stmt::If(_, then, orelse) => {
                js_hoist(then, locals);
                js_hoist(orelse, locals);
            }
            Stmt::While(_, body) => js_hoist(body, locals),
            Stmt::For { init, body, .. } => {
                if let Some(init) = init {
                    js_hoist(std::slice::from_ref(init.as_ref()), locals);
                }
                js_hoist(body, locals);
            }
            Stmt::ForOf { var, body, .. } => {
                locals.insert(var.clone());
                js_hoist(body, locals);
            }
            _ => {}
        }
    }
}

fn js_body_vars(stmts: &[Stmt], locals: &HashSet<String>, path: &str, out: &mut Sink) {
    for s in stmts {
        match s {
            Stmt::Expr(e) => js_expr_vars(e, locals, path, out),
            Stmt::VarDecl(decls) => {
                for (_, init) in decls {
                    if let Some(e) = init {
                        js_expr_vars(e, locals, path, out);
                    }
                }
            }
            Stmt::If(cond, then, orelse) => {
                js_expr_vars(cond, locals, path, out);
                js_body_vars(then, locals, path, out);
                js_body_vars(orelse, locals, path, out);
            }
            Stmt::While(cond, body) => {
                js_expr_vars(cond, locals, path, out);
                js_body_vars(body, locals, path, out);
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                if let Some(init) = init {
                    js_body_vars(std::slice::from_ref(init.as_ref()), locals, path, out);
                }
                if let Some(cond) = cond {
                    js_expr_vars(cond, locals, path, out);
                }
                if let Some(update) = update {
                    js_expr_vars(update, locals, path, out);
                }
                js_body_vars(body, locals, path, out);
            }
            Stmt::ForOf { iter, body, .. } => {
                js_expr_vars(iter, locals, path, out);
                js_body_vars(body, locals, path, out);
            }
            Stmt::Return(Some(e)) => js_expr_vars(e, locals, path, out),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        }
    }
}

fn js_expr_vars(e: &Expr, locals: &HashSet<String>, path: &str, out: &mut Sink) {
    match e {
        Expr::Ident(name) => {
            if !js_ident_allowed(name, locals) {
                out.error(
                    codes::UNBOUND_VAR,
                    path,
                    format!(
                        "unbound variable {name:?} (expressions may use inputs, self, runtime)"
                    ),
                );
            }
        }
        Expr::Array(items) => {
            for item in items {
                js_expr_vars(item, locals, path, out);
            }
        }
        Expr::Object(pairs) => {
            for (_, v) in pairs {
                js_expr_vars(v, locals, path, out);
            }
        }
        Expr::Member(obj, _) => js_expr_vars(obj, locals, path, out),
        Expr::Index(obj, idx) => {
            js_expr_vars(obj, locals, path, out);
            js_expr_vars(idx, locals, path, out);
        }
        Expr::Call(callee, args) => {
            js_expr_vars(callee, locals, path, out);
            for a in args {
                js_expr_vars(a, locals, path, out);
            }
        }
        Expr::Unary(_, a) => js_expr_vars(a, locals, path, out),
        Expr::Binary(_, a, b) | Expr::Logical(_, a, b) => {
            js_expr_vars(a, locals, path, out);
            js_expr_vars(b, locals, path, out);
        }
        Expr::Ternary(c, a, b) => {
            js_expr_vars(c, locals, path, out);
            js_expr_vars(a, locals, path, out);
            js_expr_vars(b, locals, path, out);
        }
        Expr::Assign(target, value) => {
            // Assignment to a bare identifier binds it (lenient evaluator);
            // member/index targets still need a bound base.
            if !matches!(target.as_ref(), Expr::Ident(_)) {
                js_expr_vars(target, locals, path, out);
            }
            js_expr_vars(value, locals, path, out);
        }
        Expr::Null | Expr::Undefined | Expr::Bool(_) | Expr::Num(_) | Expr::Str(_) => {}
    }
}

// -------------------------------------------------------------------- Python

fn py_ident_allowed(name: &str, env: &LintEnv, locals: &HashSet<String>) -> bool {
    matches!(name, "inputs" | "self" | "runtime")
        || expr::py::builtins::is_builtin_name(name)
        || expr::py::builtins::is_exception_name(name)
        || env.py_names.contains(name)
        || locals.contains(name)
}

fn py_expr_vars(e: &PExpr, env: &LintEnv, locals: &HashSet<String>, path: &str, out: &mut Sink) {
    match e {
        PExpr::Ident(name) => {
            if !py_ident_allowed(name, env, locals) {
                out.error(
                    codes::UNBOUND_VAR,
                    path,
                    format!(
                        "unbound variable {name:?} (expressions may use inputs, self, \
                         runtime, and expressionLib names)"
                    ),
                );
            }
        }
        PExpr::ParamRef(p) => {
            let root = p.split(['.', '[']).next().unwrap_or(p);
            if !matches!(root, "inputs" | "self" | "runtime") {
                out.error(
                    codes::UNBOUND_VAR,
                    path,
                    format!("parameter reference $({p}) must start with inputs, self, or runtime"),
                );
            }
        }
        PExpr::FString(segs) => {
            for seg in segs {
                if let FSeg::Expr(inner) = seg {
                    py_expr_vars(inner, env, locals, path, out);
                }
            }
        }
        PExpr::List(items) => {
            for item in items {
                py_expr_vars(item, env, locals, path, out);
            }
        }
        PExpr::Dict(pairs) => {
            for (k, v) in pairs {
                py_expr_vars(k, env, locals, path, out);
                py_expr_vars(v, env, locals, path, out);
            }
        }
        PExpr::Attr(obj, _) => py_expr_vars(obj, env, locals, path, out),
        PExpr::Index(obj, idx) => {
            py_expr_vars(obj, env, locals, path, out);
            py_expr_vars(idx, env, locals, path, out);
        }
        PExpr::Slice(obj, lo, hi) => {
            py_expr_vars(obj, env, locals, path, out);
            if let Some(lo) = lo {
                py_expr_vars(lo, env, locals, path, out);
            }
            if let Some(hi) = hi {
                py_expr_vars(hi, env, locals, path, out);
            }
        }
        PExpr::Call(callee, args) => {
            py_expr_vars(callee, env, locals, path, out);
            for a in args {
                py_expr_vars(a, env, locals, path, out);
            }
        }
        PExpr::Unary(_, a) => py_expr_vars(a, env, locals, path, out),
        PExpr::Binary(_, a, b) | PExpr::BoolOp(_, a, b) => {
            py_expr_vars(a, env, locals, path, out);
            py_expr_vars(b, env, locals, path, out);
        }
        PExpr::Compare(first, rest) => {
            py_expr_vars(first, env, locals, path, out);
            for (_, e) in rest {
                py_expr_vars(e, env, locals, path, out);
            }
        }
        PExpr::Ternary { body, cond, orelse } => {
            py_expr_vars(body, env, locals, path, out);
            py_expr_vars(cond, env, locals, path, out);
            py_expr_vars(orelse, env, locals, path, out);
        }
        PExpr::None_ | PExpr::Bool(_) | PExpr::Int(_) | PExpr::Float(_) | PExpr::Str(_) => {}
    }
}

// ------------------------------------------------------------- entry points

/// Lint every expression-bearing field of a `CommandLineTool`.
pub(crate) fn lint_tool(tool: &CommandLineTool, doc: &Value, out: &mut Sink) {
    let env = env_for(&tool.requirements, out);
    for (i, arg) in tool.arguments.iter().enumerate() {
        lint_value(
            &arg.value,
            &yamlite::span::item_path("arguments", i),
            &env,
            out,
        );
    }
    for p in &tool.inputs {
        let ppath = entry_path(doc, "", "inputs", &p.id);
        if let Some(vf) = p.binding.as_ref().and_then(|b| b.value_from.as_ref()) {
            lint_string(vf, &join(&ppath, "inputBinding.valueFrom"), &env, out);
        }
        if let Some(v) = &p.validate {
            // E006 (missing InlinePythonRequirement) comes from check_tool;
            // only lint the expression when it can actually run.
            if env.py {
                lint_py_expression(v.trim(), &join(&ppath, "validate"), &env, out);
            }
        }
    }
    for o in &tool.outputs {
        if let Some(g) = &o.glob {
            lint_string(
                g,
                &join(&entry_path(doc, "", "outputs", &o.id), "glob"),
                &env,
                out,
            );
        }
    }
    if let Some(s) = &tool.stdout {
        lint_string(s, "stdout", &env, out);
    }
    if let Some(s) = &tool.stderr {
        lint_string(s, "stderr", &env, out);
    }
}

/// Lint `when` and `valueFrom` expressions of every workflow step.
pub(crate) fn lint_workflow(wf: &Workflow, doc: &Value, out: &mut Sink) {
    let env = env_for(&wf.requirements, out);
    for step in &wf.steps {
        let spath = entry_path(doc, "", "steps", &step.id);
        let sval = step_value(doc, &step.id).cloned().unwrap_or(Value::Null);
        if let Some(w) = &step.when {
            lint_string(w, &join(&spath, "when"), &env, out);
        }
        for input in &step.inputs {
            if let Some(vf) = &input.value_from {
                let ipath = entry_path(&sval, &spath, "in", &input.id);
                lint_string(vf, &join(&ipath, "valueFrom"), &env, out);
            }
        }
    }
}

/// Recursively lint every string inside an argument value (arguments may be
/// plain strings or structured entries).
fn lint_value(v: &Value, path: &str, env: &LintEnv, out: &mut Sink) {
    match v {
        Value::Str(s) => lint_string(s, path, env, out),
        Value::Seq(items) => {
            for (i, item) in items.iter().enumerate() {
                lint_value(item, &yamlite::span::item_path(path, i), env, out);
            }
        }
        Value::Map(m) => {
            for (k, val) in m.iter() {
                lint_value(val, &join(path, k), env, out);
            }
        }
        _ => {}
    }
}
