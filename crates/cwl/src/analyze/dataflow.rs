//! The typed dataflow checker: resolves every step link against declared
//! CWL types, including scatter array wrapping/unwrapping, `when` optional
//! wrapping, `linkMerge` shapes, and graph-level checks (cycles, dead
//! steps, unused outputs).

use super::{codes, entry_path, join, step_value, Sink};
use crate::loader::{load_document, resolve_run, CwlDocument};
use crate::requirements::Requirements;
use crate::tool::CommandLineTool;
use crate::types::CwlType;
use crate::workflow::{RunRef, Workflow};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use yamlite::Value;

/// How a source type fits a sink type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fit {
    /// Assignable.
    Ok,
    /// Assignable only when the optional source is non-null at runtime.
    Warn,
    /// Not assignable.
    No,
}

/// Static assignability of a `source` value to a `sink` parameter.
///
/// Beyond exact equality: `stdout`/`stderr` sources are files, numeric
/// types widen (`int` → `long`/`float`/`double`), strings are accepted
/// where files are expected (path strings), arrays are covariant, `Any`
/// fits both ways, and an optional source feeding a required sink is a
/// warning rather than an error (null only surfaces at runtime).
pub fn fit(source: &CwlType, sink: &CwlType) -> Fit {
    use CwlType::*;
    // Output-only shorthands produce files on disk.
    let source = match source {
        Stdout | Stderr => &File,
        s => s,
    };
    match (source, sink) {
        (_, Any) | (Any, _) => Fit::Ok,
        (a, b) if a == b => Fit::Ok,
        (Null, Optional(_)) => Fit::Ok,
        (Optional(s), Optional(t)) => fit(s, t),
        (s, Optional(t)) => fit(s, t),
        (Optional(s), t) => match fit(s, t) {
            Fit::No => Fit::No,
            _ => Fit::Warn,
        },
        (Array(s), Array(t)) => fit(s, t),
        (Int, Long | Float | Double) => Fit::Ok,
        (Long | Float, Double) => Fit::Ok,
        (Str, File | Directory) => Fit::Ok,
        _ => Fit::No,
    }
}

/// Common supertype of a set of gathered source types (`Any` when mixed).
fn unify(types: &[CwlType]) -> CwlType {
    match types.split_first() {
        None => CwlType::Any,
        Some((first, rest)) if rest.iter().all(|t| t == first) => first.clone(),
        _ => CwlType::Any,
    }
}

/// The IO signature of a step's run target.
pub(crate) struct RunIo {
    /// `(id, type, has_default)` per declared input.
    pub inputs: Vec<(String, CwlType, bool)>,
    pub outputs: Vec<(String, CwlType)>,
    pub is_workflow: bool,
}

fn run_io(doc: &CwlDocument) -> RunIo {
    match doc {
        CwlDocument::Tool(t) => RunIo {
            inputs: t
                .inputs
                .iter()
                .map(|p| (p.id.clone(), p.typ.clone(), p.default.is_some()))
                .collect(),
            outputs: t
                .outputs
                .iter()
                .map(|p| (p.id.clone(), p.typ.clone()))
                .collect(),
            is_workflow: false,
        },
        CwlDocument::Workflow(w) => RunIo {
            inputs: w
                .inputs
                .iter()
                .map(|p| (p.id.clone(), p.typ.clone(), p.default.is_some()))
                .collect(),
            outputs: w
                .outputs
                .iter()
                .map(|p| (p.id.clone(), p.typ.clone()))
                .collect(),
            is_workflow: true,
        },
    }
}

fn req_warnings(reqs: &Requirements, out: &mut Sink) {
    for ignored in &reqs.ignored {
        out.warning(
            codes::IGNORED_REQ,
            "requirements",
            format!("{ignored} is recognized but ignored by this runner"),
        );
    }
    for unknown in &reqs.unknown {
        out.warning(
            codes::UNKNOWN_REQ,
            "requirements",
            format!("unknown requirement {unknown}"),
        );
    }
}

/// Structural checks on a `CommandLineTool`.
pub(crate) fn check_tool(tool: &CommandLineTool, doc: &Value, out: &mut Sink) {
    if tool.base_command.is_empty() && tool.arguments.is_empty() {
        out.error(
            codes::NO_COMMAND,
            "baseCommand",
            "tool has neither baseCommand nor arguments",
        );
    }
    let mut seen = HashSet::new();
    for p in &tool.inputs {
        let ppath = entry_path(doc, "", "inputs", &p.id);
        if !seen.insert(p.id.as_str()) {
            out.error(
                codes::DUPLICATE_ID,
                ppath.clone(),
                format!("duplicate input id {:?}", p.id),
            );
        }
        if p.validate.is_some() && !tool.requirements.inline_python {
            out.error(
                codes::VALIDATE_NEEDS_PY,
                join(&ppath, "validate"),
                "validate: requires InlinePythonRequirement",
            );
        }
    }
    let mut seen_out = HashSet::new();
    for p in &tool.outputs {
        if !seen_out.insert(p.id.as_str()) {
            out.error(
                codes::DUPLICATE_ID,
                entry_path(doc, "", "outputs", &p.id),
                format!("duplicate output id {:?}", p.id),
            );
        }
    }
    req_warnings(&tool.requirements, out);
}

/// Full dataflow analysis of a `Workflow`.
pub(crate) fn check_workflow(wf: &Workflow, doc: &Value, base_dir: Option<&Path>, out: &mut Sink) {
    req_warnings(&wf.requirements, out);

    // Resolve each step's run target to its IO signature. `None` means the
    // target could not be loaded (diagnosed) or there is no file context to
    // resolve a path reference against (type checks degrade gracefully).
    let mut ios: HashMap<&str, Option<RunIo>> = HashMap::new();
    for step in &wf.steps {
        let spath = entry_path(doc, "", "steps", &step.id);
        let io = match &step.run {
            RunRef::Inline(v) => match load_document(v) {
                Ok(d) => Some(run_io(&d)),
                Err(e) => {
                    out.error(
                        codes::RUN_UNLOADABLE,
                        join(&spath, "run"),
                        format!("cannot load inline run document: {e}"),
                    );
                    None
                }
            },
            RunRef::Path(_) => match base_dir {
                Some(dir) => match resolve_run(&step.run, dir) {
                    Ok(d) => Some(run_io(&d)),
                    Err(e) => {
                        out.error(codes::RUN_UNLOADABLE, join(&spath, "run"), e);
                        None
                    }
                },
                None => None,
            },
        };
        if matches!(
            &io,
            Some(RunIo {
                is_workflow: true,
                ..
            })
        ) && !wf.requirements.subworkflow
        {
            out.error(
                codes::SUBWORKFLOW_NEEDS_REQ,
                join(&spath, "run"),
                format!(
                    "step {:?} runs a nested workflow; SubworkflowFeatureRequirement is required",
                    step.id
                ),
            );
        }
        ios.insert(step.id.as_str(), io);
    }

    let input_types: HashMap<&str, &CwlType> =
        wf.inputs.iter().map(|i| (i.id.as_str(), &i.typ)).collect();

    // Type of a link source. `Err(())` = names nothing (E010); `Ok(None)` =
    // valid reference whose type is unknown (unresolved run target).
    let source_type = |src: &str| -> Result<Option<CwlType>, ()> {
        match src.split_once('/') {
            None => match input_types.get(src) {
                Some(t) => Ok(Some((*t).clone())),
                None => Err(()),
            },
            Some((sid, out_id)) => {
                let Some(step) = wf.step(sid) else {
                    return Err(());
                };
                if !step.out.iter().any(|o| o == out_id) {
                    return Err(());
                }
                match ios.get(sid) {
                    Some(Some(io)) => {
                        let Some((_, t)) = io.outputs.iter().find(|(o, _)| o == out_id) else {
                            return Ok(None); // E018 reported on the producing step
                        };
                        let mut t = match t {
                            CwlType::Stdout | CwlType::Stderr => CwlType::File,
                            other => other.clone(),
                        };
                        // `when` makes each instance's outputs nullable;
                        // scatter then wraps them into an array.
                        if step.when.is_some() {
                            t = CwlType::Optional(Box::new(t));
                        }
                        if !step.scatter.is_empty() {
                            t = CwlType::Array(Box::new(t));
                        }
                        Ok(Some(t))
                    }
                    _ => Ok(None),
                }
            }
        }
    };

    for step in &wf.steps {
        let spath = entry_path(doc, "", "steps", &step.id);
        let sval = step_value(doc, &step.id).cloned().unwrap_or(Value::Null);
        let io = ios.get(step.id.as_str()).and_then(|o| o.as_ref());

        if step.when.is_some() && !matches!(wf.cwl_version.as_str(), "v1.2" | "") {
            out.error(
                codes::WHEN_NEEDS_V12,
                join(&spath, "when"),
                format!(
                    "conditional execution requires cwlVersion v1.2 (found {:?})",
                    wf.cwl_version
                ),
            );
        }

        if let Some(io) = io {
            for o in &step.out {
                if !io.outputs.iter().any(|(id, _)| id == o) {
                    out.error(
                        codes::BAD_STEP_OUT,
                        join(&spath, "out"),
                        format!("run target declares no output {o:?}"),
                    );
                }
            }
            for input in &step.inputs {
                if !io.inputs.iter().any(|(id, _, _)| id == &input.id) {
                    out.error(
                        codes::UNKNOWN_STEP_INPUT,
                        entry_path(&sval, &spath, "in", &input.id),
                        format!("run target has no input {:?}", input.id),
                    );
                }
            }
            for (id, typ, has_default) in &io.inputs {
                if !has_default && !typ.allows_null() && !step.inputs.iter().any(|i| &i.id == id) {
                    out.error(
                        codes::UNWIRED_INPUT,
                        join(&spath, "in"),
                        format!("required input {id:?} of the run target is not wired"),
                    );
                }
            }
        }

        if !step.scatter.is_empty() && !wf.requirements.scatter {
            out.error(
                codes::SCATTER_NEEDS_REQ,
                join(&spath, "scatter"),
                "scatter requires ScatterFeatureRequirement",
            );
        }
        for target in &step.scatter {
            if !step.inputs.iter().any(|i| &i.id == target) {
                out.error(
                    codes::SCATTER_NOT_INPUT,
                    join(&spath, "scatter"),
                    format!("scatter target {target:?} is not a step input"),
                );
            }
        }

        for input in &step.inputs {
            let ipath = entry_path(&sval, &spath, "in", &input.id);
            if input.sources.is_empty() && input.default.is_none() && input.value_from.is_none() {
                out.error(
                    codes::DANGLING_STEP_INPUT,
                    ipath.clone(),
                    "step input has no source, default, or valueFrom",
                );
            }
            if input.value_from.is_some() && !wf.requirements.step_input_expression {
                out.error(
                    codes::VALUE_FROM_NEEDS_REQ,
                    join(&ipath, "valueFrom"),
                    "valueFrom requires StepInputExpressionRequirement",
                );
            }
            if let Some(lm) = &input.link_merge {
                if !matches!(lm.as_str(), "merge_nested" | "merge_flattened") {
                    out.error(
                        codes::LINK_MERGE,
                        join(&ipath, "linkMerge"),
                        format!("unknown linkMerge method {lm:?}"),
                    );
                    continue;
                }
                if !input.is_multi_source() {
                    out.error(
                        codes::LINK_MERGE,
                        join(&ipath, "linkMerge"),
                        "linkMerge requires a list of sources",
                    );
                }
            }

            let mut types = Vec::new();
            let mut unknown = false;
            for src in &input.sources {
                match source_type(src) {
                    Err(()) => {
                        out.error(
                            codes::UNKNOWN_SOURCE,
                            ipath.clone(),
                            format!("source {src:?} does not name a workflow input or step output"),
                        );
                        unknown = true;
                    }
                    Ok(t) => types.push(t),
                }
            }
            if unknown {
                continue;
            }

            // Effective type arriving at this sink.
            let eff: Option<CwlType> = if input.is_multi_source() {
                if types.iter().any(Option::is_none) {
                    None
                } else {
                    let ts: Vec<CwlType> = types.into_iter().flatten().collect();
                    match input.link_merge.as_deref().unwrap_or("merge_nested") {
                        "merge_flattened" => {
                            let items: Vec<CwlType> = ts
                                .iter()
                                .map(|t| match t {
                                    CwlType::Array(i) => (**i).clone(),
                                    other => other.clone(),
                                })
                                .collect();
                            Some(CwlType::Array(Box::new(unify(&items))))
                        }
                        _ => Some(CwlType::Array(Box::new(unify(&ts)))),
                    }
                }
            } else {
                types.into_iter().next().flatten()
            };
            let Some(mut src_t) = eff else { continue };

            // A scattered input consumes one element of its array source.
            if step.scatter.contains(&input.id) {
                match src_t {
                    CwlType::Array(item) => src_t = *item,
                    CwlType::Any => {}
                    other => {
                        out.error(
                            codes::SCATTER_NOT_ARRAY,
                            join(&spath, "scatter"),
                            format!(
                                "scatter source for {:?} has non-array type {other}",
                                input.id
                            ),
                        );
                        continue;
                    }
                }
            }

            // `valueFrom` transforms the value — its result type is dynamic.
            if input.value_from.is_some() {
                continue;
            }
            let Some(io) = io else { continue };
            let Some((_, sink_t, _)) = io.inputs.iter().find(|(id, _, _)| id == &input.id) else {
                continue;
            };
            match fit(&src_t, sink_t) {
                Fit::Ok => {}
                Fit::Warn => out.warning(
                    codes::OPTIONAL_COERCION,
                    ipath,
                    format!(
                        "optional source type {src_t} feeds required sink type {sink_t}; \
                         a null value will fail at runtime"
                    ),
                ),
                Fit::No => out.error(
                    codes::LINK_TYPE,
                    ipath,
                    format!("source type {src_t} is not assignable to sink type {sink_t}"),
                ),
            }
        }
    }

    for o in &wf.outputs {
        let opath = entry_path(doc, "", "outputs", &o.id);
        match source_type(&o.output_source) {
            Err(()) => out.error(
                codes::UNKNOWN_SOURCE,
                join(&opath, "outputSource"),
                format!(
                    "outputSource {:?} does not name a workflow input or step output",
                    o.output_source
                ),
            ),
            Ok(None) => {}
            Ok(Some(t)) => match fit(&t, &o.typ) {
                Fit::Ok => {}
                Fit::Warn => out.warning(
                    codes::OPTIONAL_COERCION,
                    opath,
                    format!(
                        "optional source type {t} feeds required output type {}; \
                         a null value will fail at runtime",
                        o.typ
                    ),
                ),
                Fit::No => out.error(
                    codes::OUTPUT_TYPE,
                    opath,
                    format!(
                        "outputSource type {t} is not assignable to declared type {}",
                        o.typ
                    ),
                ),
            },
        }
    }

    if let Err(e) = wf.topo_order() {
        // Unknown-step references are already E010; only surface cycles.
        if e.contains("cycle") {
            out.error(codes::CYCLE, "steps", e);
        }
    }

    // W102: step outputs nothing ever consumes.
    let mut consumed: HashSet<(&str, &str)> = HashSet::new();
    for step in &wf.steps {
        for input in &step.inputs {
            for src in &input.sources {
                if let Some((sid, o)) = src.split_once('/') {
                    consumed.insert((sid, o));
                }
            }
        }
    }
    for o in &wf.outputs {
        if let Some((sid, oid)) = o.output_source.split_once('/') {
            consumed.insert((sid, oid));
        }
    }
    for step in &wf.steps {
        for o in &step.out {
            if !consumed.contains(&(step.id.as_str(), o.as_str())) {
                out.warning(
                    codes::UNUSED_OUTPUT,
                    join(&entry_path(doc, "", "steps", &step.id), "out"),
                    format!("step output \"{}/{o}\" is never consumed", step.id),
                );
            }
        }
    }

    // W101: steps from which no workflow output is reachable. Steps with no
    // declared outputs are side-effect sinks and stay unflagged.
    if !wf.outputs.is_empty() {
        let mut live: HashSet<&str> = wf
            .outputs
            .iter()
            .filter_map(|o| o.output_source.split_once('/').map(|(s, _)| s))
            .collect();
        loop {
            let mut changed = false;
            for step in &wf.steps {
                if live.contains(step.id.as_str()) {
                    for up in step.upstream_steps() {
                        changed |= live.insert(up);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for step in &wf.steps {
            if !live.contains(step.id.as_str()) && !step.out.is_empty() {
                out.warning(
                    codes::DEAD_STEP,
                    entry_path(doc, "", "steps", &step.id),
                    format!("step {:?} contributes to no workflow output", step.id),
                );
            }
        }
    }
}
