//! Feasibility analysis: `ResourceRequirement` propagation through nested
//! workflows × scatter width, checked against the configured executor
//! capacity, plus a critical-path lower bound on the makespan.
//!
//! Two kinds of findings:
//!
//! * **E032 (unschedulable)** — a task whose declared resources can never
//!   be placed: `coresMin > coresMax` (self-contradictory, no capacity
//!   needed), or `coresMin`/`ramMin` exceeding what any single node of the
//!   configured executor offers;
//! * **W111 (near capacity)** — a task demanding ≥ 75% of a node: it
//!   schedules, but nothing else co-schedules with it, so the effective
//!   parallelism collapses.
//!
//! The [`PlanSummary`] (printed by `cwl-check --plan`) reports task
//! counts, the critical-path length, and the resulting makespan lower
//! bound `max(critical path, ceil(work / slots))` in task units — the
//! classic greedy-scheduling bound (work law / span law).

use super::{codes, entry_path, join, Sink};
use crate::loader::{resolve_run, CwlDocument};
use crate::requirements::ResourceRequirement;
use crate::tool::CommandLineTool;
use crate::workflow::{Step, Workflow};
use std::collections::HashMap;
use std::path::Path;
use yamlite::Value;

/// Static capacity of a configured executor, as the feasibility pass sees
/// it. Built from a run config ([`Self::from_run_config`]) or from a live
/// `parsl::Config` (see `cwl_parsl::config::executor_capacity`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorCapacity {
    /// Human label for messages (`"htex (3 nodes × 4 workers)"`).
    pub label: String,
    /// Total concurrent task slots across the executor.
    pub slots: usize,
    /// Cores a single node offers, when known.
    pub cores_per_node: Option<i64>,
    /// RAM (MiB) a single node offers, when known.
    pub ram_per_node_mb: Option<i64>,
}

impl ExecutorCapacity {
    /// Parse executor capacity out of a parsl-cwl run config value,
    /// mirroring `core::config::load_config_value`'s executor/provider
    /// interpretation (including the simulated cluster's 126 GiB nodes).
    pub fn from_run_config(v: &Value) -> Self {
        let executor = v.get("executor").cloned().unwrap_or(Value::Null);
        let kind = executor
            .get("kind")
            .and_then(Value::as_str)
            .unwrap_or("thread-pool");
        let host_cores = std::thread::available_parallelism()
            .map(|n| n.get() as i64)
            .unwrap_or(4);
        match kind {
            "htex" | "high-throughput" => {
                let nodes = executor
                    .get("nodes")
                    .and_then(Value::as_int)
                    .unwrap_or(1)
                    .max(1);
                let provider = v.get("provider").cloned().unwrap_or(Value::Null);
                let (cores_per_node, ram_per_node_mb) = match provider
                    .get("kind")
                    .and_then(Value::as_str)
                    .unwrap_or("local")
                {
                    "slurm" => {
                        let cluster = provider.get("cluster").cloned().unwrap_or(Value::Null);
                        let cores = cluster
                            .get("cores_per_node")
                            .and_then(Value::as_int)
                            .unwrap_or(host_cores)
                            .max(1);
                        // The simulated cluster's homogeneous nodes carry
                        // 126 GiB each (core::config hardcodes this).
                        (Some(cores), Some(126 * 1024))
                    }
                    _ => {
                        let cores = provider
                            .get("cores_per_node")
                            .and_then(Value::as_int)
                            .unwrap_or(host_cores)
                            .max(1);
                        (Some(cores), None)
                    }
                };
                let workers_per_node = executor
                    .get("workers_per_node")
                    .and_then(Value::as_int)
                    .unwrap_or(0)
                    .max(0);
                let wpn = if workers_per_node == 0 {
                    cores_per_node.unwrap_or(1)
                } else {
                    workers_per_node
                };
                ExecutorCapacity {
                    label: format!("htex ({nodes} node(s) x {wpn} worker(s))"),
                    slots: (nodes * wpn).max(1) as usize,
                    cores_per_node,
                    ram_per_node_mb,
                }
            }
            // Anything else is treated as the thread-pool default; unknown
            // kinds are parsl-lint's E042, not this pass's concern.
            _ => {
                let workers = executor
                    .get("workers")
                    .and_then(Value::as_int)
                    .unwrap_or(host_cores)
                    .max(1);
                ExecutorCapacity {
                    label: format!("thread-pool ({workers} worker(s))"),
                    slots: workers as usize,
                    // The thread pool shares the host; per-task core/RAM
                    // reservations are not enforced, so min-demands are
                    // only checked against the host's core count.
                    cores_per_node: Some(host_cores),
                    ram_per_node_mb: None,
                }
            }
        }
    }
}

/// Check one resource declaration. `where_` anchors the diagnostic; `who`
/// names the task in messages.
fn check_resources(
    res: &ResourceRequirement,
    capacity: Option<&ExecutorCapacity>,
    who: &str,
    where_: &str,
    out: &mut Sink,
) {
    if let (Some(min), Some(max)) = (res.cores_min, res.cores_max) {
        if min > max {
            out.error(
                codes::UNSCHEDULABLE,
                where_,
                format!("{who}: coresMin {min} exceeds coresMax {max}; no schedule satisfies it"),
            );
            return;
        }
    }
    if let (Some(min), Some(max)) = (res.ram_min, res.ram_max) {
        if min > max {
            out.error(
                codes::UNSCHEDULABLE,
                where_,
                format!("{who}: ramMin {min} exceeds ramMax {max}; no schedule satisfies it"),
            );
            return;
        }
    }
    let Some(cap) = capacity else { return };
    let mut blocked = false;
    if let (Some(min), Some(node)) = (res.cores_min, cap.cores_per_node) {
        if min > node {
            blocked = true;
            out.error(
                codes::UNSCHEDULABLE,
                where_,
                format!(
                    "{who}: coresMin {min} exceeds the {node} cores a node of \
                     {} offers; statically unschedulable",
                    cap.label
                ),
            );
        }
    }
    if let (Some(min), Some(node)) = (res.ram_min, cap.ram_per_node_mb) {
        if min > node {
            blocked = true;
            out.error(
                codes::UNSCHEDULABLE,
                where_,
                format!(
                    "{who}: ramMin {min} MiB exceeds the {node} MiB a node of \
                     {} offers; statically unschedulable",
                    cap.label
                ),
            );
        }
    }
    if blocked {
        return;
    }
    // Near-capacity: ≥ 75% of a node's cores or RAM.
    if let (Some(min), Some(node)) = (res.cores_min, cap.cores_per_node) {
        if min * 4 >= node * 3 {
            out.warning(
                codes::NEAR_CAPACITY,
                where_,
                format!(
                    "{who}: coresMin {min} is >= 75% of a {node}-core node of {}; \
                     nothing co-schedules with it",
                    cap.label
                ),
            );
        }
    }
    if let (Some(min), Some(node)) = (res.ram_min, cap.ram_per_node_mb) {
        if min * 4 >= node * 3 {
            out.warning(
                codes::NEAR_CAPACITY,
                where_,
                format!(
                    "{who}: ramMin {min} MiB is >= 75% of a {node} MiB node of {}; \
                     nothing co-schedules with it",
                    cap.label
                ),
            );
        }
    }
}

/// Feasibility check for a standalone tool document.
pub(crate) fn check_tool(
    tool: &CommandLineTool,
    capacity: Option<&ExecutorCapacity>,
    out: &mut Sink,
) {
    if let Some(res) = &tool.requirements.resources {
        check_resources(res, capacity, "tool", "requirements", out);
    }
}

/// Literal scatter width of a step: the length of a literal array default
/// bound to the scattered input (step default, or the sourced workflow
/// input's default). `None` = statically unknown.
fn scatter_width(wf: &Workflow, step: &Step) -> Option<usize> {
    let target = step.scatter.first()?;
    let si = step.inputs.iter().find(|i| &i.id == target)?;
    if let Some(Value::Seq(items)) = &si.default {
        return Some(items.len());
    }
    let src = si.sources.first()?;
    if src.contains('/') {
        return None; // fed by another step: width unknown statically
    }
    let wi = wf.inputs.iter().find(|i| &i.id == src)?;
    match &wi.default {
        Some(Value::Seq(items)) => Some(items.len()),
        _ => None,
    }
}

/// Per-workflow aggregate the recursion returns: task count and
/// critical-path length, both in task units.
#[derive(Debug, Clone, Copy, Default)]
struct SubPlan {
    tasks: usize,
    critical_path: usize,
    width_unknown: bool,
}

/// Walk a workflow, checking each step's effective resources and summing
/// task counts. `depth` caps nested-workflow recursion (cycles between
/// files would otherwise hang the analyzer).
fn walk_workflow(
    wf: &Workflow,
    base_dir: Option<&Path>,
    capacity: Option<&ExecutorCapacity>,
    inherited: Option<&ResourceRequirement>,
    depth: usize,
    mut diag: Option<(&Value, &mut Sink)>,
) -> SubPlan {
    let outer = wf.requirements.resources.as_ref().or(inherited);
    let mut per_step: HashMap<&str, SubPlan> = HashMap::new();
    for step in &wf.steps {
        let width = if step.scatter.is_empty() {
            Some(1)
        } else {
            scatter_width(wf, step)
        };
        let resolved = match (base_dir, &step.run) {
            (Some(dir), _) => resolve_run(&step.run, dir).ok(),
            (None, crate::workflow::RunRef::Inline(_)) => {
                resolve_run(&step.run, Path::new(".")).ok()
            }
            (None, _) => None,
        };
        let inner = match &resolved {
            Some(CwlDocument::Tool(tool)) => {
                let res = tool.requirements.resources.as_ref().or(outer);
                if let Some(res) = res {
                    if let Some((doc, out)) = diag.as_mut() {
                        let spath = entry_path(doc, "", "steps", &step.id);
                        // Inline tools carry their requirements in this
                        // document, so the span can point straight at them;
                        // path-referenced tools anchor on the `run:` line.
                        let anchor = match &step.run {
                            crate::workflow::RunRef::Inline(_) => {
                                join(&join(&spath, "run"), "requirements")
                            }
                            _ => join(&spath, "run"),
                        };
                        check_resources(
                            res,
                            capacity,
                            &format!("step {:?}", step.id),
                            &anchor,
                            out,
                        );
                    }
                }
                SubPlan {
                    tasks: 1,
                    critical_path: 1,
                    width_unknown: false,
                }
            }
            Some(CwlDocument::Workflow(sub)) if depth > 0 => {
                // Nested diagnostics stay anchored on the outer step: the
                // sub-file has its own spans only when checked itself.
                let sub_plan = walk_workflow(sub, base_dir, capacity, outer, depth - 1, None);
                if let Some((doc, out)) = diag.as_mut() {
                    nested_resource_errors(
                        sub,
                        base_dir,
                        capacity,
                        outer,
                        depth - 1,
                        doc,
                        step,
                        out,
                    );
                }
                sub_plan
            }
            _ => SubPlan {
                tasks: 1,
                critical_path: 1,
                width_unknown: false,
            },
        };
        let w = width.unwrap_or(1);
        per_step.insert(
            step.id.as_str(),
            SubPlan {
                tasks: inner.tasks * w.max(1),
                // Shards run in parallel: scatter widens work, not the path.
                critical_path: inner.critical_path,
                width_unknown: width.is_none() || inner.width_unknown,
            },
        );
    }

    // Critical path: longest chain through the step DAG, weighting each
    // step by its inner critical path. topo_order fails only on cycles
    // (E017 already reported); fall back to unordered sum-free estimate.
    let mut longest: HashMap<&str, usize> = HashMap::new();
    let order = wf
        .topo_order()
        .unwrap_or_else(|_| (0..wf.steps.len()).collect());
    let mut cp = 0usize;
    for i in order {
        let step = &wf.steps[i];
        let weight = per_step
            .get(step.id.as_str())
            .map(|p| p.critical_path)
            .unwrap_or(1);
        let from_upstream = step
            .upstream_steps()
            .iter()
            .filter_map(|u| longest.get(u))
            .copied()
            .max()
            .unwrap_or(0);
        let total = from_upstream + weight;
        longest.insert(step.id.as_str(), total);
        cp = cp.max(total);
    }

    SubPlan {
        tasks: per_step.values().map(|p| p.tasks).sum(),
        critical_path: cp,
        width_unknown: per_step.values().any(|p| p.width_unknown),
    }
}

/// Surface E032/W111 for tools inside a *nested* workflow, anchored on the
/// outer step that runs it.
#[allow(clippy::too_many_arguments)]
fn nested_resource_errors(
    sub: &Workflow,
    base_dir: Option<&Path>,
    capacity: Option<&ExecutorCapacity>,
    inherited: Option<&ResourceRequirement>,
    depth: usize,
    doc: &Value,
    outer_step: &Step,
    out: &mut Sink,
) {
    let outer = sub.requirements.resources.as_ref().or(inherited);
    for step in &sub.steps {
        let resolved = match (base_dir, &step.run) {
            (Some(dir), _) => resolve_run(&step.run, dir).ok(),
            (None, crate::workflow::RunRef::Inline(_)) => {
                resolve_run(&step.run, Path::new(".")).ok()
            }
            (None, _) => None,
        };
        match &resolved {
            Some(CwlDocument::Tool(tool)) => {
                if let Some(res) = tool.requirements.resources.as_ref().or(outer) {
                    let spath = entry_path(doc, "", "steps", &outer_step.id);
                    check_resources(
                        res,
                        capacity,
                        &format!("nested step {:?} (via step {:?})", step.id, outer_step.id),
                        &join(&spath, "run"),
                        out,
                    );
                }
            }
            Some(CwlDocument::Workflow(deeper)) if depth > 0 => {
                nested_resource_errors(
                    deeper,
                    base_dir,
                    capacity,
                    outer,
                    depth - 1,
                    doc,
                    outer_step,
                    out,
                );
            }
            _ => {}
        }
    }
}

/// Workflow-level feasibility diagnostics (E032 / W111).
pub(crate) fn check_workflow(
    wf: &Workflow,
    doc: &Value,
    base_dir: Option<&Path>,
    capacity: Option<&ExecutorCapacity>,
    out: &mut Sink,
) {
    walk_workflow(wf, base_dir, capacity, None, 8, Some((doc, out)));
}

/// The `cwl-check --plan` summary: task counts, critical path, and the
/// makespan lower bound in task units.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSummary {
    /// Total task instances (scatter widths × nested tasks).
    pub tasks: usize,
    /// Longest dependency chain, in task units.
    pub critical_path: usize,
    /// Executor slots the bound was computed against, when capacity known.
    pub slots: Option<usize>,
    /// Some scatter width could not be determined statically (counted as
    /// one shard; the real plan is at least this large).
    pub width_unknown: bool,
}

impl PlanSummary {
    /// Greedy-scheduling lower bound: `max(span, ceil(work / slots))`.
    pub fn makespan_lower_bound(&self) -> usize {
        let work_bound = match self.slots {
            Some(s) if s > 0 => self.tasks.div_ceil(s),
            _ => 0,
        };
        self.critical_path.max(work_bound)
    }

    /// One-line human rendering (used by `cwl-check --plan`).
    pub fn render(&self) -> String {
        let tasks = if self.width_unknown {
            format!(">= {}", self.tasks)
        } else {
            format!("{}", self.tasks)
        };
        match self.slots {
            Some(s) => format!(
                "plan: {tasks} task(s), critical path {} — makespan >= {} task-unit(s) on {} slot(s)",
                self.critical_path,
                self.makespan_lower_bound(),
                s
            ),
            None => format!(
                "plan: {tasks} task(s), critical path {} — makespan >= {} task-unit(s)",
                self.critical_path,
                self.makespan_lower_bound()
            ),
        }
    }
}

/// Compute the plan summary for a CWL file (tool or workflow).
pub fn plan_file(path: &Path, capacity: Option<&ExecutorCapacity>) -> Result<PlanSummary, String> {
    let doc = crate::loader::load_file(path)?;
    let base_dir = path.parent();
    let sub = match &doc {
        CwlDocument::Tool(_) => SubPlan {
            tasks: 1,
            critical_path: 1,
            width_unknown: false,
        },
        CwlDocument::Workflow(wf) => walk_workflow(wf, base_dir, capacity, None, 8, None),
    };
    Ok(PlanSummary {
        tasks: sub.tasks,
        critical_path: sub.critical_path,
        slots: capacity.map(|c| c.slots),
        width_unknown: sub.width_unknown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use yamlite::parse_str;

    #[test]
    fn capacity_from_thread_pool_config() {
        let v = parse_str("executor:\n  kind: thread-pool\n  workers: 6\n").unwrap();
        let cap = ExecutorCapacity::from_run_config(&v);
        assert_eq!(cap.slots, 6);
        assert!(cap.cores_per_node.is_some());
        assert!(cap.ram_per_node_mb.is_none());
    }

    #[test]
    fn capacity_from_htex_slurm_config() {
        let v = parse_str(
            "executor:\n  kind: htex\n  nodes: 3\n  workers_per_node: 4\nprovider:\n  kind: slurm\n  cluster:\n    nodes: 3\n    cores_per_node: 8\n",
        )
        .unwrap();
        let cap = ExecutorCapacity::from_run_config(&v);
        assert_eq!(cap.slots, 12);
        assert_eq!(cap.cores_per_node, Some(8));
        assert_eq!(cap.ram_per_node_mb, Some(126 * 1024));
    }

    #[test]
    fn capacity_htex_workers_default_to_cores() {
        let v = parse_str(
            "executor:\n  kind: htex\n  nodes: 2\nprovider:\n  kind: local\n  cores_per_node: 5\n",
        )
        .unwrap();
        let cap = ExecutorCapacity::from_run_config(&v);
        assert_eq!(cap.slots, 10);
        assert_eq!(cap.cores_per_node, Some(5));
    }

    #[test]
    fn makespan_bound_is_max_of_span_and_work() {
        let p = PlanSummary {
            tasks: 10,
            critical_path: 2,
            slots: Some(4),
            width_unknown: false,
        };
        // work bound: ceil(10/4) = 3 > span 2.
        assert_eq!(p.makespan_lower_bound(), 3);
        let p = PlanSummary {
            tasks: 4,
            critical_path: 4,
            slots: Some(4),
            width_unknown: false,
        };
        assert_eq!(p.makespan_lower_bound(), 4);
        let p = PlanSummary {
            tasks: 7,
            critical_path: 3,
            slots: None,
            width_unknown: false,
        };
        assert_eq!(p.makespan_lower_bound(), 3);
    }
}
