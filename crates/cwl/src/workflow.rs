//! The `Workflow` model (paper §II-A, Listing 3) with step linking,
//! scatter, and topological ordering.

use crate::requirements::Requirements;
use crate::tool::parse_params;
use crate::types::CwlType;
use std::collections::{HashMap, HashSet};
use yamlite::Value;

/// A workflow-level input parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowInput {
    pub id: String,
    pub typ: CwlType,
    pub default: Option<Value>,
    pub doc: Option<String>,
}

/// A workflow-level output, wired from a step output.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowOutput {
    pub id: String,
    pub typ: CwlType,
    /// `step/output` (or a workflow input id) this output forwards.
    pub output_source: String,
}

/// A step input wiring entry.
#[derive(Debug, Clone, PartialEq)]
pub struct StepInput {
    /// The target tool-input id.
    pub id: String,
    /// Upstream source when written as a single reference: a workflow input
    /// id or `step/output`. `None` when `source:` is a list (see
    /// [`Self::sources`]) or absent.
    pub source: Option<String>,
    /// All upstream sources. One entry mirrors [`Self::source`]; several
    /// entries come from a `source: [a, b]` list and are gathered per
    /// [`Self::link_merge`].
    pub sources: Vec<String>,
    /// `linkMerge` behaviour for a list source: `merge_nested` (default)
    /// or `merge_flattened`.
    pub link_merge: Option<String>,
    /// Literal default when no source provided (or source is null).
    pub default: Option<Value>,
    /// Expression transforming the value
    /// (requires `StepInputExpressionRequirement`).
    pub value_from: Option<String>,
}

impl StepInput {
    /// Whether this input gathers several sources (written as a list).
    pub fn is_multi_source(&self) -> bool {
        self.source.is_none() && !self.sources.is_empty()
    }
}

/// What a step runs.
#[derive(Debug, Clone, PartialEq)]
pub enum RunRef {
    /// A path to another CWL file, relative to the referencing document.
    Path(String),
    /// An inline embedded tool/workflow document.
    Inline(Box<Value>),
}

/// One workflow step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    pub id: String,
    pub run: RunRef,
    pub inputs: Vec<StepInput>,
    /// Declared outputs exposed as `step/name`.
    pub out: Vec<String>,
    /// Inputs to scatter over (each must be an array at runtime).
    pub scatter: Vec<String>,
    /// CWL v1.2 conditional execution: the step runs only when this
    /// expression is truthy (evaluated against the step's input object,
    /// after `valueFrom`); otherwise its outputs are null.
    pub when: Option<String>,
}

impl Step {
    /// Ids of steps this step consumes outputs from.
    pub fn upstream_steps(&self) -> Vec<&str> {
        self.inputs
            .iter()
            .flat_map(|i| i.sources.iter())
            .filter_map(|s| s.split_once('/').map(|(step, _)| step))
            .collect()
    }
}

/// A parsed `class: Workflow` document.
#[derive(Debug, Clone, PartialEq)]
pub struct Workflow {
    pub id: Option<String>,
    pub cwl_version: String,
    pub doc: Option<String>,
    pub inputs: Vec<WorkflowInput>,
    pub outputs: Vec<WorkflowOutput>,
    pub steps: Vec<Step>,
    pub requirements: Requirements,
}

impl Workflow {
    /// Parse a `class: Workflow` document.
    pub fn parse(doc: &Value) -> Result<Self, String> {
        if doc.get("class").and_then(Value::as_str) != Some("Workflow") {
            return Err(format!(
                "expected class: Workflow, got {:?}",
                doc.get("class")
            ));
        }
        let inputs = parse_params(doc.get("inputs"), |id, body| {
            Ok(WorkflowInput {
                id: id.to_string(),
                typ: CwlType::parse(body.get("type").unwrap_or(&Value::Null))
                    .map_err(|e| format!("workflow input {id:?}: {e}"))?,
                default: body.get("default").cloned(),
                doc: body.get("doc").and_then(Value::as_str).map(str::to_string),
            })
        })?;
        let outputs = parse_params(doc.get("outputs"), |id, body| {
            Ok(WorkflowOutput {
                id: id.to_string(),
                typ: CwlType::parse(body.get("type").unwrap_or(&Value::Null))
                    .map_err(|e| format!("workflow output {id:?}: {e}"))?,
                output_source: body
                    .get("outputSource")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("workflow output {id:?} missing outputSource"))?
                    .to_string(),
            })
        })?;

        let mut steps = Vec::new();
        match doc.get("steps") {
            None | Some(Value::Null) => {}
            Some(Value::Map(m)) => {
                for (id, body) in m.iter() {
                    steps.push(parse_step(id, body)?);
                }
            }
            Some(Value::Seq(items)) => {
                for item in items {
                    let id = item
                        .get("id")
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("step entry missing id: {item:?}"))?;
                    steps.push(parse_step(id, item)?);
                }
            }
            Some(other) => return Err(format!("steps must be a map or list, got {other:?}")),
        }

        Ok(Self {
            id: doc.get("id").and_then(Value::as_str).map(str::to_string),
            cwl_version: doc
                .get("cwlVersion")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            doc: doc.get("doc").and_then(Value::as_str).map(str::to_string),
            inputs,
            outputs,
            steps,
            requirements: {
                let mut r = Requirements::parse(doc.get("requirements").unwrap_or(&Value::Null))?;
                if let Some(hints) = doc.get("hints") {
                    r.merge_from(&Requirements::parse(hints)?);
                }
                r
            },
        })
    }

    /// Find a step by id.
    pub fn step(&self, id: &str) -> Option<&Step> {
        self.steps.iter().find(|s| s.id == id)
    }

    /// Topological order of step indices (Kahn's algorithm); errors on
    /// cycles or references to unknown steps.
    pub fn topo_order(&self) -> Result<Vec<usize>, String> {
        let index: HashMap<&str, usize> = self
            .steps
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id.as_str(), i))
            .collect();
        let mut indegree = vec![0usize; self.steps.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.steps.len()];
        for (i, step) in self.steps.iter().enumerate() {
            let mut seen = HashSet::new();
            for up in step.upstream_steps() {
                let &j = index
                    .get(up)
                    .ok_or_else(|| format!("step {:?} references unknown step {up:?}", step.id))?;
                if seen.insert(j) {
                    indegree[i] += 1;
                    dependents[j].push(i);
                }
            }
        }
        let mut queue: Vec<usize> = (0..self.steps.len())
            .filter(|&i| indegree[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.steps.len());
        while let Some(i) = queue.pop() {
            order.push(i);
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push(d);
                }
            }
        }
        if order.len() != self.steps.len() {
            return Err("workflow step graph contains a cycle".to_string());
        }
        Ok(order)
    }
}

fn parse_step(id: &str, body: &Value) -> Result<Step, String> {
    let run = match body.get("run") {
        Some(Value::Str(path)) => RunRef::Path(path.clone()),
        Some(inline @ Value::Map(_)) => RunRef::Inline(Box::new(inline.clone())),
        other => return Err(format!("step {id:?} has invalid run: {other:?}")),
    };
    let mut inputs = Vec::new();
    match body.get("in") {
        None | Some(Value::Null) => {}
        Some(Value::Map(m)) => {
            for (iid, ibody) in m.iter() {
                inputs.push(parse_step_input(iid, ibody));
            }
        }
        Some(Value::Seq(items)) => {
            for item in items {
                let iid = item
                    .get("id")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("step {id:?} input entry missing id"))?;
                inputs.push(parse_step_input(iid, item));
            }
        }
        Some(other) => {
            return Err(format!(
                "step {id:?} 'in' must be a map or list, got {other:?}"
            ))
        }
    }
    let out = match body.get("out") {
        None | Some(Value::Null) => Vec::new(),
        Some(Value::Seq(items)) => items
            .iter()
            .map(|v| match v {
                Value::Str(s) => Ok(s.clone()),
                Value::Map(m) => m
                    .get("id")
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("step {id:?} out entry missing id")),
                other => Err(format!("step {id:?} out entry must be a string: {other:?}")),
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(other) => return Err(format!("step {id:?} 'out' must be a list, got {other:?}")),
    };
    let when = body.get("when").and_then(Value::as_str).map(str::to_string);
    let scatter = match body.get("scatter") {
        None | Some(Value::Null) => Vec::new(),
        Some(Value::Str(s)) => vec![s.clone()],
        Some(Value::Seq(items)) => items
            .iter()
            .filter_map(Value::as_str)
            .map(str::to_string)
            .collect(),
        Some(other) => {
            return Err(format!(
                "step {id:?} scatter must be string or list: {other:?}"
            ))
        }
    };
    Ok(Step {
        id: id.to_string(),
        run,
        inputs,
        out,
        scatter,
        when,
    })
}

fn parse_step_input(id: &str, body: &Value) -> StepInput {
    match body {
        // Shorthand: `size: size` wires from a workflow input / step output.
        Value::Str(source) => StepInput {
            id: id.to_string(),
            source: Some(source.clone()),
            sources: vec![source.clone()],
            link_merge: None,
            default: None,
            value_from: None,
        },
        Value::Map(m) => {
            // `source:` is a single reference or a list to gather.
            let (source, sources) = match m.get("source") {
                Some(Value::Str(s)) => (Some(s.clone()), vec![s.clone()]),
                Some(Value::Seq(items)) => (
                    None,
                    items
                        .iter()
                        .filter_map(Value::as_str)
                        .map(str::to_string)
                        .collect(),
                ),
                _ => (None, Vec::new()),
            };
            StepInput {
                id: id.to_string(),
                source,
                sources,
                link_merge: m
                    .get("linkMerge")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                default: m.get("default").cloned(),
                value_from: m
                    .get("valueFrom")
                    .and_then(Value::as_str)
                    .map(str::to_string),
            }
        }
        // A literal (including null) acts as a default value.
        other => StepInput {
            id: id.to_string(),
            source: None,
            sources: Vec::new(),
            link_merge: None,
            default: Some(other.clone()),
            value_from: None,
        },
    }
}

#[cfg(test)]
pub(crate) const IMAGE_WORKFLOW_CWL: &str = r#"
cwlVersion: v1.2
class: Workflow
doc: This CWL workflow processes images - resizing, filtering, and blurring
requirements:
  - class: StepInputExpressionRequirement
inputs:
  input_image:
    type: File
    doc: The original image to be processed
  size:
    type: int
    doc: The target sizeXsize for resizing
  sepia:
    type: boolean
    doc: Whether to apply the filter
  radius:
    type: int
    doc: The amount of blur to apply
outputs:
  final_output:
    type: File
    outputSource: blur_image/output_image
steps:
  resize_image:
    run: resize_image.cwl
    in:
      input_image: input_image
      size: size
      output_image:
        valueFrom: "resized.rimg"
    out: [output_image]
  filter_image:
    run: filter_image.cwl
    in:
      input_image: resize_image/output_image
      sepia: sepia
      output_image:
        valueFrom: "filtered.rimg"
    out: [output_image]
  blur_image:
    run: blur_image.cwl
    in:
      input_image: filter_image/output_image
      radius: radius
      output_image:
        valueFrom: "blurred.rimg"
    out: [output_image]
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use yamlite::parse_str;

    fn image_workflow() -> Workflow {
        Workflow::parse(&parse_str(IMAGE_WORKFLOW_CWL).unwrap()).unwrap()
    }

    #[test]
    fn parse_listing3_image_workflow() {
        let wf = image_workflow();
        assert_eq!(wf.inputs.len(), 4);
        assert_eq!(wf.outputs.len(), 1);
        assert_eq!(wf.outputs[0].output_source, "blur_image/output_image");
        assert_eq!(wf.steps.len(), 3);
        assert!(wf.requirements.step_input_expression);

        let resize = wf.step("resize_image").unwrap();
        assert_eq!(resize.run, RunRef::Path("resize_image.cwl".into()));
        assert_eq!(resize.out, vec!["output_image"]);
        let out_img = resize
            .inputs
            .iter()
            .find(|i| i.id == "output_image")
            .unwrap();
        assert_eq!(out_img.value_from.as_deref(), Some("resized.rimg"));

        let filter = wf.step("filter_image").unwrap();
        assert_eq!(
            filter
                .inputs
                .iter()
                .find(|i| i.id == "input_image")
                .unwrap()
                .source
                .as_deref(),
            Some("resize_image/output_image")
        );
    }

    #[test]
    fn upstream_and_topo_order() {
        let wf = image_workflow();
        assert_eq!(
            wf.step("blur_image").unwrap().upstream_steps(),
            vec!["filter_image"]
        );
        let order = wf.topo_order().unwrap();
        let pos = |id: &str| order.iter().position(|&i| wf.steps[i].id == id).unwrap();
        assert!(pos("resize_image") < pos("filter_image"));
        assert!(pos("filter_image") < pos("blur_image"));
    }

    #[test]
    fn cycle_detected() {
        let doc = parse_str(
            r#"
cwlVersion: v1.2
class: Workflow
inputs: {}
outputs: {}
steps:
  a:
    run: a.cwl
    in:
      x: b/out
    out: [out]
  b:
    run: b.cwl
    in:
      x: a/out
    out: [out]
"#,
        )
        .unwrap();
        let wf = Workflow::parse(&doc).unwrap();
        assert!(wf.topo_order().unwrap_err().contains("cycle"));
    }

    #[test]
    fn unknown_upstream_step() {
        let doc = parse_str(
            "cwlVersion: v1.2\nclass: Workflow\ninputs: {}\noutputs: {}\nsteps:\n  a:\n    run: a.cwl\n    in:\n      x: ghost/out\n    out: []\n",
        )
        .unwrap();
        let wf = Workflow::parse(&doc).unwrap();
        assert!(wf.topo_order().unwrap_err().contains("ghost"));
    }

    #[test]
    fn scatter_forms() {
        let doc = parse_str(
            r#"
cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
  - class: SubworkflowFeatureRequirement
inputs:
  images: File[]
outputs: {}
steps:
  per_image:
    run: pipeline.cwl
    scatter: image
    in:
      image: images
    out: [result]
"#,
        )
        .unwrap();
        let wf = Workflow::parse(&doc).unwrap();
        assert!(wf.requirements.scatter);
        assert!(wf.requirements.subworkflow);
        assert_eq!(wf.step("per_image").unwrap().scatter, vec!["image"]);
    }

    #[test]
    fn when_condition_parsed() {
        let doc = parse_str(
            "cwlVersion: v1.2\nclass: Workflow\ninputs:\n  r: int\noutputs: {}\nsteps:\n  s:\n    run: t.cwl\n    when: $(inputs.r > 0)\n    in:\n      r: r\n    out: [o]\n",
        )
        .unwrap();
        let wf = Workflow::parse(&doc).unwrap();
        assert_eq!(
            wf.step("s").unwrap().when.as_deref(),
            Some("$(inputs.r > 0)")
        );
    }

    #[test]
    fn inline_run_document() {
        let doc = parse_str(
            r#"
cwlVersion: v1.2
class: Workflow
inputs: {}
outputs: {}
steps:
  embedded:
    run:
      class: CommandLineTool
      baseCommand: ls
      inputs: {}
      outputs: {}
    in: {}
    out: []
"#,
        )
        .unwrap();
        let wf = Workflow::parse(&doc).unwrap();
        assert!(matches!(
            wf.step("embedded").unwrap().run,
            RunRef::Inline(_)
        ));
    }

    #[test]
    fn literal_step_input_default() {
        let doc = parse_str(
            "cwlVersion: v1.2\nclass: Workflow\ninputs: {}\noutputs: {}\nsteps:\n  s:\n    run: t.cwl\n    in:\n      n: 42\n    out: []\n",
        )
        .unwrap();
        let wf = Workflow::parse(&doc).unwrap();
        let n = &wf.step("s").unwrap().inputs[0];
        assert_eq!(n.default, Some(Value::Int(42)));
        assert!(n.source.is_none());
    }

    #[test]
    fn missing_output_source_rejected() {
        let doc = parse_str(
            "cwlVersion: v1.2\nclass: Workflow\ninputs: {}\noutputs:\n  o:\n    type: File\nsteps: {}\n",
        )
        .unwrap();
        assert!(Workflow::parse(&doc).is_err());
    }
}
