//! Input-object processing: File normalization, defaults, type checking,
//! and the paper's `validate:` pre-execution hooks (§V, Listing 6).

use crate::tool::{CommandLineTool, InputParam};
use crate::types::CwlType;
use expr::{EvalContext, ExpressionEngine};
use yamlite::{Map, Value};

/// Normalize a File-typed value: a bare path string or a partial
/// `{class: File}` object becomes a full File object with `path`,
/// `basename`, `nameroot`, `nameext` (and `size` when the file exists).
pub fn normalize_file(v: &Value, class: &str) -> Result<Value, String> {
    let path = match v {
        Value::Str(s) => s.clone(),
        Value::Map(m) => {
            if let Some(c) = m.get("class").and_then(Value::as_str) {
                if c != class {
                    return Err(format!("expected class {class:?}, got {c:?}"));
                }
            }
            m.get("path")
                .or_else(|| m.get("location"))
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{class} object missing path: {v:?}"))?
                .to_string()
        }
        other => return Err(format!("cannot treat {other:?} as a {class}")),
    };
    let p = std::path::Path::new(&path);
    let mut m = Map::new();
    m.insert("class", class);
    m.insert("path", path.clone());
    m.insert(
        "basename",
        p.file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default(),
    );
    m.insert(
        "nameroot",
        p.file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default(),
    );
    m.insert(
        "nameext",
        p.extension()
            .map(|s| format!(".{}", s.to_string_lossy()))
            .unwrap_or_default(),
    );
    if let Ok(meta) = std::fs::metadata(p) {
        m.insert("size", meta.len() as i64);
    }
    // A content digest attached upstream (data plane, output collection)
    // survives normalization; it is how staged files are revalidated
    // without re-reading bytes.
    if let Value::Map(src) = v {
        if let Some(checksum) = src.get("checksum") {
            m.insert("checksum", checksum.clone());
        }
    }
    Ok(Value::Map(m))
}

/// Normalize a value against its declared type (recursing into arrays and
/// optionals), then verify conformance.
pub fn normalize_value(v: &Value, typ: &CwlType) -> Result<Value, String> {
    let normalized = match (typ, v) {
        (CwlType::File, _) if !v.is_null() => normalize_file(v, "File")?,
        (CwlType::Directory, _) if !v.is_null() => normalize_file(v, "Directory")?,
        (CwlType::Array(item), Value::Seq(items)) => Value::Seq(
            items
                .iter()
                .map(|i| normalize_value(i, item))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        (CwlType::Optional(inner), _) if !v.is_null() => normalize_value(v, inner)?,
        // Widen ints to declared float/double types.
        (CwlType::Float | CwlType::Double, Value::Int(i)) => Value::Float(*i as f64),
        _ => v.clone(),
    };
    let null_ok = normalized.is_null() && typ.allows_null();
    if !(typ.accepts(&normalized) || null_ok) {
        return Err(format!(
            "value {normalized:?} does not conform to type {typ}"
        ));
    }
    Ok(normalized)
}

/// Resolve a provided input object against a tool's declared inputs:
/// apply defaults, normalize Files, check types, and reject unknown keys.
/// Returns the complete job-order map used for binding and expressions.
pub fn resolve_inputs(params: &[InputParam], provided: &Map) -> Result<Map, String> {
    for key in provided.keys() {
        if !params.iter().any(|p| p.id == key) {
            return Err(format!("unknown input {key:?}"));
        }
    }
    let mut resolved = Map::with_capacity(params.len());
    for param in params {
        let raw = provided
            .get(&param.id)
            .cloned()
            .or_else(|| param.default.clone())
            .unwrap_or(Value::Null);
        if raw.is_null() && !param.typ.allows_null() {
            return Err(format!(
                "missing required input {:?} of type {}",
                param.id, param.typ
            ));
        }
        let value =
            normalize_value(&raw, &param.typ).map_err(|e| format!("input {:?}: {e}", param.id))?;
        resolved.insert(param.id.clone(), value);
    }
    Ok(resolved)
}

/// Run the paper's `validate:` hooks: each expression evaluates with the
/// resolved inputs in scope; a raised exception fails the tool before
/// execution (Listing 6's CSV check).
pub fn run_validate_hooks(
    tool: &CommandLineTool,
    inputs: &Map,
    engine: &dyn ExpressionEngine,
) -> Result<(), String> {
    let ctx = EvalContext::from_inputs(Value::Map(inputs.clone()));
    for param in &tool.inputs {
        if let Some(expr_src) = &param.validate {
            expr::interpolate(expr_src.trim(), engine, &ctx)
                .map_err(|e| format!("validation of input {:?} failed: {e}", param.id))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::CommandLineTool;
    use expr::PyEngine;
    use yamlite::{parse_str, vmap};

    fn params(src: &str) -> Vec<InputParam> {
        let doc = parse_str(&format!(
            "cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: x\ninputs:\n{src}outputs: {{}}\n"
        ))
        .unwrap();
        CommandLineTool::parse(&doc).unwrap().inputs
    }

    #[test]
    fn normalize_file_from_string() {
        let v = normalize_file(&Value::str("/data/img.rimg"), "File").unwrap();
        assert_eq!(v["class"].as_str(), Some("File"));
        assert_eq!(v["basename"].as_str(), Some("img.rimg"));
        assert_eq!(v["nameroot"].as_str(), Some("img"));
        assert_eq!(v["nameext"].as_str(), Some(".rimg"));
    }

    #[test]
    fn normalize_file_from_object() {
        let v = normalize_file(&vmap! {"class" => "File", "path" => "/a/b.csv"}, "File").unwrap();
        assert_eq!(v["basename"].as_str(), Some("b.csv"));
        let v = normalize_file(
            &vmap! {"class" => "File", "path" => "/a/b.csv", "checksum" => "xxh64:00000000000000ab"},
            "File",
        )
        .unwrap();
        assert_eq!(v["checksum"].as_str(), Some("xxh64:00000000000000ab"));
        assert!(normalize_file(&vmap! {"class" => "Directory", "path" => "/d"}, "File").is_err());
        assert!(normalize_file(&vmap! {"class" => "File"}, "File").is_err());
        assert!(normalize_file(&Value::Int(3), "File").is_err());
    }

    #[test]
    fn resolve_applies_defaults_and_types() {
        let ps = params("  message:\n    type: string\n    default: hi\n  count:\n    type: int\n");
        let provided = match vmap! {"count" => 3i64} {
            Value::Map(m) => m,
            _ => unreachable!(),
        };
        let resolved = resolve_inputs(&ps, &provided).unwrap();
        assert_eq!(resolved.get("message").unwrap().as_str(), Some("hi"));
        assert_eq!(resolved.get("count").unwrap().as_int(), Some(3));
    }

    #[test]
    fn resolve_rejects_missing_and_unknown() {
        let ps = params("  n:\n    type: int\n");
        let empty = Map::new();
        assert!(resolve_inputs(&ps, &empty)
            .unwrap_err()
            .contains("missing required"));
        let bad = match vmap! {"nope" => 1i64, "n" => 1i64} {
            Value::Map(m) => m,
            _ => unreachable!(),
        };
        assert!(resolve_inputs(&ps, &bad)
            .unwrap_err()
            .contains("unknown input"));
    }

    #[test]
    fn resolve_type_errors() {
        let ps = params("  n:\n    type: int\n");
        let bad = match vmap! {"n" => "three"} {
            Value::Map(m) => m,
            _ => unreachable!(),
        };
        assert!(resolve_inputs(&ps, &bad).is_err());
    }

    #[test]
    fn optional_inputs_may_be_absent() {
        let ps = params("  tag:\n    type: string?\n");
        let resolved = resolve_inputs(&ps, &Map::new()).unwrap();
        assert!(resolved.get("tag").unwrap().is_null());
    }

    #[test]
    fn file_arrays_normalize_each_element() {
        let ps = params("  images:\n    type: File[]\n");
        let provided = match vmap! {"images" => yamlite::vseq!["/a.rimg", "/b.rimg"]} {
            Value::Map(m) => m,
            _ => unreachable!(),
        };
        let resolved = resolve_inputs(&ps, &provided).unwrap();
        let imgs = resolved.get("images").unwrap().as_seq().unwrap();
        assert_eq!(imgs[1]["basename"].as_str(), Some("b.rimg"));
    }

    #[test]
    fn int_widens_to_double() {
        let ps = params("  x:\n    type: double\n");
        let provided = match vmap! {"x" => 3i64} {
            Value::Map(m) => m,
            _ => unreachable!(),
        };
        let resolved = resolve_inputs(&ps, &provided).unwrap();
        assert_eq!(resolved.get("x").unwrap(), &Value::Float(3.0));
    }

    /// Listing 6 end-to-end: the CSV validation hook.
    #[test]
    fn validate_hooks_listing6() {
        let doc = parse_str(
            r#"
cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InlinePythonRequirement
    expressionLib: |
      def valid_file(file, ext):
          if not file.lower().endswith(ext):
              raise Exception(f"Invalid file. Expected '{ext}'")
          return True
baseCommand: cat
inputs:
  data_file:
    type: File
    validate: |
      f"{valid_file($(inputs.data_file.basename), '.csv')}"
    inputBinding:
      position: 1
outputs:
  validated_output:
    type: stdout
"#,
        )
        .unwrap();
        let tool = CommandLineTool::parse(&doc).unwrap();
        let engine = PyEngine::compile(&tool.requirements.py_expression_lib[0]).unwrap();

        let good = resolve_inputs(
            &tool.inputs,
            match &vmap! {"data_file" => "/data/measurements.csv"} {
                Value::Map(m) => m,
                _ => unreachable!(),
            },
        )
        .unwrap();
        run_validate_hooks(&tool, &good, &engine).unwrap();

        let bad = resolve_inputs(
            &tool.inputs,
            match &vmap! {"data_file" => "/data/notes.txt"} {
                Value::Map(m) => m,
                _ => unreachable!(),
            },
        )
        .unwrap();
        let err = run_validate_hooks(&tool, &bad, &engine).unwrap_err();
        assert!(err.contains("Expected '.csv'"), "{err}");
    }
}
