//! `cwl-check` — whole-workflow static analyzer.
//!
//! Runs the [`cwl::analyze`] pass (typed dataflow checking + expression
//! linting) over CWL files and prints span-carrying diagnostics with
//! stable codes, as compiler-style text or JSON.
//!
//! ```text
//! cwl-check [--json] [--strict] [-q] <file-or-dir>...
//! ```
//!
//! Directories are scanned (non-recursively) for `*.cwl` / `*.yml` /
//! `*.yaml`. Files without a `class:` key (e.g. runner configs) get YAML
//! well-formedness checking only. Exit status: 0 clean, 1 findings,
//! 2 usage error.

use cwl::analyze::{analyze_file, analyze_str, Report};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: cwl-check [--json] [--strict] [-q] <file-or-dir>...

  --json    emit one JSON report object per file
  --strict  treat warnings as failures
  -q        suppress per-file OK lines";

fn main() -> ExitCode {
    let mut json = false;
    let mut strict = false;
    let mut quiet = false;
    let mut targets: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--strict" => strict = true,
            "-q" | "--quiet" => quiet = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("cwl-check: unknown flag {flag:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            path => targets.push(PathBuf::from(path)),
        }
    }
    if targets.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for target in &targets {
        if target.is_dir() {
            match collect_dir(target) {
                Ok(mut found) => files.append(&mut found),
                Err(e) => {
                    eprintln!("cwl-check: cannot read directory {}: {e}", target.display());
                    return ExitCode::from(2);
                }
            }
        } else {
            files.push(target.clone());
        }
    }
    files.sort();

    let mut failed = false;
    for file in &files {
        let report = check_file(file);
        failed |= !report.is_clean(strict);
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render_text());
            if report.diags.is_empty() && !quiet {
                println!("{}: OK", file.display());
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Analyze one file. Documents without a `class:` key are not CWL — runner
/// configs ride along in the same directories — so they only get YAML
/// well-formedness checking.
fn check_file(path: &Path) -> Report {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return analyze_file(path), // produces the cannot-read E001
    };
    let is_cwl = yamlite::parse_str(&text)
        .map(|doc| doc.get("class").is_some())
        .unwrap_or(true); // parse errors must be reported either way
    if is_cwl {
        analyze_str(&text, Some(path))
    } else {
        let mut report = Report::new();
        report.file = Some(path.display().to_string());
        report
    }
}

fn collect_dir(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        if path.is_file() && matches!(ext, "cwl" | "yml" | "yaml") {
            out.push(path);
        }
    }
    Ok(out)
}
