//! `cwl-check` — whole-workflow static analyzer.
//!
//! Runs the [`cwl::analyze`] passes (typed dataflow checking, expression
//! linting, effect analysis, and — given a run config — feasibility
//! analysis) over CWL files and prints span-carrying diagnostics with
//! stable codes, as compiler-style text or JSON.
//!
//! ```text
//! cwl-check [--json] [--strict] [-q] [--plan] [--config <yml>] <file-or-dir>...
//! ```
//!
//! Directories are scanned (non-recursively) for `*.cwl` / `*.yml` /
//! `*.yaml`. Files without a `class:` key (e.g. runner configs) get YAML
//! well-formedness checking only. Exit status: 0 clean, 1 findings,
//! 2 usage error.

use cwl::analyze::{
    analyze_file_opts, analyze_str_opts, plan, AnalyzeOptions, ExecutorCapacity, Report,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str =
    "usage: cwl-check [--json] [--strict] [-q] [--plan] [--config <yml>] <file-or-dir>...

  --json          emit one JSON report object per file
  --strict        treat warnings as failures
  -q              suppress per-file OK lines
  --plan          print a makespan lower bound per CWL file
  --config <yml>  run config providing executor capacity for the
                  feasibility pass (E032/W111) and --plan slot counts";

fn main() -> ExitCode {
    let mut json = false;
    let mut strict = false;
    let mut quiet = false;
    let mut plan_mode = false;
    let mut config: Option<PathBuf> = None;
    let mut targets: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--strict" => strict = true,
            "-q" | "--quiet" => quiet = true,
            "--plan" => plan_mode = true,
            "--config" => match args.next() {
                Some(p) => config = Some(PathBuf::from(p)),
                None => {
                    eprintln!("cwl-check: --config requires a file argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("cwl-check: unknown flag {flag:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            path => targets.push(PathBuf::from(path)),
        }
    }
    if targets.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let capacity = match &config {
        None => None,
        Some(path) => match yamlite::parse_file(path) {
            Ok(doc) => Some(ExecutorCapacity::from_run_config(&doc)),
            Err(e) => {
                eprintln!("cwl-check: cannot read config {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
    };
    let opts = AnalyzeOptions {
        capacity: capacity.clone(),
    };

    let mut files: Vec<PathBuf> = Vec::new();
    for target in &targets {
        if target.is_dir() {
            match collect_dir(target) {
                Ok(mut found) => files.append(&mut found),
                Err(e) => {
                    eprintln!("cwl-check: cannot read directory {}: {e}", target.display());
                    return ExitCode::from(2);
                }
            }
        } else {
            files.push(target.clone());
        }
    }
    files.sort();

    let mut failed = false;
    for file in &files {
        let (report, is_cwl) = check_file(file, &opts);
        failed |= !report.is_clean(strict);
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render_text());
            if report.diags.is_empty() && !quiet {
                println!("{}: OK", file.display());
            }
        }
        if plan_mode && is_cwl && !json {
            match plan::plan_file(file, capacity.as_ref()) {
                Ok(summary) => println!("{}: {}", file.display(), summary.render()),
                Err(e) => eprintln!("{}: plan unavailable: {e}", file.display()),
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Analyze one file. Documents without a `class:` key are not CWL — runner
/// configs ride along in the same directories — so they only get YAML
/// well-formedness checking. The second return says whether the file was
/// treated as CWL (and so participates in `--plan`).
fn check_file(path: &Path, opts: &AnalyzeOptions) -> (Report, bool) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return (analyze_file_opts(path, opts), false), // cannot-read E001
    };
    let is_cwl = yamlite::parse_str(&text)
        .map(|doc| doc.get("class").is_some())
        .unwrap_or(true); // parse errors must be reported either way
    if is_cwl {
        (analyze_str_opts(&text, Some(path), opts), true)
    } else {
        let mut report = Report::new();
        report.file = Some(path.display().to_string());
        (report, false)
    }
}

fn collect_dir(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        if path.is_file() && matches!(ext, "cwl" | "yml" | "yaml") {
            out.push(path);
        }
    }
    Ok(out)
}
