//! Loading CWL documents from values and files, with `run:` reference
//! resolution relative to the referencing document.

use crate::tool::CommandLineTool;
use crate::workflow::{RunRef, Workflow};
use std::path::{Path, PathBuf};
use yamlite::Value;

/// A parsed top-level CWL document.
#[derive(Debug, Clone, PartialEq)]
pub enum CwlDocument {
    Tool(CommandLineTool),
    Workflow(Workflow),
}

impl CwlDocument {
    /// The document's class name.
    pub fn class(&self) -> &'static str {
        match self {
            CwlDocument::Tool(_) => "CommandLineTool",
            CwlDocument::Workflow(_) => "Workflow",
        }
    }

    /// Unwrap as a tool.
    pub fn as_tool(&self) -> Option<&CommandLineTool> {
        match self {
            CwlDocument::Tool(t) => Some(t),
            _ => None,
        }
    }

    /// Unwrap as a workflow.
    pub fn as_workflow(&self) -> Option<&Workflow> {
        match self {
            CwlDocument::Workflow(w) => Some(w),
            _ => None,
        }
    }
}

/// Parse a document value by its `class`.
pub fn load_document(v: &Value) -> Result<CwlDocument, String> {
    match v.get("class").and_then(Value::as_str) {
        Some("CommandLineTool") => Ok(CwlDocument::Tool(CommandLineTool::parse(v)?)),
        Some("Workflow") => Ok(CwlDocument::Workflow(Workflow::parse(v)?)),
        Some("ExpressionTool") => Err(
            "ExpressionTool is outside the supported subset (wrap the expression in a step valueFrom instead)"
                .to_string(),
        ),
        Some(other) => Err(format!("unknown CWL class {other:?}")),
        None => Err("document has no 'class' field".to_string()),
    }
}

/// Load and parse a CWL file.
pub fn load_file(path: impl AsRef<Path>) -> Result<CwlDocument, String> {
    let path = path.as_ref();
    let doc = yamlite::parse_file(path).map_err(|e| format!("{}: {e}", path.display()))?;
    load_document(&doc).map_err(|e| format!("{}: {e}", path.display()))
}

/// Resolve a step's `run` reference into a document. Path references
/// resolve relative to `base_dir` (the directory of the referencing file).
pub fn resolve_run(run: &RunRef, base_dir: &Path) -> Result<CwlDocument, String> {
    match run {
        RunRef::Inline(doc) => load_document(doc),
        RunRef::Path(p) => {
            let path = if Path::new(p).is_absolute() {
                PathBuf::from(p)
            } else {
                base_dir.join(p)
            };
            load_file(path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yamlite::parse_str;

    #[test]
    fn dispatch_on_class() {
        let tool = parse_str("class: CommandLineTool\ncwlVersion: v1.2\nbaseCommand: echo\ninputs: {}\noutputs: {}\n").unwrap();
        assert_eq!(load_document(&tool).unwrap().class(), "CommandLineTool");
        let wf =
            parse_str("class: Workflow\ncwlVersion: v1.2\ninputs: {}\noutputs: {}\nsteps: {}\n")
                .unwrap();
        let doc = load_document(&wf).unwrap();
        assert_eq!(doc.class(), "Workflow");
        assert!(doc.as_workflow().is_some());
        assert!(doc.as_tool().is_none());
    }

    #[test]
    fn unknown_class_errors() {
        assert!(load_document(&parse_str("class: ExpressionTool\n").unwrap()).is_err());
        assert!(load_document(&parse_str("class: Nonsense\n").unwrap()).is_err());
        assert!(load_document(&parse_str("cwlVersion: v1.2\n").unwrap()).is_err());
    }

    #[test]
    fn file_loading_and_run_resolution() {
        let dir = std::env::temp_dir().join(format!("cwl-loader-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("echo.cwl"),
            "class: CommandLineTool\ncwlVersion: v1.2\nbaseCommand: echo\ninputs: {}\noutputs: {}\n",
        )
        .unwrap();
        let doc = load_file(dir.join("echo.cwl")).unwrap();
        assert_eq!(doc.class(), "CommandLineTool");

        let run = RunRef::Path("echo.cwl".to_string());
        let resolved = resolve_run(&run, &dir).unwrap();
        assert_eq!(resolved.class(), "CommandLineTool");

        let missing = RunRef::Path("ghost.cwl".to_string());
        assert!(resolve_run(&missing, &dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inline_run_resolution() {
        let inline = parse_str(
            "class: CommandLineTool\ncwlVersion: v1.2\nbaseCommand: ls\ninputs: {}\noutputs: {}\n",
        )
        .unwrap();
        let run = RunRef::Inline(Box::new(inline));
        let doc = resolve_run(&run, Path::new("/nowhere")).unwrap();
        assert_eq!(doc.class(), "CommandLineTool");
    }

    #[test]
    fn load_file_reports_path_in_errors() {
        let err = load_file("/definitely/missing.cwl").unwrap_err();
        assert!(err.contains("missing.cwl"));
    }
}
