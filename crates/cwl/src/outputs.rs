//! Post-execution output collection: stdout/stderr capture files and
//! `outputBinding.glob` files become the tool's output object.

use crate::input::normalize_file;
use crate::tool::CommandLineTool;
use crate::types::CwlType;
use expr::{interpolate, EvalContext, ExpressionEngine};
use std::path::Path;
use yamlite::{Map, Value};

/// Collect a tool's outputs after execution in `workdir`.
///
/// * `stdout`/`stderr`-typed outputs resolve to the capture files chosen at
///   binding time (`built_stdout`/`built_stderr`);
/// * File outputs resolve their `glob` (expressions allowed; literal names
///   and `*`-prefix/suffix patterns supported);
/// * missing non-optional outputs are errors.
pub fn collect_outputs(
    tool: &CommandLineTool,
    inputs: &Map,
    engine: &dyn ExpressionEngine,
    workdir: &Path,
    built_stdout: Option<&str>,
    built_stderr: Option<&str>,
) -> Result<Map, String> {
    let ctx = EvalContext::from_inputs(Value::Map(inputs.clone()));
    let mut out = Map::with_capacity(tool.outputs.len());
    for param in &tool.outputs {
        let value = match &param.typ {
            CwlType::Stdout => capture_value(workdir, built_stdout, "stdout", &param.id)?,
            CwlType::Stderr => capture_value(workdir, built_stderr, "stderr", &param.id)?,
            typ => {
                let Some(glob_src) = &param.glob else {
                    // No binding: output must be optional.
                    if typ.allows_null() {
                        out.insert(param.id.clone(), Value::Null);
                        continue;
                    }
                    return Err(format!(
                        "output {:?} has no outputBinding.glob and is not optional",
                        param.id
                    ));
                };
                let pattern = interpolate(glob_src, engine, &ctx)
                    .map_err(|e| format!("output {:?} glob: {e}", param.id))?
                    .to_display_string();
                let matches = glob_in(workdir, &pattern)?;
                materialize(typ, &matches, workdir, &param.id)?
            }
        };
        out.insert(param.id.clone(), value);
    }
    Ok(out)
}

fn capture_value(
    workdir: &Path,
    capture: Option<&str>,
    what: &str,
    id: &str,
) -> Result<Value, String> {
    let name = capture.ok_or_else(|| {
        format!("output {id:?} has type {what} but no {what} capture was configured")
    })?;
    normalize_file(
        &Value::str(workdir.join(name).to_string_lossy().into_owned()),
        "File",
    )
}

/// Minimal glob: literal names, `*` (all files), `*.ext` suffix, `name.*`
/// prefix — the patterns CWL tools actually use for single-directory
/// collection.
fn glob_in(workdir: &Path, pattern: &str) -> Result<Vec<String>, String> {
    if !pattern.contains('*') {
        let p = workdir.join(pattern);
        return Ok(if p.exists() {
            vec![pattern.to_string()]
        } else {
            Vec::new()
        });
    }
    let entries = std::fs::read_dir(workdir)
        .map_err(|e| format!("cannot list {}: {e}", workdir.display()))?;
    let (prefix, suffix) = pattern
        .split_once('*')
        .expect("contains('*') checked above");
    if suffix.contains('*') {
        return Err(format!(
            "glob pattern {pattern:?} is too complex (one '*' supported)"
        ));
    }
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| {
            n.starts_with(prefix) && n.ends_with(suffix) && n.len() >= prefix.len() + suffix.len()
        })
        .collect();
    names.sort();
    Ok(names)
}

fn materialize(
    typ: &CwlType,
    matches: &[String],
    workdir: &Path,
    id: &str,
) -> Result<Value, String> {
    let file_value = |name: &str| {
        normalize_file(
            &Value::str(workdir.join(name).to_string_lossy().into_owned()),
            "File",
        )
    };
    match typ {
        CwlType::Array(_) => Ok(Value::Seq(
            matches
                .iter()
                .map(|n| file_value(n))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        CwlType::Optional(inner) => {
            if matches.is_empty() {
                Ok(Value::Null)
            } else {
                materialize(inner, matches, workdir, id)
            }
        }
        _ => match matches {
            [] => Err(format!(
                "output {id:?}: no file matched the glob in {}",
                workdir.display()
            )),
            [single] => file_value(single),
            many => Err(format!(
                "output {id:?}: {} files matched but type is not an array",
                many.len()
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::CommandLineTool;
    use expr::JsEngine;
    use yamlite::{parse_str, vmap};

    fn workdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cwl-out-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn tool(outputs: &str, stdout: Option<&str>) -> CommandLineTool {
        let mut src = format!(
            "cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: t\ninputs:\n  name:\n    type: string\noutputs:\n{outputs}"
        );
        if let Some(s) = stdout {
            src.push_str(&format!("stdout: {s}\n"));
        }
        CommandLineTool::parse(&parse_str(&src).unwrap()).unwrap()
    }

    fn inputs() -> Map {
        match vmap! {"name" => "result"} {
            Value::Map(m) => m,
            _ => unreachable!(),
        }
    }

    #[test]
    fn stdout_capture_collected() {
        let dir = workdir("stdout");
        std::fs::write(dir.join("hello.txt"), "hi").unwrap();
        let t = tool("  output:\n    type: stdout\n", Some("hello.txt"));
        let out = collect_outputs(
            &t,
            &inputs(),
            &JsEngine::in_process(),
            &dir,
            Some("hello.txt"),
            None,
        )
        .unwrap();
        assert_eq!(
            out.get("output").unwrap()["basename"].as_str(),
            Some("hello.txt")
        );
        assert_eq!(out.get("output").unwrap()["size"].as_int(), Some(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn literal_glob_collects_file() {
        let dir = workdir("literal");
        std::fs::write(dir.join("resized.rimg"), "x").unwrap();
        let t = tool(
            "  out:\n    type: File\n    outputBinding:\n      glob: resized.rimg\n",
            None,
        );
        let out =
            collect_outputs(&t, &inputs(), &JsEngine::in_process(), &dir, None, None).unwrap();
        assert!(out.get("out").unwrap()["path"]
            .as_str()
            .unwrap()
            .ends_with("resized.rimg"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn expression_glob_uses_inputs() {
        let dir = workdir("expr");
        std::fs::write(dir.join("result.out"), "x").unwrap();
        let t = tool(
            "  out:\n    type: File\n    outputBinding:\n      glob: $(inputs.name).out\n",
            None,
        );
        let out =
            collect_outputs(&t, &inputs(), &JsEngine::in_process(), &dir, None, None).unwrap();
        assert_eq!(
            out.get("out").unwrap()["basename"].as_str(),
            Some("result.out")
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn star_glob_array() {
        let dir = workdir("star");
        std::fs::write(dir.join("a.rimg"), "x").unwrap();
        std::fs::write(dir.join("b.rimg"), "x").unwrap();
        std::fs::write(dir.join("c.txt"), "x").unwrap();
        let t = tool(
            "  imgs:\n    type: File[]\n    outputBinding:\n      glob: '*.rimg'\n",
            None,
        );
        let out =
            collect_outputs(&t, &inputs(), &JsEngine::in_process(), &dir, None, None).unwrap();
        let imgs = out.get("imgs").unwrap().as_seq().unwrap();
        assert_eq!(imgs.len(), 2);
        assert_eq!(imgs[0]["basename"].as_str(), Some("a.rimg"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_required_output_errors() {
        let dir = workdir("missing");
        let t = tool(
            "  out:\n    type: File\n    outputBinding:\n      glob: ghost.txt\n",
            None,
        );
        let err =
            collect_outputs(&t, &inputs(), &JsEngine::in_process(), &dir, None, None).unwrap_err();
        assert!(err.contains("no file matched"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn optional_output_null_when_missing() {
        let dir = workdir("optional");
        let t = tool(
            "  out:\n    type: File?\n    outputBinding:\n      glob: ghost.txt\n",
            None,
        );
        let out =
            collect_outputs(&t, &inputs(), &JsEngine::in_process(), &dir, None, None).unwrap();
        assert!(out.get("out").unwrap().is_null());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multiple_matches_for_scalar_errors() {
        let dir = workdir("multi");
        std::fs::write(dir.join("a.rimg"), "x").unwrap();
        std::fs::write(dir.join("b.rimg"), "x").unwrap();
        let t = tool(
            "  out:\n    type: File\n    outputBinding:\n      glob: '*.rimg'\n",
            None,
        );
        let err =
            collect_outputs(&t, &inputs(), &JsEngine::in_process(), &dir, None, None).unwrap_err();
        assert!(err.contains("2 files matched"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unbound_nonoptional_output_errors() {
        let dir = workdir("unbound");
        let t = tool("  out:\n    type: File\n", None);
        let err =
            collect_outputs(&t, &inputs(), &JsEngine::in_process(), &dir, None, None).unwrap_err();
        assert!(err.contains("no outputBinding.glob"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stdout_type_without_capture_errors() {
        let dir = workdir("nocap");
        let t = tool("  output:\n    type: stdout\n", None);
        let err =
            collect_outputs(&t, &inputs(), &JsEngine::in_process(), &dir, None, None).unwrap_err();
        assert!(err.contains("no stdout capture"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
