//! Structural validation of CWL documents with diagnostics — the role
//! `cwltool --validate` plays in the CWL ecosystem.

use crate::loader::{load_document, CwlDocument};
use crate::workflow::Workflow;
use std::collections::HashSet;
use yamlite::Value;

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Dotted location within the document (best effort).
    pub path: String,
    pub message: String,
}

impl Diagnostic {
    fn error(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Error,
            path: path.into(),
            message: message.into(),
        }
    }

    fn warning(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Warning,
            path: path.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}: {}: {}", self.path, self.message)
    }
}

/// Validate a raw document value. Returns all findings; the document is
/// acceptable when no `Error`-severity diagnostics are present.
pub fn validate_document(doc: &Value) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    match doc.get("cwlVersion").and_then(Value::as_str) {
        None => diags.push(Diagnostic::error("cwlVersion", "missing cwlVersion")),
        Some(v) if !matches!(v, "v1.0" | "v1.1" | "v1.2") => {
            diags.push(Diagnostic::warning(
                "cwlVersion",
                format!("unrecognized cwlVersion {v:?} (treating as v1.2)"),
            ));
        }
        _ => {}
    }

    let parsed = match load_document(doc) {
        Ok(p) => p,
        Err(e) => {
            diags.push(Diagnostic::error("", e));
            return diags;
        }
    };

    match &parsed {
        CwlDocument::Tool(tool) => {
            if tool.base_command.is_empty() && tool.arguments.is_empty() {
                diags.push(Diagnostic::error(
                    "baseCommand",
                    "tool has neither baseCommand nor arguments",
                ));
            }
            let mut seen = HashSet::new();
            for p in &tool.inputs {
                if !seen.insert(p.id.as_str()) {
                    diags.push(Diagnostic::error(
                        format!("inputs.{}", p.id),
                        "duplicate input id",
                    ));
                }
                if p.validate.is_some() && !tool.requirements.inline_python {
                    diags.push(Diagnostic::error(
                        format!("inputs.{}", p.id),
                        "validate: requires InlinePythonRequirement",
                    ));
                }
            }
            let mut seen_out = HashSet::new();
            for p in &tool.outputs {
                if !seen_out.insert(p.id.as_str()) {
                    diags.push(Diagnostic::error(
                        format!("outputs.{}", p.id),
                        "duplicate output id",
                    ));
                }
            }
            for ignored in &tool.requirements.ignored {
                diags.push(Diagnostic::warning(
                    "requirements",
                    format!("{ignored} is recognized but ignored by this runner"),
                ));
            }
            for unknown in &tool.requirements.unknown {
                diags.push(Diagnostic::warning(
                    "requirements",
                    format!("unknown requirement {unknown}"),
                ));
            }
        }
        CwlDocument::Workflow(wf) => validate_workflow(wf, &mut diags),
    }
    diags
}

fn validate_workflow(wf: &Workflow, diags: &mut Vec<Diagnostic>) {
    let input_ids: HashSet<&str> = wf.inputs.iter().map(|i| i.id.as_str()).collect();
    let step_ids: HashSet<&str> = wf.steps.iter().map(|s| s.id.as_str()).collect();

    let valid_source = |src: &str| -> bool {
        match src.split_once('/') {
            None => input_ids.contains(src),
            Some((step, out)) => wf
                .step(step)
                .map(|s| s.out.iter().any(|o| o == out))
                .unwrap_or(false),
        }
    };

    for step in &wf.steps {
        let loc = format!("steps.{}", step.id);
        for input in &step.inputs {
            for src in &input.sources {
                if !valid_source(src) {
                    diags.push(Diagnostic::error(
                        format!("{loc}.in.{}", input.id),
                        format!("source {src:?} does not name a workflow input or step output"),
                    ));
                }
            }
            if let Some(lm) = &input.link_merge {
                if !matches!(lm.as_str(), "merge_nested" | "merge_flattened") {
                    diags.push(Diagnostic::error(
                        format!("{loc}.in.{}", input.id),
                        format!("unknown linkMerge method {lm:?}"),
                    ));
                }
            }
            if input.sources.is_empty() && input.default.is_none() && input.value_from.is_none() {
                diags.push(Diagnostic::error(
                    format!("{loc}.in.{}", input.id),
                    "step input has no source, default, or valueFrom",
                ));
            }
            if input.value_from.is_some() && !wf.requirements.step_input_expression {
                diags.push(Diagnostic::error(
                    format!("{loc}.in.{}", input.id),
                    "valueFrom requires StepInputExpressionRequirement",
                ));
            }
        }
        if step.when.is_some() && !matches!(wf.cwl_version.as_str(), "v1.2" | "") {
            diags.push(Diagnostic::error(
                format!("{loc}.when"),
                format!(
                    "conditional execution requires cwlVersion v1.2 (found {:?})",
                    wf.cwl_version
                ),
            ));
        }
        if !step.scatter.is_empty() {
            if !wf.requirements.scatter {
                diags.push(Diagnostic::error(
                    format!("{loc}.scatter"),
                    "scatter requires ScatterFeatureRequirement",
                ));
            }
            for target in &step.scatter {
                let Some(input) = step.inputs.iter().find(|i| &i.id == target) else {
                    diags.push(Diagnostic::error(
                        format!("{loc}.scatter"),
                        format!("scatter target {target:?} is not a step input"),
                    ));
                    continue;
                };
                // When the scatter source is a workflow input, its declared
                // type must be an array (step-output sources need the run
                // target resolved — the analyze module covers those).
                if let [src] = input.sources.as_slice() {
                    if !src.contains('/') {
                        if let Some(wi) = wf.inputs.iter().find(|i| &i.id == src) {
                            let is_array = matches!(
                                wi.typ,
                                crate::types::CwlType::Array(_) | crate::types::CwlType::Any
                            );
                            if !is_array {
                                diags.push(Diagnostic::error(
                                    format!("{loc}.scatter"),
                                    format!("scatter source {src:?} has non-array type {}", wi.typ),
                                ));
                            }
                        }
                    }
                }
            }
        }
        let _ = &step_ids;
    }

    for out in &wf.outputs {
        if !valid_source(&out.output_source) {
            diags.push(Diagnostic::error(
                format!("outputs.{}", out.id),
                format!(
                    "outputSource {:?} does not name a workflow input or step output",
                    out.output_source
                ),
            ));
        }
    }

    if let Err(e) = wf.topo_order() {
        diags.push(Diagnostic::error("steps", e));
    }
}

/// Convenience: true when no error-severity diagnostics are present.
pub fn is_valid(diags: &[Diagnostic]) -> bool {
    diags.iter().all(|d| d.severity != Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yamlite::parse_str;

    fn diags(src: &str) -> Vec<Diagnostic> {
        validate_document(&parse_str(src).unwrap())
    }

    fn errors(src: &str) -> Vec<Diagnostic> {
        diags(src)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    #[test]
    fn valid_tool_passes() {
        let d = diags(
            "cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: echo\ninputs:\n  m:\n    type: string\noutputs: {}\n",
        );
        assert!(is_valid(&d), "{d:?}");
    }

    #[test]
    fn missing_version_flagged() {
        let e = errors("class: CommandLineTool\nbaseCommand: echo\ninputs: {}\noutputs: {}\n");
        assert!(e.iter().any(|d| d.path == "cwlVersion"));
    }

    #[test]
    fn odd_version_warns_but_valid() {
        let d = diags(
            "cwlVersion: v9.9\nclass: CommandLineTool\nbaseCommand: x\ninputs: {}\noutputs: {}\n",
        );
        assert!(is_valid(&d));
        assert!(d.iter().any(|x| x.severity == Severity::Warning));
    }

    #[test]
    fn no_command_flagged() {
        let e = errors("cwlVersion: v1.2\nclass: CommandLineTool\ninputs: {}\noutputs: {}\n");
        assert!(e.iter().any(|d| d.message.contains("neither baseCommand")));
    }

    #[test]
    fn validate_field_requires_python_requirement() {
        let e = errors(
            "cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: cat\ninputs:\n  f:\n    type: File\n    validate: f\"{check($(inputs.f))}\"\noutputs: {}\n",
        );
        assert!(e
            .iter()
            .any(|d| d.message.contains("InlinePythonRequirement")));
    }

    #[test]
    fn docker_requirement_warns() {
        let d = diags(
            "cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: x\nrequirements:\n  - class: DockerRequirement\ninputs: {}\noutputs: {}\n",
        );
        assert!(is_valid(&d));
        assert!(d.iter().any(|x| x.message.contains("ignored")));
    }

    #[test]
    fn workflow_bad_source_flagged() {
        let e = errors(
            r#"
cwlVersion: v1.2
class: Workflow
inputs:
  img: File
outputs:
  out:
    type: File
    outputSource: stepA/missing_out
steps:
  stepA:
    run: a.cwl
    in:
      x: img
      y: ghost_input
    out: [real_out]
"#,
        );
        assert!(e.iter().any(|d| d.path == "steps.stepA.in.y"));
        assert!(e.iter().any(|d| d.path == "outputs.out"));
    }

    #[test]
    fn scatter_without_requirement_flagged() {
        let e = errors(
            r#"
cwlVersion: v1.2
class: Workflow
inputs:
  xs: File[]
outputs: {}
steps:
  s:
    run: t.cwl
    scatter: missing_target
    in:
      item: xs
    out: []
"#,
        );
        assert!(e
            .iter()
            .any(|d| d.message.contains("ScatterFeatureRequirement")));
        assert!(e.iter().any(|d| d.message.contains("not a step input")));
    }

    #[test]
    fn scatter_over_non_array_input_flagged() {
        let e = errors(
            r#"
cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  word: string
outputs: {}
steps:
  s:
    run: t.cwl
    scatter: item
    in:
      item: word
    out: []
"#,
        );
        assert!(
            e.iter()
                .any(|d| d.message.contains("non-array type string")),
            "{e:?}"
        );
    }

    #[test]
    fn scatter_over_array_input_accepted() {
        let e = errors(
            r#"
cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  words: string[]
outputs: {}
steps:
  s:
    run: t.cwl
    scatter: item
    in:
      item: words
    out: []
"#,
        );
        assert!(!e.iter().any(|d| d.message.contains("non-array")), "{e:?}");
    }

    #[test]
    fn value_from_without_requirement_flagged() {
        let e = errors(
            r#"
cwlVersion: v1.2
class: Workflow
inputs: {}
outputs: {}
steps:
  s:
    run: t.cwl
    in:
      name:
        valueFrom: "fixed.rimg"
    out: []
"#,
        );
        assert!(e
            .iter()
            .any(|d| d.message.contains("StepInputExpressionRequirement")));
    }

    #[test]
    fn valid_image_workflow_passes() {
        let d = validate_document(&parse_str(crate::workflow::IMAGE_WORKFLOW_CWL).unwrap());
        assert!(is_valid(&d), "{d:?}");
    }

    #[test]
    fn when_requires_v12() {
        let e = errors(
            "cwlVersion: v1.0\nclass: Workflow\ninputs:\n  r: int\noutputs: {}\nsteps:\n  s:\n    run: t.cwl\n    when: $(inputs.r > 0)\n    in:\n      r: r\n    out: []\n",
        );
        assert!(e.iter().any(|d| d.message.contains("v1.2")), "{e:?}");
        let ok = diags(
            "cwlVersion: v1.2\nclass: Workflow\ninputs:\n  r: int\noutputs: {}\nsteps:\n  s:\n    run: t.cwl\n    when: $(inputs.r > 0)\n    in:\n      r: r\n    out: []\n",
        );
        assert!(is_valid(&ok), "{ok:?}");
    }

    #[test]
    fn dangling_step_input_flagged() {
        let e = errors(
            "cwlVersion: v1.2\nclass: Workflow\ninputs: {}\noutputs: {}\nsteps:\n  s:\n    run: t.cwl\n    in:\n      x:\n        source: null\n    out: []\n",
        );
        assert!(e.iter().any(|d| d.message.contains("no source, default")));
    }
}
