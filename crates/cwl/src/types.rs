//! The CWL type system subset: primitive types, `File`/`Directory`,
//! `stdout`/`stderr` shorthands, arrays, and optionals.

use std::fmt;
use yamlite::Value;

/// A CWL parameter type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CwlType {
    Null,
    Boolean,
    Int,
    Long,
    Float,
    Double,
    Str,
    File,
    Directory,
    /// Output shorthand: capture the tool's stdout into a file.
    Stdout,
    /// Output shorthand: capture the tool's stderr into a file.
    Stderr,
    /// `items[]`
    Array(Box<CwlType>),
    /// `type?` — null is allowed.
    Optional(Box<CwlType>),
    /// `Any`.
    Any,
}

impl CwlType {
    /// Parse a type from its document representation: a plain string
    /// (`"string"`, `"File[]"`, `"int?"`), a `{type: array, items: ...}`
    /// map, or a `[null, X]` union (optional).
    pub fn parse(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Self::parse_str(s),
            Value::Map(m) => {
                let t = m
                    .get("type")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("type map missing 'type': {v:?}"))?;
                match t {
                    "array" => {
                        let items = m
                            .get("items")
                            .ok_or_else(|| "array type missing 'items'".to_string())?;
                        Ok(CwlType::Array(Box::new(Self::parse(items)?)))
                    }
                    "enum" | "record" => {
                        Err(format!("CWL {t} types are outside the supported subset"))
                    }
                    other => Self::parse_str(other),
                }
            }
            Value::Seq(items) => {
                // Union: only `[null, X]` (optional) is in the subset.
                let non_null: Vec<&Value> = items
                    .iter()
                    .filter(|i| i.as_str() != Some("null"))
                    .collect();
                if non_null.len() == 1 && non_null.len() < items.len() {
                    Ok(CwlType::Optional(Box::new(Self::parse(non_null[0])?)))
                } else {
                    Err(format!("unsupported type union {v:?} (only [null, X])"))
                }
            }
            other => Err(format!("cannot parse type from {other:?}")),
        }
    }

    fn parse_str(s: &str) -> Result<Self, String> {
        if let Some(base) = s.strip_suffix("[]") {
            return Ok(CwlType::Array(Box::new(Self::parse_str(base)?)));
        }
        if let Some(base) = s.strip_suffix('?') {
            return Ok(CwlType::Optional(Box::new(Self::parse_str(base)?)));
        }
        Ok(match s {
            "null" => CwlType::Null,
            "boolean" => CwlType::Boolean,
            "int" => CwlType::Int,
            "long" => CwlType::Long,
            "float" => CwlType::Float,
            "double" => CwlType::Double,
            "string" => CwlType::Str,
            "File" => CwlType::File,
            "Directory" => CwlType::Directory,
            "stdout" => CwlType::Stdout,
            "stderr" => CwlType::Stderr,
            "Any" => CwlType::Any,
            other => return Err(format!("unknown CWL type {other:?}")),
        })
    }

    /// Whether `value` conforms to this type. File values are accepted as
    /// path strings or `{class: File}` objects (normalization happens in
    /// [`crate::input`]).
    pub fn accepts(&self, value: &Value) -> bool {
        match self {
            CwlType::Null => value.is_null(),
            CwlType::Boolean => matches!(value, Value::Bool(_)),
            CwlType::Int | CwlType::Long => matches!(value, Value::Int(_)),
            CwlType::Float | CwlType::Double => {
                matches!(value, Value::Float(_) | Value::Int(_))
            }
            CwlType::Str => matches!(value, Value::Str(_)),
            CwlType::File | CwlType::Directory => match value {
                Value::Str(_) => true,
                Value::Map(m) => {
                    m.get("class").and_then(Value::as_str)
                        == Some(if *self == CwlType::File {
                            "File"
                        } else {
                            "Directory"
                        })
                }
                _ => false,
            },
            CwlType::Stdout | CwlType::Stderr => false, // output-only shorthands
            CwlType::Array(item) => match value {
                Value::Seq(items) => items.iter().all(|v| item.accepts(v)),
                _ => false,
            },
            CwlType::Optional(inner) => value.is_null() || inner.accepts(value),
            CwlType::Any => !value.is_null(),
        }
    }

    /// Whether null is acceptable (optional or null type).
    pub fn allows_null(&self) -> bool {
        matches!(self, CwlType::Null | CwlType::Optional(_))
    }

    /// Whether this type denotes a (possibly optional) File.
    pub fn is_file_like(&self) -> bool {
        match self {
            CwlType::File | CwlType::Directory => true,
            CwlType::Optional(inner) | CwlType::Array(inner) => inner.is_file_like(),
            _ => false,
        }
    }
}

impl fmt::Display for CwlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CwlType::Null => f.write_str("null"),
            CwlType::Boolean => f.write_str("boolean"),
            CwlType::Int => f.write_str("int"),
            CwlType::Long => f.write_str("long"),
            CwlType::Float => f.write_str("float"),
            CwlType::Double => f.write_str("double"),
            CwlType::Str => f.write_str("string"),
            CwlType::File => f.write_str("File"),
            CwlType::Directory => f.write_str("Directory"),
            CwlType::Stdout => f.write_str("stdout"),
            CwlType::Stderr => f.write_str("stderr"),
            CwlType::Array(item) => write!(f, "{item}[]"),
            CwlType::Optional(inner) => write!(f, "{inner}?"),
            CwlType::Any => f.write_str("Any"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yamlite::vmap;

    #[test]
    fn parse_plain_strings() {
        assert_eq!(CwlType::parse(&Value::str("string")).unwrap(), CwlType::Str);
        assert_eq!(CwlType::parse(&Value::str("int")).unwrap(), CwlType::Int);
        assert_eq!(CwlType::parse(&Value::str("File")).unwrap(), CwlType::File);
        assert_eq!(
            CwlType::parse(&Value::str("stdout")).unwrap(),
            CwlType::Stdout
        );
    }

    #[test]
    fn parse_suffixes() {
        assert_eq!(
            CwlType::parse(&Value::str("File[]")).unwrap(),
            CwlType::Array(Box::new(CwlType::File))
        );
        assert_eq!(
            CwlType::parse(&Value::str("int?")).unwrap(),
            CwlType::Optional(Box::new(CwlType::Int))
        );
        assert_eq!(
            CwlType::parse(&Value::str("string[]?")).unwrap(),
            CwlType::Optional(Box::new(CwlType::Array(Box::new(CwlType::Str))))
        );
    }

    #[test]
    fn parse_map_and_union() {
        let m = vmap! {"type" => "array", "items" => "File"};
        assert_eq!(
            CwlType::parse(&m).unwrap(),
            CwlType::Array(Box::new(CwlType::File))
        );
        let u = yamlite::vseq!["null", "int"];
        assert_eq!(
            CwlType::parse(&u).unwrap(),
            CwlType::Optional(Box::new(CwlType::Int))
        );
    }

    #[test]
    fn parse_errors() {
        assert!(CwlType::parse(&Value::str("frobnicator")).is_err());
        assert!(CwlType::parse(&Value::Int(3)).is_err());
        assert!(CwlType::parse(&yamlite::vseq!["int", "string"]).is_err());
        assert!(CwlType::parse(&vmap! {"type" => "enum"}).is_err());
        assert!(CwlType::parse(&vmap! {"type" => "array"}).is_err());
    }

    #[test]
    fn accepts_primitives() {
        assert!(CwlType::Int.accepts(&Value::Int(5)));
        assert!(!CwlType::Int.accepts(&Value::str("5")));
        assert!(CwlType::Double.accepts(&Value::Int(5)));
        assert!(CwlType::Boolean.accepts(&Value::Bool(true)));
        assert!(CwlType::Str.accepts(&Value::str("x")));
        assert!(!CwlType::Str.accepts(&Value::Null));
    }

    #[test]
    fn accepts_files() {
        assert!(CwlType::File.accepts(&Value::str("/a/b.png")));
        assert!(CwlType::File.accepts(&vmap! {"class" => "File", "path" => "/x"}));
        assert!(!CwlType::File.accepts(&vmap! {"class" => "Directory"}));
        assert!(CwlType::Directory.accepts(&vmap! {"class" => "Directory", "path" => "/d"}));
    }

    #[test]
    fn accepts_arrays_and_optionals() {
        let files = CwlType::Array(Box::new(CwlType::File));
        assert!(files.accepts(&yamlite::vseq!["/a", "/b"]));
        assert!(!files.accepts(&yamlite::vseq!["/a", 3i64]));
        let opt = CwlType::Optional(Box::new(CwlType::Int));
        assert!(opt.accepts(&Value::Null));
        assert!(opt.accepts(&Value::Int(1)));
        assert!(opt.allows_null());
        assert!(!CwlType::Int.allows_null());
    }

    #[test]
    fn file_likeness() {
        assert!(CwlType::File.is_file_like());
        assert!(CwlType::Array(Box::new(CwlType::File)).is_file_like());
        assert!(CwlType::Optional(Box::new(CwlType::File)).is_file_like());
        assert!(!CwlType::Str.is_file_like());
    }

    #[test]
    fn display_roundtrip() {
        for t in ["string", "int?", "File[]", "double"] {
            let parsed = CwlType::parse(&Value::str(t)).unwrap();
            assert_eq!(parsed.to_string(), t);
        }
    }
}
