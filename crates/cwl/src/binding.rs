//! The command-line binding algorithm: turning a tool definition plus a
//! resolved input object into an argv, stdout/stderr redirections, and
//! environment — the core of what a CWL runner does per step.

use crate::tool::{CommandLineTool, InputBinding};
use crate::types::CwlType;
use expr::{interpolate, EvalContext, ExpressionEngine};
use yamlite::{Map, Value};

/// The fully built invocation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BuiltCommand {
    /// Program and arguments.
    pub argv: Vec<String>,
    /// File name to redirect stdout into (workdir-relative).
    pub stdout: Option<String>,
    /// File name to redirect stderr into (workdir-relative).
    pub stderr: Option<String>,
    /// Environment variables from `EnvVarRequirement`.
    pub env: Vec<(String, String)>,
}

/// One binding waiting to be sorted onto the command line.
struct Pending {
    position: i64,
    /// Tie-break: arguments sort before inputs at equal positions, then by
    /// declaration order (a documented simplification of the spec's
    /// lexicographic key rule).
    tie: (u8, usize),
    tokens: Vec<String>,
}

/// Stringify a bound value for argv (File objects become their path).
fn value_token(v: &Value) -> String {
    match v {
        Value::Map(m)
            if m.get("class").and_then(Value::as_str) == Some("File")
                || m.get("class").and_then(Value::as_str) == Some("Directory") =>
        {
            m.get("path")
                .map(Value::to_display_string)
                .unwrap_or_default()
        }
        other => other.to_display_string(),
    }
}

/// Render one input binding into argv tokens.
fn bind_tokens(binding: &InputBinding, value: &Value) -> Vec<String> {
    let mut tokens = Vec::new();
    match value {
        Value::Null => {}
        Value::Bool(true) => {
            // Boolean true: emit the prefix as a flag.
            if let Some(prefix) = &binding.prefix {
                tokens.push(prefix.clone());
            }
        }
        Value::Bool(false) => {}
        Value::Seq(items) => {
            if items.is_empty() {
                return tokens;
            }
            if let Some(sep) = &binding.item_separator {
                let joined = items.iter().map(value_token).collect::<Vec<_>>().join(sep);
                push_prefixed(&mut tokens, binding, joined);
            } else {
                // Prefix once, then each item as its own token.
                if let Some(prefix) = &binding.prefix {
                    if binding.separate {
                        tokens.push(prefix.clone());
                        tokens.extend(items.iter().map(value_token));
                    } else {
                        let mut first = true;
                        for item in items {
                            if first {
                                tokens.push(format!("{prefix}{}", value_token(item)));
                                first = false;
                            } else {
                                tokens.push(value_token(item));
                            }
                        }
                    }
                } else {
                    tokens.extend(items.iter().map(value_token));
                }
            }
        }
        scalar => push_prefixed(&mut tokens, binding, value_token(scalar)),
    }
    tokens
}

fn push_prefixed(tokens: &mut Vec<String>, binding: &InputBinding, rendered: String) {
    match (&binding.prefix, binding.separate) {
        (Some(prefix), true) => {
            tokens.push(prefix.clone());
            tokens.push(rendered);
        }
        (Some(prefix), false) => tokens.push(format!("{prefix}{rendered}")),
        (None, _) => tokens.push(rendered),
    }
}

/// Build the command line for `tool` with the resolved `inputs` object.
/// Expressions (in arguments, `valueFrom`, `stdout`, env values) are
/// evaluated with `engine`.
pub fn build_command(
    tool: &CommandLineTool,
    inputs: &Map,
    engine: &dyn ExpressionEngine,
) -> Result<BuiltCommand, String> {
    let ctx = EvalContext::from_inputs(Value::Map(inputs.clone()));
    let mut pending: Vec<Pending> = Vec::new();

    // `arguments:` section.
    for (i, arg) in tool.arguments.iter().enumerate() {
        let value = match &arg.value {
            Value::Str(s) => {
                interpolate(s, engine, &ctx).map_err(|e| format!("argument {i}: {e}"))?
            }
            other => other.clone(),
        };
        if value.is_null() {
            continue;
        }
        let binding = InputBinding {
            position: arg.position,
            prefix: arg.prefix.clone(),
            separate: arg.separate,
            item_separator: None,
            value_from: None,
        };
        let tokens = bind_tokens(&binding, &value);
        if !tokens.is_empty() {
            pending.push(Pending {
                position: arg.position,
                tie: (0, i),
                tokens,
            });
        }
    }

    // Bound inputs.
    for (i, param) in tool.inputs.iter().enumerate() {
        let Some(binding) = &param.binding else {
            continue;
        };
        let mut value = inputs.get(&param.id).cloned().unwrap_or(Value::Null);
        if let Some(vf) = &binding.value_from {
            let mut vf_ctx = ctx.clone();
            vf_ctx.self_ = value.clone();
            value = interpolate(vf, engine, &vf_ctx)
                .map_err(|e| format!("input {:?} valueFrom: {e}", param.id))?;
        }
        if value.is_null() && param.typ.allows_null() {
            continue;
        }
        let tokens = bind_tokens(binding, &value);
        if !tokens.is_empty() {
            pending.push(Pending {
                position: binding.position,
                tie: (1, i),
                tokens,
            });
        }
    }

    pending.sort_by(|a, b| a.position.cmp(&b.position).then(a.tie.cmp(&b.tie)));

    let mut argv: Vec<String> = tool.base_command.clone();
    for p in pending {
        argv.extend(p.tokens);
    }
    if argv.is_empty() {
        return Err(
            "tool produced an empty command line (no baseCommand or arguments)".to_string(),
        );
    }

    let eval_name = |src: &Option<String>, what: &str| -> Result<Option<String>, String> {
        match src {
            None => Ok(None),
            Some(s) => Ok(Some(
                interpolate(s, engine, &ctx)
                    .map_err(|e| format!("{what}: {e}"))?
                    .to_display_string(),
            )),
        }
    };
    let mut stdout = eval_name(&tool.stdout, "stdout")?;
    let stderr = eval_name(&tool.stderr, "stderr")?;

    // An output of type `stdout` without an explicit redirect gets a
    // deterministic generated capture file, per spec.
    if stdout.is_none() && tool.outputs.iter().any(|o| o.typ == CwlType::Stdout) {
        stdout = Some(format!(
            "{}_stdout.txt",
            tool.id.clone().unwrap_or_else(|| "tool".to_string())
        ));
    }

    let mut env = Vec::with_capacity(tool.requirements.env_vars.len());
    for (k, v) in &tool.requirements.env_vars {
        let value = interpolate(v, engine, &ctx)
            .map_err(|e| format!("envDef {k:?}: {e}"))?
            .to_display_string();
        env.push((k.clone(), value));
    }

    Ok(BuiltCommand {
        argv,
        stdout,
        stderr,
        env,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::resolve_inputs;
    use crate::tool::CommandLineTool;
    use expr::JsEngine;
    use yamlite::{parse_str, vmap};

    fn tool(src: &str) -> CommandLineTool {
        CommandLineTool::parse(&parse_str(src).unwrap()).unwrap()
    }

    fn build(tool_src: &str, provided: Value) -> BuiltCommand {
        let t = tool(tool_src);
        let provided = match provided {
            Value::Map(m) => m,
            _ => unreachable!(),
        };
        let inputs = resolve_inputs(&t.inputs, &provided).unwrap();
        build_command(&t, &inputs, &JsEngine::in_process()).unwrap()
    }

    /// Listing 1: `echo "Hello, World!" > hello.txt`.
    #[test]
    fn listing1_echo() {
        let cmd = build(
            r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message:
    type: string
    default: "Hello World"
    inputBinding:
      position: 1
outputs:
  output:
    type: stdout
stdout: hello.txt
"#,
            vmap! {"message" => "Hello, World!"},
        );
        assert_eq!(cmd.argv, vec!["echo", "Hello, World!"]);
        assert_eq!(cmd.stdout.as_deref(), Some("hello.txt"));
    }

    #[test]
    fn default_applies_when_absent() {
        let cmd = build(
            "cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: echo\ninputs:\n  message:\n    type: string\n    default: fallback\n    inputBinding: {position: 1}\noutputs: {}\n",
            vmap! {},
        );
        assert_eq!(cmd.argv, vec!["echo", "fallback"]);
    }

    #[test]
    fn positions_and_prefixes_order() {
        let cmd = build(
            r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: [imgtool, resize]
inputs:
  input_image:
    type: File
    inputBinding: {position: 1}
  output_image:
    type: string
    inputBinding: {position: 2}
  size:
    type: int
    inputBinding: {position: 3, prefix: --size}
outputs: {}
"#,
            vmap! {"input_image" => "/in.rimg", "output_image" => "out.rimg", "size" => 1024i64},
        );
        assert_eq!(
            cmd.argv,
            vec!["imgtool", "resize", "/in.rimg", "out.rimg", "--size", "1024"]
        );
    }

    #[test]
    fn boolean_flags() {
        let src = r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: tool
inputs:
  verbose:
    type: boolean
    inputBinding: {prefix: --verbose}
outputs: {}
"#;
        let on = build(src, vmap! {"verbose" => true});
        assert_eq!(on.argv, vec!["tool", "--verbose"]);
        let off = build(src, vmap! {"verbose" => false});
        assert_eq!(off.argv, vec!["tool"]);
    }

    #[test]
    fn separate_false_concatenates() {
        let cmd = build(
            "cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: t\ninputs:\n  n:\n    type: int\n    inputBinding: {prefix: '-j', separate: false}\noutputs: {}\n",
            vmap! {"n" => 8i64},
        );
        assert_eq!(cmd.argv, vec!["t", "-j8"]);
    }

    #[test]
    fn arrays_with_and_without_separator() {
        let with_sep = build(
            "cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: t\ninputs:\n  xs:\n    type: string[]\n    inputBinding: {prefix: --xs, itemSeparator: ','}\noutputs: {}\n",
            vmap! {"xs" => yamlite::vseq!["a", "b", "c"]},
        );
        assert_eq!(with_sep.argv, vec!["t", "--xs", "a,b,c"]);
        let without = build(
            "cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: t\ninputs:\n  xs:\n    type: string[]\n    inputBinding: {prefix: --xs}\noutputs: {}\n",
            vmap! {"xs" => yamlite::vseq!["a", "b"]},
        );
        assert_eq!(without.argv, vec!["t", "--xs", "a", "b"]);
        let empty = build(
            "cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: t\ninputs:\n  xs:\n    type: string[]\n    inputBinding: {prefix: --xs}\noutputs: {}\n",
            vmap! {"xs" => Value::Seq(vec![])},
        );
        assert_eq!(empty.argv, vec!["t"]);
    }

    #[test]
    fn optional_null_skipped() {
        let cmd = build(
            "cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: t\ninputs:\n  tag:\n    type: string?\n    inputBinding: {prefix: --tag}\noutputs: {}\n",
            vmap! {},
        );
        assert_eq!(cmd.argv, vec!["t"]);
    }

    #[test]
    fn file_binds_as_path() {
        let cmd = build(
            "cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: cat\ninputs:\n  f:\n    type: File\n    inputBinding: {position: 1}\noutputs: {}\n",
            vmap! {"f" => vmap!{"class" => "File", "path" => "/data/x.csv"}},
        );
        assert_eq!(cmd.argv, vec!["cat", "/data/x.csv"]);
    }

    #[test]
    fn value_from_expression_sees_self() {
        let cmd = build(
            r#"
cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InlineJavascriptRequirement
baseCommand: convert
inputs:
  img:
    type: File
    inputBinding:
      position: 1
      valueFrom: $(self.basename)
outputs: {}
"#,
            vmap! {"img" => "/data/photo.rimg"},
        );
        assert_eq!(cmd.argv, vec!["convert", "photo.rimg"]);
    }

    #[test]
    fn arguments_mix_with_inputs() {
        let cmd = build(
            r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: tar
arguments:
  - -czf
  - position: 10
    valueFrom: trailing
inputs:
  name:
    type: string
    inputBinding: {position: 1}
outputs: {}
"#,
            vmap! {"name" => "archive"},
        );
        assert_eq!(cmd.argv, vec!["tar", "-czf", "archive", "trailing"]);
    }

    #[test]
    fn argument_expression_interpolates() {
        let cmd = build(
            r#"
cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InlineJavascriptRequirement
baseCommand: echo
arguments:
  - $(inputs.message.toUpperCase())
inputs:
  message:
    type: string
outputs: {}
"#,
            vmap! {"message" => "shout"},
        );
        assert_eq!(cmd.argv, vec!["echo", "SHOUT"]);
    }

    #[test]
    fn stdout_expression_and_generated_capture() {
        let cmd = build(
            r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  name:
    type: string
outputs: {}
stdout: $(inputs.name).txt
"#,
            vmap! {"name" => "report"},
        );
        assert_eq!(cmd.stdout.as_deref(), Some("report.txt"));

        // stdout-typed output without explicit redirect gets a generated name.
        let gen = build(
            "cwlVersion: v1.2\nclass: CommandLineTool\nid: mytool\nbaseCommand: echo\ninputs: {}\noutputs:\n  o:\n    type: stdout\n",
            vmap! {},
        );
        assert_eq!(gen.stdout.as_deref(), Some("mytool_stdout.txt"));
    }

    #[test]
    fn env_vars_interpolate() {
        let cmd = build(
            r#"
cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: EnvVarRequirement
    envDef:
      THREADS: $(inputs.n)
baseCommand: t
inputs:
  n:
    type: int
outputs: {}
"#,
            vmap! {"n" => 6i64},
        );
        assert_eq!(cmd.env, vec![("THREADS".to_string(), "6".to_string())]);
    }

    #[test]
    fn empty_command_rejected() {
        let t = tool("cwlVersion: v1.2\nclass: CommandLineTool\ninputs: {}\noutputs: {}\n");
        let err = build_command(&t, &Map::new(), &JsEngine::in_process()).unwrap_err();
        assert!(err.contains("empty command line"));
    }
}
