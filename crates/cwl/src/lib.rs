//! `cwl` — a from-scratch implementation of the Common Workflow Language
//! v1.2 subset the Parsl+CWL paper exercises.
//!
//! CWL has two main abstractions (paper §II-A), both modeled here:
//!
//! * [`CommandLineTool`] — the YAML description of a command-line program:
//!   `baseCommand`, typed `inputs` with `inputBinding`s, typed `outputs`
//!   (including `stdout`/`stderr` capture and `glob` collection),
//!   `arguments`, and `requirements`;
//! * [`Workflow`] — steps linked by `source` references, with
//!   `StepInputExpressionRequirement` (`valueFrom`),
//!   `ScatterFeatureRequirement` (`scatter`), and
//!   `SubworkflowFeatureRequirement` (nested workflows) — everything the
//!   paper's image-processing evaluation workflow (Listing 3 plus the §VI
//!   scatter wrapper) requires.
//!
//! Supporting machinery:
//!
//! * [`loader`] — YAML document → model, with `run:` reference resolution
//!   relative to the referencing file;
//! * [`validate`] — structural validation with precise diagnostics
//!   (cwltool's `--validate` role);
//! * [`analyze`] — whole-document static analysis (`cwl-check`): typed
//!   dataflow checking, parse-only expression linting, span-carrying
//!   diagnostics with stable codes;
//! * [`binding`] — the command-line binding algorithm (position/prefix
//!   sorting, array `itemSeparator`, boolean flags, `valueFrom`);
//! * [`outputs`] — post-execution output collection (stdout capture, glob);
//! * [`input`] — input-object normalization, defaults, type checking, and
//!   the paper's `validate:` field (§V, Listing 6).
//!
//! Expressions inside documents are delegated to an
//! [`expr::ExpressionEngine`] — JavaScript per the CWL spec, or the paper's
//! inline Python.

pub mod analyze;
pub mod binding;
pub mod input;
pub mod loader;
pub mod outputs;
pub mod requirements;
pub mod tool;
pub mod types;
pub mod validate;
pub mod workflow;

pub use analyze::{analyze_file, analyze_str, analyze_value, Diag, Report};
pub use binding::{build_command, BuiltCommand};
pub use loader::{load_document, load_file, CwlDocument};
pub use requirements::Requirements;
pub use tool::{Argument, CommandLineTool, InputBinding, InputParam, OutputParam};
pub use types::CwlType;
pub use validate::{validate_document, Diagnostic, Severity};
pub use workflow::{Step, StepInput, Workflow, WorkflowOutput};
