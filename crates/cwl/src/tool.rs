//! The `CommandLineTool` model (paper §II-A, Listing 1).

use crate::requirements::Requirements;
use crate::types::CwlType;
use yamlite::Value;

/// How an input is bound onto the command line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InputBinding {
    /// Sort position (defaults to 0; ties break on declaration order).
    pub position: i64,
    /// Prefix flag (e.g. `--size`).
    pub prefix: Option<String>,
    /// Whether prefix and value are separate argv entries (default true).
    pub separate: bool,
    /// Join array items with this separator instead of repeating.
    pub item_separator: Option<String>,
    /// Expression transforming the value before binding (`self` = value).
    pub value_from: Option<String>,
}

impl InputBinding {
    /// Parse from a document node.
    pub fn parse(v: &Value) -> Result<Self, String> {
        let m = v
            .as_map()
            .ok_or_else(|| format!("inputBinding must be a map, got {v:?}"))?;
        Ok(Self {
            position: m.get("position").and_then(Value::as_int).unwrap_or(0),
            prefix: m.get("prefix").and_then(Value::as_str).map(str::to_string),
            separate: m.get("separate").and_then(Value::as_bool).unwrap_or(true),
            item_separator: m
                .get("itemSeparator")
                .and_then(Value::as_str)
                .map(str::to_string),
            value_from: m
                .get("valueFrom")
                .and_then(Value::as_str)
                .map(str::to_string),
        })
    }
}

/// One declared input parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct InputParam {
    /// Parameter id (the keyword argument name in the Parsl bridge).
    pub id: String,
    /// Declared type.
    pub typ: CwlType,
    /// Default value.
    pub default: Option<Value>,
    /// Command-line binding (inputs without one are not bound).
    pub binding: Option<InputBinding>,
    /// Documentation string.
    pub doc: Option<String>,
    /// The paper's `validate:` extension (§V, Listing 6): an expression
    /// evaluated before execution; a raised exception aborts the run.
    pub validate: Option<String>,
}

/// One declared output parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputParam {
    /// Parameter id.
    pub id: String,
    /// Declared type (`stdout`/`stderr` shorthands capture streams).
    pub typ: CwlType,
    /// `outputBinding.glob` — the file (or expression) to collect.
    pub glob: Option<String>,
    /// Documentation string.
    pub doc: Option<String>,
}

/// A literal or bound extra argument (`arguments:` section).
#[derive(Debug, Clone, PartialEq)]
pub struct Argument {
    /// The value: a literal or an expression string.
    pub value: Value,
    /// Sort position.
    pub position: i64,
    /// Optional prefix.
    pub prefix: Option<String>,
    /// Whether prefix and value are separate argv entries.
    pub separate: bool,
}

/// A parsed `class: CommandLineTool` document.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandLineTool {
    /// Optional tool id.
    pub id: Option<String>,
    /// `cwlVersion` as written.
    pub cwl_version: String,
    /// Documentation.
    pub doc: Option<String>,
    /// The executable (possibly multi-word, e.g. `[imgtool, resize]`).
    pub base_command: Vec<String>,
    /// Extra arguments.
    pub arguments: Vec<Argument>,
    /// Declared inputs, in document order.
    pub inputs: Vec<InputParam>,
    /// Declared outputs, in document order.
    pub outputs: Vec<OutputParam>,
    /// Redirect stdout to this file name (may be an expression).
    pub stdout: Option<String>,
    /// Redirect stderr to this file name (may be an expression).
    pub stderr: Option<String>,
    /// Parsed requirements + hints.
    pub requirements: Requirements,
}

impl CommandLineTool {
    /// Parse a `class: CommandLineTool` document.
    pub fn parse(doc: &Value) -> Result<Self, String> {
        if doc.get("class").and_then(Value::as_str) != Some("CommandLineTool") {
            return Err(format!(
                "expected class: CommandLineTool, got {:?}",
                doc.get("class")
            ));
        }
        let cwl_version = doc
            .get("cwlVersion")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();

        let base_command = match doc.get("baseCommand") {
            Some(Value::Str(s)) => vec![s.clone()],
            Some(Value::Seq(items)) => items
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("baseCommand entry must be a string: {v:?}"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            other => return Err(format!("bad baseCommand {other:?}")),
        };

        let mut arguments = Vec::new();
        if let Some(args) = doc.get("arguments") {
            let items = args
                .as_seq()
                .ok_or_else(|| format!("arguments must be a list, got {args:?}"))?;
            for (i, item) in items.iter().enumerate() {
                arguments.push(match item {
                    Value::Map(m) => Argument {
                        value: m.get("valueFrom").cloned().unwrap_or(Value::Null),
                        position: m.get("position").and_then(Value::as_int).unwrap_or(0),
                        prefix: m.get("prefix").and_then(Value::as_str).map(str::to_string),
                        separate: m.get("separate").and_then(Value::as_bool).unwrap_or(true),
                    },
                    literal => Argument {
                        value: literal.clone(),
                        position: 0,
                        prefix: None,
                        separate: true,
                    },
                });
                let _ = i;
            }
        }

        let inputs = parse_params(doc.get("inputs"), |id, body| {
            let typ = CwlType::parse(body.get("type").unwrap_or(&Value::Null))
                .map_err(|e| format!("input {id:?}: {e}"))?;
            Ok(InputParam {
                id: id.to_string(),
                typ,
                default: body.get("default").cloned(),
                binding: match body.get("inputBinding") {
                    Some(b) => {
                        Some(InputBinding::parse(b).map_err(|e| format!("input {id:?}: {e}"))?)
                    }
                    None => None,
                },
                doc: body.get("doc").and_then(Value::as_str).map(str::to_string),
                validate: body
                    .get("validate")
                    .and_then(Value::as_str)
                    .map(str::to_string),
            })
        })?;

        let outputs = parse_params(doc.get("outputs"), |id, body| {
            let typ = CwlType::parse(body.get("type").unwrap_or(&Value::Null))
                .map_err(|e| format!("output {id:?}: {e}"))?;
            let glob = body
                .get("outputBinding")
                .and_then(|b| b.get("glob"))
                .and_then(Value::as_str)
                .map(str::to_string);
            Ok(OutputParam {
                id: id.to_string(),
                typ,
                glob,
                doc: body.get("doc").and_then(Value::as_str).map(str::to_string),
            })
        })?;

        Ok(Self {
            id: doc.get("id").and_then(Value::as_str).map(str::to_string),
            cwl_version,
            doc: doc.get("doc").and_then(Value::as_str).map(str::to_string),
            base_command,
            arguments,
            inputs,
            outputs,
            stdout: doc
                .get("stdout")
                .and_then(Value::as_str)
                .map(str::to_string),
            stderr: doc
                .get("stderr")
                .and_then(Value::as_str)
                .map(str::to_string),
            requirements: {
                let mut r = Requirements::parse(doc.get("requirements").unwrap_or(&Value::Null))?;
                if let Some(hints) = doc.get("hints") {
                    let h = Requirements::parse(hints)?;
                    r.merge_from(&h);
                }
                r
            },
        })
    }

    /// Look up an input parameter by id.
    pub fn input(&self, id: &str) -> Option<&InputParam> {
        self.inputs.iter().find(|p| p.id == id)
    }

    /// Look up an output parameter by id.
    pub fn output(&self, id: &str) -> Option<&OutputParam> {
        self.outputs.iter().find(|p| p.id == id)
    }
}

/// Parse a CWL parameter section, which may be a map (`id: {..}` /
/// `id: type-string`) or a list of `{id: ..., ...}` maps.
pub(crate) fn parse_params<T>(
    section: Option<&Value>,
    mut build: impl FnMut(&str, &Value) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let Some(section) = section else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    match section {
        Value::Null => {}
        Value::Map(m) => {
            for (id, body) in m.iter() {
                // Shorthand: `id: string` means `id: {type: string}`.
                let normalized;
                let body = if matches!(body, Value::Str(_)) {
                    normalized = yamlite::vmap! {"type" => body.clone()};
                    &normalized
                } else {
                    body
                };
                out.push(build(id, body)?);
            }
        }
        Value::Seq(items) => {
            for item in items {
                let id = item
                    .get("id")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("parameter entry missing id: {item:?}"))?;
                out.push(build(id, item)?);
            }
        }
        other => {
            return Err(format!(
                "parameter section must be map or list, got {other:?}"
            ))
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yamlite::parse_str;

    /// The paper's Listing 1: the echo tool.
    pub(crate) const ECHO_CWL: &str = r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message:
    type: string
    default: "Hello World"
    inputBinding:
      position: 1
outputs:
  output:
    type: stdout
stdout: hello.txt
"#;

    #[test]
    fn parse_listing1_echo() {
        let doc = parse_str(ECHO_CWL).unwrap();
        let tool = CommandLineTool::parse(&doc).unwrap();
        assert_eq!(tool.cwl_version, "v1.2");
        assert_eq!(tool.base_command, vec!["echo"]);
        assert_eq!(tool.inputs.len(), 1);
        let msg = &tool.inputs[0];
        assert_eq!(msg.id, "message");
        assert_eq!(msg.typ, CwlType::Str);
        assert_eq!(msg.default, Some(Value::str("Hello World")));
        assert_eq!(msg.binding.as_ref().unwrap().position, 1);
        assert_eq!(tool.outputs[0].typ, CwlType::Stdout);
        assert_eq!(tool.stdout.as_deref(), Some("hello.txt"));
    }

    #[test]
    fn parse_multiword_base_command_and_prefixes() {
        let doc = parse_str(
            r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: [imgtool, resize]
inputs:
  input_image:
    type: File
    inputBinding:
      position: 1
  size:
    type: int
    inputBinding:
      position: 3
      prefix: --size
  output_image:
    type: string
    inputBinding:
      position: 2
outputs:
  resized:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
"#,
        )
        .unwrap();
        let tool = CommandLineTool::parse(&doc).unwrap();
        assert_eq!(tool.base_command, vec!["imgtool", "resize"]);
        assert_eq!(
            tool.input("size")
                .unwrap()
                .binding
                .as_ref()
                .unwrap()
                .prefix
                .as_deref(),
            Some("--size")
        );
        assert_eq!(
            tool.output("resized").unwrap().glob.as_deref(),
            Some("$(inputs.output_image)")
        );
    }

    #[test]
    fn parse_list_style_params() {
        let doc = parse_str(
            r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: cat
inputs:
  - id: data
    type: File
    inputBinding: {position: 1}
outputs:
  - id: out
    type: stdout
"#,
        )
        .unwrap();
        let tool = CommandLineTool::parse(&doc).unwrap();
        assert_eq!(tool.inputs[0].id, "data");
        assert_eq!(tool.outputs[0].id, "out");
    }

    #[test]
    fn parse_type_shorthand() {
        let doc = parse_str(
            "cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: x\ninputs:\n  n: int\noutputs: {}\n",
        )
        .unwrap();
        let tool = CommandLineTool::parse(&doc).unwrap();
        assert_eq!(tool.inputs[0].typ, CwlType::Int);
        assert!(tool.inputs[0].binding.is_none());
    }

    #[test]
    fn parse_arguments_literal_and_bound() {
        let doc = parse_str(
            r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: tar
arguments:
  - -czf
  - position: 5
    prefix: --file
    valueFrom: $(inputs.name)
inputs: {}
outputs: {}
"#,
        )
        .unwrap();
        let tool = CommandLineTool::parse(&doc).unwrap();
        assert_eq!(tool.arguments.len(), 2);
        assert_eq!(tool.arguments[0].value, Value::str("-czf"));
        assert_eq!(tool.arguments[1].position, 5);
        assert_eq!(tool.arguments[1].prefix.as_deref(), Some("--file"));
    }

    #[test]
    fn parse_validate_extension() {
        let doc = parse_str(
            r#"
cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InlinePythonRequirement
    expressionLib: |
      def valid_file(file, ext):
          if not file.lower().endswith(ext):
              raise Exception(f"Invalid file. Expected '{ext}'")
baseCommand: cat
inputs:
  data_file:
    type: File
    validate: |
      f"{valid_file($(inputs.data_file.basename), '.csv')}"
    inputBinding:
      position: 1
outputs:
  validated_output:
    type: stdout
"#,
        )
        .unwrap();
        let tool = CommandLineTool::parse(&doc).unwrap();
        assert!(tool.requirements.inline_python);
        let v = tool.input("data_file").unwrap().validate.as_ref().unwrap();
        assert!(v.contains("valid_file"));
    }

    #[test]
    fn wrong_class_rejected() {
        let doc = parse_str("class: Workflow\n").unwrap();
        assert!(CommandLineTool::parse(&doc).is_err());
    }

    #[test]
    fn missing_param_id_rejected() {
        let doc = parse_str(
            "cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: x\ninputs:\n  - type: int\noutputs: {}\n",
        )
        .unwrap();
        assert!(CommandLineTool::parse(&doc).is_err());
    }
}
