//! CWL `requirements`/`hints` parsing — including the paper's
//! `InlinePythonRequirement` extension (§V).

use yamlite::Value;

/// A `ResourceRequirement` subset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResourceRequirement {
    pub cores_min: Option<i64>,
    pub ram_min: Option<i64>,
    pub cores_max: Option<i64>,
    pub ram_max: Option<i64>,
}

/// One `InitialWorkDirRequirement` listing entry. The runner does not
/// materialize these (the class stays on the ignored list, W105), but the
/// effect analysis reads them: a `writable: true` entry referencing a
/// staged input is a shared-object mutation hazard, and literal entry
/// names join the step's static write-set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkdirEntry {
    /// `entryname:` — the file name created in the working directory.
    pub entryname: Option<String>,
    /// `entry:` — the content (a literal or an expression like
    /// `$(inputs.x)`).
    pub entry: Option<String>,
    /// `writable: true` requests an in-place mutable copy.
    pub writable: bool,
}

/// Parsed requirements of a tool or workflow.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Requirements {
    /// `InlineJavascriptRequirement` present; carries any `expressionLib`
    /// source blocks.
    pub inline_javascript: bool,
    /// JS expression library sources.
    pub js_expression_lib: Vec<String>,
    /// The paper's `InlinePythonRequirement`; carries `expressionLib`
    /// Python source blocks.
    pub inline_python: bool,
    /// Python expression library sources.
    pub py_expression_lib: Vec<String>,
    /// `EnvVarRequirement` entries.
    pub env_vars: Vec<(String, String)>,
    /// `ResourceRequirement`.
    pub resources: Option<ResourceRequirement>,
    /// `StepInputExpressionRequirement` (allows `valueFrom` on step inputs).
    pub step_input_expression: bool,
    /// `ScatterFeatureRequirement`.
    pub scatter: bool,
    /// `SubworkflowFeatureRequirement`.
    pub subworkflow: bool,
    /// `InitialWorkDirRequirement` listing entries (parsed for the effect
    /// analysis even though the class itself is on the ignored list).
    pub initial_workdir: Vec<WorkdirEntry>,
    /// Requirement classes we recognized but deliberately ignore
    /// (e.g. DockerRequirement — containers are out of scope; recorded so
    /// validation can warn).
    pub ignored: Vec<String>,
    /// Requirement classes we did not recognize at all.
    pub unknown: Vec<String>,
}

impl Requirements {
    /// Parse the `requirements` (or `hints`) section: either a sequence of
    /// `{class: ...}` maps or a map keyed by class name.
    pub fn parse(v: &Value) -> Result<Self, String> {
        let mut reqs = Requirements::default();
        match v {
            Value::Null => {}
            Value::Seq(items) => {
                for item in items {
                    let class = item
                        .get("class")
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("requirement entry missing class: {item:?}"))?;
                    reqs.apply(class, item)?;
                }
            }
            Value::Map(m) => {
                for (class, body) in m.iter() {
                    reqs.apply(class, body)?;
                }
            }
            other => return Err(format!("requirements must be a list or map, got {other:?}")),
        }
        Ok(reqs)
    }

    fn apply(&mut self, class: &str, body: &Value) -> Result<(), String> {
        match class {
            "InlineJavascriptRequirement" => {
                self.inline_javascript = true;
                self.js_expression_lib.extend(expression_lib(body));
            }
            "InlinePythonRequirement" => {
                self.inline_python = true;
                self.py_expression_lib.extend(expression_lib(body));
            }
            "EnvVarRequirement" => {
                let def = body.get("envDef").unwrap_or(&Value::Null);
                match def {
                    Value::Map(m) => {
                        for (k, v) in m.iter() {
                            self.env_vars.push((k.to_string(), v.to_display_string()));
                        }
                    }
                    Value::Seq(items) => {
                        for item in items {
                            let name = item
                                .get("envName")
                                .and_then(Value::as_str)
                                .ok_or("envDef entry missing envName")?;
                            let value = item.get("envValue").cloned().unwrap_or_default();
                            self.env_vars
                                .push((name.to_string(), value.to_display_string()));
                        }
                    }
                    Value::Null => return Err("EnvVarRequirement missing envDef".to_string()),
                    other => return Err(format!("bad envDef {other:?}")),
                }
            }
            "ResourceRequirement" => {
                self.resources = Some(ResourceRequirement {
                    cores_min: body.get("coresMin").and_then(Value::as_int),
                    ram_min: body.get("ramMin").and_then(Value::as_int),
                    cores_max: body.get("coresMax").and_then(Value::as_int),
                    ram_max: body.get("ramMax").and_then(Value::as_int),
                });
            }
            "StepInputExpressionRequirement" => self.step_input_expression = true,
            "ScatterFeatureRequirement" => self.scatter = true,
            "SubworkflowFeatureRequirement" => self.subworkflow = true,
            "InitialWorkDirRequirement" => {
                // Not materialized by the runner (W105), but the listing
                // feeds the effect analysis.
                if let Some(Value::Seq(items)) = body.get("listing") {
                    for item in items {
                        self.initial_workdir.push(WorkdirEntry {
                            entryname: item
                                .get("entryname")
                                .and_then(Value::as_str)
                                .map(str::to_string),
                            entry: item.get("entry").map(Value::to_display_string),
                            writable: item
                                .get("writable")
                                .and_then(Value::as_bool)
                                .unwrap_or(false),
                        });
                    }
                }
                self.ignored.push(class.to_string());
            }
            "DockerRequirement"
            | "ShellCommandRequirement"
            | "SoftwareRequirement"
            | "NetworkAccess"
            | "WorkReuse" => {
                self.ignored.push(class.to_string());
            }
            other => self.unknown.push(other.to_string()),
        }
        Ok(())
    }

    /// Merge another requirement set in (workflow-level requirements apply
    /// to steps unless overridden).
    pub fn merge_from(&mut self, outer: &Requirements) {
        self.inline_javascript |= outer.inline_javascript;
        self.inline_python |= outer.inline_python;
        for lib in &outer.js_expression_lib {
            if !self.js_expression_lib.contains(lib) {
                self.js_expression_lib.push(lib.clone());
            }
        }
        for lib in &outer.py_expression_lib {
            if !self.py_expression_lib.contains(lib) {
                self.py_expression_lib.push(lib.clone());
            }
        }
        self.step_input_expression |= outer.step_input_expression;
        self.scatter |= outer.scatter;
        self.subworkflow |= outer.subworkflow;
    }
}

/// Pull `expressionLib` entries out of a requirement body: a single source
/// string or a list of source strings.
fn expression_lib(body: &Value) -> Vec<String> {
    match body.get("expressionLib") {
        Some(Value::Str(s)) => vec![s.clone()],
        Some(Value::Seq(items)) => items
            .iter()
            .filter_map(Value::as_str)
            .map(str::to_string)
            .collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yamlite::parse_str;

    #[test]
    fn parse_list_form() {
        let doc = parse_str(
            "requirements:\n  - class: StepInputExpressionRequirement\n  - class: ScatterFeatureRequirement\n",
        )
        .unwrap();
        let r = Requirements::parse(&doc["requirements"]).unwrap();
        assert!(r.step_input_expression);
        assert!(r.scatter);
        assert!(!r.inline_javascript);
    }

    #[test]
    fn parse_map_form() {
        let doc = parse_str("requirements:\n  InlineJavascriptRequirement: {}\n").unwrap();
        let r = Requirements::parse(&doc["requirements"]).unwrap();
        assert!(r.inline_javascript);
    }

    #[test]
    fn parse_python_expression_lib() {
        let doc = parse_str(
            "requirements:\n  - class: InlinePythonRequirement\n    expressionLib: |\n      def f(x):\n          return x\n",
        )
        .unwrap();
        let r = Requirements::parse(&doc["requirements"]).unwrap();
        assert!(r.inline_python);
        assert_eq!(r.py_expression_lib.len(), 1);
        assert!(r.py_expression_lib[0].contains("def f(x):"));
    }

    #[test]
    fn parse_env_vars_both_shapes() {
        let doc = parse_str(
            "requirements:\n  - class: EnvVarRequirement\n    envDef:\n      LC_ALL: C\n      THREADS: 4\n",
        )
        .unwrap();
        let r = Requirements::parse(&doc["requirements"]).unwrap();
        assert!(r
            .env_vars
            .contains(&("LC_ALL".to_string(), "C".to_string())));
        assert!(r
            .env_vars
            .contains(&("THREADS".to_string(), "4".to_string())));

        let doc = parse_str(
            "requirements:\n  - class: EnvVarRequirement\n    envDef:\n      - envName: A\n        envValue: b\n",
        )
        .unwrap();
        let r = Requirements::parse(&doc["requirements"]).unwrap();
        assert_eq!(r.env_vars, vec![("A".to_string(), "b".to_string())]);
    }

    #[test]
    fn parse_resources() {
        let doc = parse_str(
            "requirements:\n  - class: ResourceRequirement\n    coresMin: 4\n    ramMin: 2048\n",
        )
        .unwrap();
        let r = Requirements::parse(&doc["requirements"]).unwrap();
        let res = r.resources.unwrap();
        assert_eq!(res.cores_min, Some(4));
        assert_eq!(res.ram_min, Some(2048));
    }

    #[test]
    fn parse_resource_bounds() {
        let doc = parse_str(
            "requirements:\n  - class: ResourceRequirement\n    coresMin: 4\n    coresMax: 8\n    ramMin: 1024\n    ramMax: 2048\n",
        )
        .unwrap();
        let res = Requirements::parse(&doc["requirements"])
            .unwrap()
            .resources
            .unwrap();
        assert_eq!(res.cores_max, Some(8));
        assert_eq!(res.ram_max, Some(2048));
    }

    #[test]
    fn parse_initial_workdir_listing() {
        let doc = parse_str(
            "requirements:\n  - class: InitialWorkDirRequirement\n    listing:\n      - entryname: settings.json\n        entry: '{}'\n      - entry: $(inputs.image)\n        writable: true\n",
        )
        .unwrap();
        let r = Requirements::parse(&doc["requirements"]).unwrap();
        // The class is still on the ignored list (the runner does not
        // materialize listings) ...
        assert_eq!(r.ignored, vec!["InitialWorkDirRequirement"]);
        // ... but the listing is captured for the effect analysis.
        assert_eq!(r.initial_workdir.len(), 2);
        assert_eq!(
            r.initial_workdir[0].entryname.as_deref(),
            Some("settings.json")
        );
        assert!(!r.initial_workdir[0].writable);
        assert_eq!(
            r.initial_workdir[1].entry.as_deref(),
            Some("$(inputs.image)")
        );
        assert!(r.initial_workdir[1].writable);
    }

    #[test]
    fn docker_is_ignored_not_unknown() {
        let doc = parse_str(
            "requirements:\n  - class: DockerRequirement\n    dockerPull: ubuntu\n  - class: MadeUpRequirement\n",
        )
        .unwrap();
        let r = Requirements::parse(&doc["requirements"]).unwrap();
        assert_eq!(r.ignored, vec!["DockerRequirement"]);
        assert_eq!(r.unknown, vec!["MadeUpRequirement"]);
    }

    #[test]
    fn merge_propagates_flags_and_libs() {
        let mut inner = Requirements::default();
        let outer = Requirements {
            inline_python: true,
            py_expression_lib: vec!["def g(): pass".to_string()],
            scatter: true,
            ..Default::default()
        };
        inner.merge_from(&outer);
        assert!(inner.inline_python);
        assert!(inner.scatter);
        assert_eq!(inner.py_expression_lib.len(), 1);
        // Merging twice does not duplicate libs.
        inner.merge_from(&outer);
        assert_eq!(inner.py_expression_lib.len(), 1);
    }

    #[test]
    fn missing_class_rejected() {
        let doc = parse_str("requirements:\n  - expressionLib: x\n").unwrap();
        assert!(Requirements::parse(&doc["requirements"]).is_err());
    }
}
