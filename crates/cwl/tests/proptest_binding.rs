//! Property tests for the command-line binding algorithm.

use cwl::{build_command, CommandLineTool, CwlType, InputBinding, InputParam};
use expr::JsEngine;
use proptest::prelude::*;
use yamlite::{Map, Value};

/// Build a tool from generated parameters.
fn tool_with(params: Vec<InputParam>) -> CommandLineTool {
    CommandLineTool {
        id: Some("gen".into()),
        cwl_version: "v1.2".into(),
        doc: None,
        base_command: vec!["prog".into()],
        arguments: vec![],
        inputs: params,
        outputs: vec![],
        stdout: None,
        stderr: None,
        requirements: Default::default(),
    }
}

/// A generated (type, value) pair that conforms.
fn typed_value() -> impl Strategy<Value = (CwlType, Value)> {
    prop_oneof![
        any::<i64>().prop_map(|i| (CwlType::Int, Value::Int(i))),
        any::<bool>().prop_map(|b| (CwlType::Boolean, Value::Bool(b))),
        "[a-zA-Z0-9_.@-]{0,16}".prop_map(|s| (CwlType::Str, Value::Str(s))),
        proptest::collection::vec("[a-z0-9]{1,8}", 0..4).prop_map(|xs| {
            (
                CwlType::Array(Box::new(CwlType::Str)),
                Value::Seq(xs.into_iter().map(Value::str).collect()),
            )
        }),
    ]
}

/// One generated bound input: id index, position, prefix?, value.
fn bound_input() -> impl Strategy<Value = (i64, Option<String>, bool, (CwlType, Value))> {
    (
        -5i64..5,
        proptest::option::of("--[a-z]{1,6}"),
        any::<bool>(),
        typed_value(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// build_command never panics and respects position ordering: tokens
    /// from a strictly higher position appear strictly later in argv.
    #[test]
    fn binding_respects_positions(specs in proptest::collection::vec(bound_input(), 1..6)) {
        let mut params = Vec::new();
        let mut provided = Map::new();
        for (i, (position, prefix, separate, (typ, value))) in specs.iter().enumerate() {
            let id = format!("in{i}");
            params.push(InputParam {
                id: id.clone(),
                typ: typ.clone(),
                default: None,
                binding: Some(InputBinding {
                    position: *position,
                    prefix: prefix.clone(),
                    separate: *separate,
                    item_separator: None,
                    value_from: None,
                }),
                doc: None,
                validate: None,
            });
            provided.insert(id, value.clone());
        }
        let tool = tool_with(params.clone());
        let inputs = cwl::input::resolve_inputs(&tool.inputs, &provided).unwrap();
        let cmd = build_command(&tool, &inputs, &JsEngine::in_process()).unwrap();
        prop_assert_eq!(cmd.argv[0].as_str(), "prog");

        // Reconstruct each input's token block and check ordering by
        // position: find first occurrence index of each input's first token.
        let mut firsts: Vec<(i64, usize)> = Vec::new();
        for (i, (position, prefix, sep, (_typ, value))) in specs.iter().enumerate() {
            let first_value = match value {
                Value::Seq(items) => items.first().map(Value::to_display_string),
                other => Some(other.to_display_string()),
            };
            let expect_first: Option<String> = match value {
                Value::Bool(true) => prefix.clone(),
                Value::Bool(false) => None,
                Value::Seq(items) if items.is_empty() => None,
                _ => match (prefix, sep) {
                    // separate=false concatenates prefix and first value.
                    (Some(p), false) => first_value.map(|v| format!("{p}{v}")),
                    (Some(p), true) => Some(p.clone()),
                    (None, _) => first_value,
                },
            };
            let _ = i;
            if let Some(tok) = expect_first {
                // Token may legitimately appear multiple times; positions of
                // *blocks* are still monotone if we take the earliest
                // occurrence not yet consumed. For the property we only
                // check pairwise ordering of strictly different positions
                // using earliest occurrence, which is conservative when
                // tokens are distinct; skip when duplicated.
                let occurrences: Vec<usize> = cmd
                    .argv
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| **t == tok)
                    .map(|(j, _)| j)
                    .collect();
                if occurrences.len() == 1 {
                    firsts.push((*position, occurrences[0]));
                }
            }
        }
        for a in &firsts {
            for b in &firsts {
                if a.0 < b.0 {
                    prop_assert!(
                        a.1 < b.1,
                        "position {} token at argv[{}] not before position {} token at argv[{}]: {:?}",
                        a.0, a.1, b.0, b.1, cmd.argv
                    );
                }
            }
        }
    }

    /// resolve_inputs + build_command never panic on arbitrary provided
    /// values (they may error, never crash).
    #[test]
    fn binding_never_panics(
        specs in proptest::collection::vec(bound_input(), 0..5),
        junk in proptest::collection::vec(("[a-z]{1,6}", any::<i64>()), 0..3),
    ) {
        let mut params = Vec::new();
        let mut provided = Map::new();
        for (i, (position, prefix, separate, (typ, value))) in specs.iter().enumerate() {
            let id = format!("in{i}");
            params.push(InputParam {
                id: id.clone(),
                typ: typ.clone(),
                default: None,
                binding: Some(InputBinding {
                    position: *position,
                    prefix: prefix.clone(),
                    separate: *separate,
                    item_separator: Some(",".into()),
                    value_from: None,
                }),
                doc: None,
                validate: None,
            });
            provided.insert(id, value.clone());
        }
        // Add junk keys: resolve_inputs must reject them gracefully.
        for (k, v) in &junk {
            provided.insert(format!("junk_{k}"), Value::Int(*v));
        }
        let tool = tool_with(params);
        match cwl::input::resolve_inputs(&tool.inputs, &provided) {
            Ok(inputs) => {
                let _ = build_command(&tool, &inputs, &JsEngine::in_process());
            }
            Err(e) => prop_assert!(!junk.is_empty(), "unexpected resolve error: {e}"),
        }
    }

    /// Boolean flags: true emits exactly the prefix once; false emits
    /// nothing.
    #[test]
    fn boolean_flag_semantics(flag in any::<bool>(), prefix in "--[a-z]{1,8}") {
        let tool = tool_with(vec![InputParam {
            id: "flag".into(),
            typ: CwlType::Boolean,
            default: None,
            binding: Some(InputBinding {
                position: 1,
                prefix: Some(prefix.clone()),
                separate: true,
                item_separator: None,
                value_from: None,
            }),
            doc: None,
            validate: None,
        }]);
        let mut provided = Map::new();
        provided.insert("flag", Value::Bool(flag));
        let inputs = cwl::input::resolve_inputs(&tool.inputs, &provided).unwrap();
        let cmd = build_command(&tool, &inputs, &JsEngine::in_process()).unwrap();
        let count = cmd.argv.iter().filter(|t| **t == prefix).count();
        prop_assert_eq!(count, flag as usize);
    }
}
