//! Snapshot-style tests for the `cwl::analyze` static pass: every shipped
//! fixture must be diagnostic-free (even under `--strict`), every file in
//! the broken corpus must produce its expected stable code, and analyzer
//! spans must point at the right line/column. A property test closes the
//! loop: workflows the analyzer passes execute their expressions without
//! syntax errors.

use cwl::analyze::{
    analyze_file, analyze_file_opts, analyze_str, codes, AnalyzeOptions, ExecutorCapacity,
};
use cwl::loader::CwlDocument;
use expr::{interpolate, EvalContext, JsEngine};
use proptest::prelude::*;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
}

#[test]
fn all_fixtures_are_clean_even_under_strict() {
    let mut checked = 0;
    for entry in std::fs::read_dir(fixtures_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("cwl") {
            continue;
        }
        let report = analyze_file(&path);
        assert!(
            report.is_clean(true),
            "{} should be clean:\n{}",
            path.display(),
            report.render_text()
        );
        checked += 1;
    }
    assert!(
        checked >= 13,
        "expected the full fixture set, found {checked}"
    );
}

/// An 8-core single-node capacity, for the capacity-dependent entries.
fn eight_core_node() -> ExecutorCapacity {
    ExecutorCapacity {
        label: "test (1 node(s) x 8 worker(s))".to_string(),
        slots: 8,
        cores_per_node: Some(8),
        ram_per_node_mb: Some(16 * 1024),
    }
}

#[test]
fn broken_corpus_produces_expected_codes() {
    // (file, expected code, executor capacity handed to the analyzer).
    let expected: [(&str, &str, Option<ExecutorCapacity>); 23] = [
        ("bad_link_type.cwl", codes::LINK_TYPE, None),
        ("scatter_nonarray.cwl", codes::SCATTER_NOT_ARRAY, None),
        ("scatter_not_input.cwl", codes::SCATTER_NOT_INPUT, None),
        ("scatter_missing_req.cwl", codes::SCATTER_NEEDS_REQ, None),
        ("cycle.cwl", codes::CYCLE, None),
        ("unknown_source.cwl", codes::UNKNOWN_SOURCE, None),
        ("bad_js_syntax.cwl", codes::JS_SYNTAX, None),
        ("bad_py_syntax.cwl", codes::PY_SYNTAX, None),
        ("unbound_variable.cwl", codes::UNBOUND_VAR, None),
        ("body_missing_req.cwl", codes::BODY_NEEDS_REQ, None),
        (
            "valuefrom_missing_req.cwl",
            codes::VALUE_FROM_NEEDS_REQ,
            None,
        ),
        ("missing_required_input.cwl", codes::UNWIRED_INPUT, None),
        ("bad_out.cwl", codes::BAD_STEP_OUT, None),
        ("linkmerge_bad.cwl", codes::LINK_MERGE, None),
        ("output_type_mismatch.cwl", codes::OUTPUT_TYPE, None),
        ("yaml_error.cwl", codes::YAML_PARSE, None),
        ("dead_step.cwl", codes::DEAD_STEP, None),
        ("optional_coercion.cwl", codes::OPTIONAL_COERCION, None),
        ("effect_collision.cwl", codes::EFFECT_COLLISION, None),
        ("scatter_effect.cwl", codes::SCATTER_EFFECT, None),
        ("writable_input.cwl", codes::WRITABLE_INPUT, None),
        ("unschedulable.cwl", codes::UNSCHEDULABLE, None),
        // W111 only fires against a capacity: coresMin 6 vs an 8-core node.
        (
            "near_capacity.cwl",
            codes::NEAR_CAPACITY,
            Some(eight_core_node()),
        ),
    ];
    for (file, code, capacity) in expected {
        let path = fixtures_dir().join("broken").join(file);
        let opts = AnalyzeOptions { capacity };
        let report = analyze_file_opts(&path, &opts);
        assert!(
            report.has_code(code),
            "{file} should produce {code}:\n{}",
            report.render_text()
        );
        assert!(!report.is_clean(true), "{file} must fail under strict");
        // The stable code must survive into the JSON rendering.
        let json = report.to_json();
        assert!(json.contains(&format!("\"code\":\"{code}\"")), "{json}");
        // Every diagnostic of a parsed file carries a source position.
        for d in &report.diags {
            assert!(d.position.is_some(), "{file}: diagnostic without span: {d}");
        }
    }
}

#[test]
fn broken_corpus_is_complete() {
    // Every corpus file is covered by the expectation table above.
    let count = std::fs::read_dir(fixtures_dir().join("broken"))
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .and_then(|x| x.to_str())
                == Some("cwl")
        })
        .count();
    assert_eq!(count, 23);
}

#[test]
fn ordered_shared_writers_are_not_flagged() {
    // A chain a -> b where both write ../log.txt: the dataflow edge orders
    // the writes, so the effect pass must stay silent. Remove the edge and
    // the same pair becomes E030.
    let chained = shared_writer_workflow(&[vec![], vec![0]]);
    let report = analyze_str(&chained, None);
    assert!(
        !report.has_code(codes::EFFECT_COLLISION),
        "ordered writers flagged:\n{}",
        report.render_text()
    );
    let parallel = shared_writer_workflow(&[vec![], vec![]]);
    let report = analyze_str(&parallel, None);
    assert!(
        report.has_code(codes::EFFECT_COLLISION),
        "unordered writers missed:\n{}",
        report.render_text()
    );

    // Diamond shape: s0 -> s1, s0 -> s2, {s1, s2} -> s3. The only
    // unordered pair is (s1, s2).
    let diamond = shared_writer_workflow(&[vec![], vec![0], vec![0], vec![1, 2]]);
    let report = analyze_str(&diamond, None);
    let collisions: Vec<_> = report
        .diags
        .iter()
        .filter(|d| d.code == codes::EFFECT_COLLISION)
        .collect();
    assert_eq!(collisions.len(), 1, "{}", report.render_text());
    assert!(
        collisions[0].message.contains("\"s1\""),
        "{}",
        collisions[0]
    );
    assert!(
        collisions[0].message.contains("\"s2\""),
        "{}",
        collisions[0]
    );
}

/// Build a workflow of `deps.len()` steps, step `i` depending on the steps
/// in `deps[i]` (indices < i), every step writing `../log.txt` via stdout.
fn shared_writer_workflow(deps: &[Vec<usize>]) -> String {
    let mut doc = String::from("cwlVersion: v1.2\nclass: Workflow\ninputs:\n  x: string\n");
    doc.push_str("outputs:\n");
    for (i, _) in deps.iter().enumerate() {
        doc.push_str(&format!(
            "  out{i}:\n    type: File\n    outputSource: s{i}/o\n"
        ));
    }
    doc.push_str("steps:\n");
    for (i, ds) in deps.iter().enumerate() {
        doc.push_str(&format!(
            "  s{i}:\n    run:\n      class: CommandLineTool\n"
        ));
        doc.push_str("      baseCommand: echo\n      stdout: ../log.txt\n");
        doc.push_str("      inputs:\n        m: string\n");
        for d in ds {
            doc.push_str(&format!("        d{d}: File\n"));
        }
        doc.push_str("      outputs:\n        o:\n          type: stdout\n");
        doc.push_str("    in:\n      m: x\n");
        for d in ds {
            doc.push_str(&format!("      d{d}: s{d}/o\n"));
        }
        doc.push_str("    out: [o]\n");
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness *and* completeness of the effect pass on random DAGs
    /// whose steps all write the same shared path: E030 fires iff some
    /// pair of steps has no ordering edge between them.
    #[test]
    fn effect_collisions_match_reachability(
        edges in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 5), 2..6)
    ) {
        // deps[i] = sorted indices j < i with an edge j -> i.
        let n = edges.len();
        let deps: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..i).filter(|&j| edges[i][j]).collect())
            .collect();

        // Ground truth: transitive reachability over the chosen edges.
        let mut reach = vec![vec![false; n]; n];
        for (i, ds) in deps.iter().enumerate() {
            for &j in ds {
                reach[j][i] = true;
                let ancestors: Vec<usize> = (0..n).filter(|&k| reach[k][j]).collect();
                for k in ancestors {
                    reach[k][i] = true;
                }
            }
        }
        let unordered_pair_exists = (0..n).any(|a| {
            (a + 1..n).any(|b| !reach[a][b] && !reach[b][a])
        });

        let doc = shared_writer_workflow(&deps);
        let report = analyze_str(&doc, None);
        prop_assert_eq!(
            report.has_code(codes::EFFECT_COLLISION),
            unordered_pair_exists,
            "deps {:?}:\n{}",
            deps,
            report.render_text()
        );
    }
}

#[test]
fn scatter_images_is_clean_with_correct_spans() {
    let path = fixtures_dir().join("scatter_images.cwl");
    let text = std::fs::read_to_string(&path).unwrap();
    let report = analyze_str(&text, Some(&path));
    assert!(report.is_clean(true), "{}", report.render_text());

    // The span side-table places the step machinery where the file has it.
    let (_, spans) = yamlite::parse_str_spanned(&text).unwrap();
    let pos = |p: &str| spans.get(p).unwrap_or_else(|| panic!("no span for {p}"));
    assert_eq!((pos("steps").line, pos("steps").col), (25, 1));
    assert_eq!(
        (pos("steps.per_image").line, pos("steps.per_image").col),
        (26, 3)
    );
    let scatter = pos("steps.per_image.scatter");
    assert_eq!((scatter.line, scatter.col), (28, 5));

    // Break the scatter dimensionality and the diagnostic lands on that
    // exact span.
    let broken = text.replace("scatter: input_image", "scatter: size");
    let report = analyze_str(&broken, Some(&path));
    let diag = report
        .diags
        .iter()
        .find(|d| d.code == codes::SCATTER_NOT_ARRAY)
        .expect("scattering over an int input must be E013");
    assert_eq!(diag.path, "steps.per_image.scatter");
    let p = diag.position.expect("span-carrying diagnostic");
    assert_eq!((p.line, p.col), (28, 5));
}

#[test]
fn config_files_are_not_mistaken_for_cwl() {
    // Runner configs have no `class:` key; the analyzer is only invoked on
    // CWL documents, but analyze_str on one must at least not panic and
    // must flag it as not fitting the CWL model.
    let text = "executor:\n  kind: thread-pool\n  workers: 2\n";
    let report = analyze_str(text, None);
    assert!(report.has_code(codes::CWL_MODEL));
}

// ------------------------------------------------------------ property test

/// Components a generated workflow draws from. Some combinations are
/// analyzer-clean, some are broken; the property only constrains the clean
/// ones.
fn value_from_pool() -> impl Strategy<Value = Option<&'static str>> {
    prop_oneof![
        Just(None),
        Just(Some("$(self)")),
        Just(Some("$(inputs.x)")),
        Just(Some("prefix-$(inputs.x)")),
        Just(Some("${ return inputs.x; }")),
        Just(Some("$(nope)")),
        Just(Some("$(inputs.x +)")),
        Just(Some("${ return inputs.x")),
    ]
}

fn build_workflow(
    vf: Option<&str>,
    step_expr_req: bool,
    js_req: bool,
    scatter_req: bool,
    input_type: &str,
    do_scatter: bool,
) -> String {
    let mut reqs = String::new();
    if step_expr_req {
        reqs.push_str("  - class: StepInputExpressionRequirement\n");
    }
    if js_req {
        reqs.push_str("  - class: InlineJavascriptRequirement\n");
    }
    if scatter_req {
        reqs.push_str("  - class: ScatterFeatureRequirement\n");
    }
    let requirements = if reqs.is_empty() {
        String::new()
    } else {
        format!("requirements:\n{reqs}")
    };
    let mut doc = String::from("cwlVersion: v1.2\nclass: Workflow\n");
    doc.push_str(&requirements);
    doc.push_str(&format!("inputs:\n  x: {input_type}\noutputs: {{}}\n"));
    doc.push_str("steps:\n  s:\n    run:\n      class: CommandLineTool\n");
    doc.push_str("      baseCommand: echo\n      inputs:\n        y: Any\n");
    doc.push_str("      outputs: {}\n");
    if do_scatter {
        doc.push_str("    scatter: y\n");
    }
    doc.push_str("    in:\n      y:\n        source: x\n");
    if let Some(e) = vf {
        doc.push_str(&format!(
            "        valueFrom: \"{}\"\n",
            e.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
    doc.push_str("    out: []\n");
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness of the pre-run gate: any generated workflow the analyzer
    /// passes loads, topologically orders, and evaluates its expressions
    /// without syntax errors.
    #[test]
    fn analyzer_clean_workflows_execute_their_expressions(
        vf in value_from_pool(),
        step_expr_req in any::<bool>(),
        js_req in any::<bool>(),
        scatter_req in any::<bool>(),
        input_type in prop_oneof![Just("string"), Just("int"), Just("string[]")],
        do_scatter in any::<bool>(),
    ) {
        let doc = build_workflow(vf, step_expr_req, js_req, scatter_req, input_type, do_scatter);
        let report = analyze_str(&doc, None);
        if !report.is_clean(false) {
            return Ok(()); // the gate rejects it before execution
        }

        let parsed = yamlite::parse_str(&doc).expect("clean doc reparses");
        let wf = match cwl::load_document(&parsed).expect("clean doc loads") {
            CwlDocument::Workflow(w) => w,
            _ => unreachable!("generator emits workflows"),
        };
        wf.topo_order().expect("clean workflow orders");

        // E013 soundness: a surviving scatter always has an array source.
        let step = &wf.steps[0];
        if !step.scatter.is_empty() {
            prop_assert_eq!(input_type, "string[]");
        }

        // Expression soundness: every valueFrom the analyzer passed
        // evaluates without a syntax error under the engine that runs it.
        let engine = JsEngine::in_process();
        let sample = match input_type {
            "int" => yamlite::Value::Int(7),
            "string" => yamlite::Value::str("hello"),
            _ => yamlite::Value::Seq(vec![yamlite::Value::str("a"), yamlite::Value::str("b")]),
        };
        for si in &step.inputs {
            if let Some(vf) = &si.value_from {
                let mut ctx = EvalContext::from_inputs(
                    yamlite::vmap! {"x" => sample.clone()},
                );
                ctx.self_ = sample.clone();
                interpolate(vf, &engine, &ctx)
                    .unwrap_or_else(|e| panic!("analyzer-clean valueFrom {vf:?} failed: {e}"));
            }
        }
    }
}
