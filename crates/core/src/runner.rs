//! The `parsl-cwl` runner library (§III-B): execute a CWL file on Parsl
//! given a YAML configuration and inputs from a file and/or command-line
//! flags.
//!
//! ```text
//! $ parsl-cwl config.yml echo.cwl inputs.yml
//! $ parsl-cwl config.yml echo.cwl --message='Hello'
//! ```

use crate::checkpoint;
use crate::config::RunnerConfig;
use crate::cwlapp::{CwlApp, CwlAppOptions};
use crate::wfrunner::ParslWorkflowRunner;
use cwl::loader::{load_file, CwlDocument};
use parsl::DataFlowKernel;
use std::path::Path;
use yamlite::{Map, Value};

/// The outcome of a CLI run.
pub struct CliOutcome {
    /// The collected output object.
    pub outputs: Map,
    /// Where working files were written.
    pub workdir: std::path::PathBuf,
    /// Number of Parsl tasks executed.
    pub tasks: usize,
    /// Where the trace was exported, when monitoring was configured with
    /// an export path.
    pub trace: Option<std::path::PathBuf>,
    /// Checkpoint activity, when a journal was configured.
    pub ckpt: Option<CkptReport>,
}

/// End-of-run checkpoint accounting for the CLI and tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CkptReport {
    /// The journal file in use.
    pub journal: std::path::PathBuf,
    /// Tasks satisfied from the journal without re-executing.
    pub replayed: usize,
    /// Completions appended this run.
    pub appended: usize,
    /// Journal records rejected on resume (stale hash, missing outputs,
    /// unparseable results).
    pub invalidated: usize,
    /// A torn tail was detected and truncated on resume.
    pub torn: bool,
    /// The whole journal was set aside as stale (workflow/inputs changed).
    pub stale: bool,
}

/// Parse `--key=value` command-line input overrides. Values go through YAML
/// scalar resolution so `--size=1024` is an int and `--sepia=true` a bool;
/// `--files=[a, b]` style flow values also work.
pub fn parse_overrides(args: &[String]) -> Result<Map, String> {
    let mut m = Map::new();
    for arg in args {
        let stripped = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --key=value, got {arg:?}"))?;
        let (key, value) = stripped
            .split_once('=')
            .ok_or_else(|| format!("expected --key=value, got {arg:?}"))?;
        let parsed = yamlite::parse_str(value).map_err(|e| format!("value of {key:?}: {e}"))?;
        m.insert(key.to_string(), parsed);
    }
    Ok(m)
}

/// Load inputs from an optional YAML file plus `--key=value` overrides
/// (overrides win).
pub fn load_inputs(inputs_file: Option<&Path>, overrides: &Map) -> Result<Map, String> {
    let mut inputs = match inputs_file {
        None => Map::new(),
        Some(path) => match yamlite::parse_file(path).map_err(|e| e.to_string())? {
            Value::Map(m) => m,
            Value::Null => Map::new(),
            other => {
                return Err(format!(
                    "inputs file must be a mapping, got {}",
                    other.kind()
                ))
            }
        },
    };
    for (k, v) in overrides.iter() {
        inputs.insert(k.to_string(), v.clone());
    }
    Ok(inputs)
}

/// Execute a CWL file (CommandLineTool or, as an extension, a Workflow) on
/// Parsl with the given configuration and inputs.
pub fn run_tool_cli(
    config: RunnerConfig,
    cwl_path: &Path,
    inputs: &Map,
) -> Result<CliOutcome, String> {
    run_tool_cli_resumable(config, cwl_path, inputs, None)
}

/// [`run_tool_cli`], optionally resuming a crashed run's checkpoint
/// journal (`--resume <run-dir>`). The resumed run must use the same
/// config (workdir in particular): journaled results reference files
/// staged under the crashed run's directories.
pub fn run_tool_cli_resumable(
    mut config: RunnerConfig,
    cwl_path: &Path,
    inputs: &Map,
    resume: Option<&Path>,
) -> Result<CliOutcome, String> {
    // The cwl-check pre-run gate: refuse to start a run the static
    // analyzer can already prove broken (configurable via `check:`).
    // The configured executor's capacity feeds the feasibility pass, so a
    // ResourceRequirement no node can satisfy fails here, not mid-run.
    if config.pre_run_check {
        let opts = cwl::analyze::AnalyzeOptions {
            capacity: Some(crate::lint::executor_capacity(&config.parsl)),
        };
        let report = cwl::analyze::analyze_file_opts(cwl_path, &opts);
        if !report.is_clean(config.strict_check) {
            return Err(format!(
                "static analysis found {} error(s), {} warning(s):\n{}",
                report.error_count(),
                report.warning_count(),
                report.render_text().trim_end()
            ));
        }
    }

    let doc = load_file(cwl_path)?;
    let trace = if config.parsl.monitoring.enabled {
        config.parsl.monitoring.export_path.clone()
    } else {
        None
    };

    // Bind the checkpoint journal before the kernel exists so the very
    // first completion is journaled. The run hash walks every referenced
    // CWL file — only worth computing when a journal is in play.
    let prepared = if config.checkpoint.sync_mode().is_some() || resume.is_some() {
        let hash = checkpoint::run_hash(cwl_path, inputs)?;
        let label = cwl_path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        checkpoint::prepare(&config.checkpoint, &config.workdir, resume, hash, &label)?
    } else {
        None
    };
    if let Some(p) = &prepared {
        config.parsl = config.parsl.with_checkpoint(p.journal.clone());
    }

    let dfk = DataFlowKernel::try_new(config.parsl)?;
    let mut invalidated = 0usize;
    if let Some(p) = &prepared {
        let (_seeded, unparseable) = dfk.seed_checkpoint(&p.seed);
        invalidated = p.invalidated + unparseable;
        if invalidated > 0 {
            dfk.observability()
                .counter(obs::names::CKPT_INVALIDATED)
                .add(invalidated as u64);
        }
    }
    let mut options = CwlAppOptions::in_dir(&config.workdir);
    if config.builtin_tools {
        options = options.with_builtin_tools();
    }
    // One data plane for the whole run: every task stages through the
    // same content store, and the run publishes one set of counters.
    let stager = config.staging.build(&config.workdir)?;
    options = options
        .with_staging(config.staging.clone())
        .with_stager(stager.clone());
    prestage_inputs(&stager, inputs, config.staging.pool);

    let outputs = match doc {
        CwlDocument::Tool(tool) => {
            let app = CwlApp::from_tool(
                &dfk,
                tool,
                cwl_path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned()),
                options,
            )?;
            let mut invocation = app.call();
            for (k, v) in inputs.iter() {
                invocation = invocation.arg(k.to_string(), v.clone());
            }
            let run = invocation.submit()?;
            match run.future.result() {
                Ok(Value::Map(m)) => m,
                Ok(other) => return Err(format!("unexpected tool result {other:?}")),
                Err(e) => return Err(e.to_string()),
            }
        }
        CwlDocument::Workflow(_) => {
            // Paper future work, implemented here: run full workflows.
            let runner = ParslWorkflowRunner::new(&dfk, options);
            runner.run(cwl_path, inputs)?
        }
    };

    let tasks = dfk.monitoring().summary().completed;
    // Before shutdown: export (inside shutdown) folds metrics into the
    // trace, so the stage counters must land first.
    cwlexec::publish_stage_stats(dfk.observability(), stager.stats());
    dfk.shutdown();
    let ckpt = prepared.map(|p| {
        let stats = dfk.checkpoint_stats().unwrap_or_default();
        CkptReport {
            journal: p.journal.path().to_path_buf(),
            replayed: stats.replayed,
            appended: stats.appended,
            invalidated,
            torn: p.torn,
            stale: p.stale,
        }
    });
    Ok(CliOutcome {
        outputs,
        workdir: config.workdir,
        tasks,
        trace,
        ckpt,
    })
}

/// Hash the run's root `class:File` inputs into the content store up
/// front, in parallel — tasks consuming them then stage by index hit.
/// Best-effort: unreadable paths surface later as per-task errors.
fn prestage_inputs(stager: &datastore::Stager, inputs: &Map, pool: usize) {
    let mut paths = Vec::new();
    for (_, v) in inputs.iter() {
        collect_file_paths(v, &mut paths);
    }
    paths.sort();
    paths.dedup();
    if paths.is_empty() {
        return;
    }
    let _ = stager.store().ingest_parallel(&paths, pool.max(1));
}

/// Collect `class: File` paths from an input value, recursively.
fn collect_file_paths(value: &Value, out: &mut Vec<std::path::PathBuf>) {
    match value {
        Value::Map(m) => {
            if m.get("class").and_then(|c| c.as_str()) == Some("File") {
                if let Some(p) = m.get("path").or_else(|| m.get("location")) {
                    if let Some(p) = p.as_str() {
                        out.push(std::path::PathBuf::from(p));
                    }
                }
            }
            for (_, v) in m.iter() {
                collect_file_paths(v, out);
            }
        }
        Value::Seq(s) => {
            for v in s {
                collect_file_paths(v, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::load_config_value;

    fn fixtures() -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
    }

    fn workdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("parsl-cwl-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn override_parsing_resolves_scalars() {
        let m = parse_overrides(&[
            "--message=Hello".to_string(),
            "--size=1024".to_string(),
            "--sepia=true".to_string(),
            "--xs=[1, 2]".to_string(),
        ])
        .unwrap();
        assert_eq!(m.get("message").unwrap(), &Value::str("Hello"));
        assert_eq!(m.get("size").unwrap(), &Value::Int(1024));
        assert_eq!(m.get("sepia").unwrap(), &Value::Bool(true));
        assert_eq!(m.get("xs").unwrap(), &yamlite::vseq![1i64, 2i64]);
        assert!(parse_overrides(&["message=Hello".to_string()]).is_err());
        assert!(parse_overrides(&["--noequals".to_string()]).is_err());
    }

    #[test]
    fn inputs_file_plus_overrides() {
        let dir = workdir("inputs");
        let f = dir.join("inputs.yml");
        std::fs::write(&f, "message: from-file\nsize: 7\n").unwrap();
        let overrides = parse_overrides(&["--size=9".to_string()]).unwrap();
        let inputs = load_inputs(Some(&f), &overrides).unwrap();
        assert_eq!(inputs.get("message").unwrap(), &Value::str("from-file"));
        assert_eq!(inputs.get("size").unwrap(), &Value::Int(9));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The §III-B invocation: parsl-cwl config.yml echo.cwl --message=…
    #[test]
    fn cli_runs_echo_tool() {
        let dir = workdir("echo");
        let config = load_config_value(
            &yamlite::parse_str(&format!(
                "executor:\n  kind: thread-pool\n  workers: 2\nrun:\n  workdir: {}\n  builtin_tools: true\n",
                dir.display()
            ))
            .unwrap(),
        )
        .unwrap();
        let inputs = parse_overrides(&["--message=Hello".to_string()]).unwrap();
        let outcome = run_tool_cli(config, &fixtures().join("echo.cwl"), &inputs).unwrap();
        assert_eq!(outcome.tasks, 1);
        let out = outcome.outputs.get("output").unwrap();
        assert_eq!(out["basename"].as_str(), Some("hello.txt"));
        assert_eq!(
            std::fs::read_to_string(out["path"].as_str().unwrap()).unwrap(),
            "Hello\n"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Extension: the CLI also accepts full workflows.
    #[test]
    fn cli_runs_workflow() {
        let dir = workdir("wf");
        imaging::write_rimg(dir.join("in.rimg"), &imaging::gradient(24, 24, 2)).unwrap();
        let config = load_config_value(
            &yamlite::parse_str(&format!(
                "executor:\n  kind: thread-pool\n  workers: 4\nrun:\n  workdir: {}\n  builtin_tools: true\n",
                dir.display()
            ))
            .unwrap(),
        )
        .unwrap();
        let inputs = parse_overrides(&[
            format!("--input_image={}", dir.join("in.rimg").display()),
            "--size=12".to_string(),
            "--sepia=true".to_string(),
            "--radius=1".to_string(),
        ])
        .unwrap();
        let outcome =
            run_tool_cli(config, &fixtures().join("image_pipeline.cwl"), &inputs).unwrap();
        assert_eq!(outcome.tasks, 3);
        let final_out = outcome.outputs.get("final_output").unwrap();
        let img = imaging::read_rimg(final_out["path"].as_str().unwrap()).unwrap();
        assert_eq!((img.width(), img.height()), (12, 12));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
