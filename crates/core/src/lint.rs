//! `parsl-lint` — static type-checking of parsl-cwl run configs.
//!
//! Reuses the `cwl::analyze::diag` framework (stable codes, spans, text +
//! JSON rendering) over the TaPS-style YAML config schema that
//! [`crate::config`] loads. The loader is permissive — unknown keys are
//! silently ignored, so a typo'd `worker:` runs on default parallelism
//! without a word. This pass is the strict mirror of the loader:
//!
//! * **E041** — unknown key, with a did-you-mean suggestion;
//! * **E042** — value of the wrong type or out of range (bad enum, a
//!   `jitter` outside `[0, 1]`, a zero `pool`);
//! * **E043** — keys that are individually fine but invalid together
//!   (heartbeat timeout not exceeding the period, more executor nodes
//!   than the cluster has, a fault kill with two trigger conditions);
//! * **E044** — a pinned `staging.dir` that can never be created
//!   (delegates to [`StagingSettings::validate`]);
//! * **E045** — a `serve.socket` path the daemon can never bind (the
//!   deepest existing ancestor is not a writable directory);
//! * **W120** — a setting the chosen executor/mode never reads;
//! * **W121** — cross-file: two configs sharing one checkpoint journal
//!   directory (resumes would mix runs).
//!
//! The same pass gates [`crate::config::load_config_file`] (honouring the
//! config's own `check: {pre_run, strict}` block), so a typo fails the run
//! before the kernel starts.

use cwl::analyze::diag::{codes, Diag, Report};
use cwl::validate::Severity;
use cwlexec::StagingSettings;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use yamlite::{SpanIndex, Value};

/// Known keys per block, as data. A `*` key means "any key allowed".
const TOP_KEYS: &[&str] = &[
    "executor",
    "provider",
    "retry",
    "retries",
    "fault",
    "run",
    "check",
    "checkpoint",
    "staging",
    "monitoring",
    "serve",
];
const EXECUTOR_KEYS: &[&str] = &[
    "kind",
    "workers",
    "nodes",
    "workers_per_node",
    "min_nodes",
    "heartbeat_ms",
    "heartbeat_timeout_ms",
    "label",
    "batch_size",
];
const PROVIDER_KEYS: &[&str] = &["kind", "cores_per_node", "cluster"];
const CLUSTER_KEYS: &[&str] = &["nodes", "cores_per_node"];
const RETRY_KEYS: &[&str] = &[
    "max_retries",
    "initial_backoff_ms",
    "multiplier",
    "max_backoff_ms",
    "jitter",
    "walltime_ms",
];
const FAULT_KEYS: &[&str] = &["kill"];
const KILL_KEYS: &[&str] = &["node", "after_tasks", "after_ms"];
const RUN_KEYS: &[&str] = &["workdir", "builtin_tools"];
const CHECK_KEYS: &[&str] = &["pre_run", "strict"];
const CHECKPOINT_KEYS: &[&str] = &["mode", "dir", "period_ms"];
const STAGING_KEYS: &[&str] = &["mode", "dir", "pool"];
const MONITORING_KEYS: &[&str] = &["enabled", "sample_rate", "export", "sinks", "events_cap"];
const SERVE_KEYS: &[&str] = &[
    "socket",
    "max_in_flight",
    "queue_cap",
    "tenants",
    "default_weight",
];

const EXECUTOR_KINDS: &[&str] = &[
    "thread-pool",
    "threads",
    "local-threads",
    "htex",
    "high-throughput",
];
const PROVIDER_KINDS: &[&str] = &["local", "slurm"];
const CHECKPOINT_MODES: &[&str] = &["off", "task-exit", "periodic"];
const STAGING_MODES: &[&str] = &["copy", "link", "auto"];
const MONITORING_SINKS: &[&str] = &["jsonl", "chrome"];

/// Executor keys only the HTEX path reads.
const HTEX_ONLY_KEYS: &[&str] = &[
    "nodes",
    "workers_per_node",
    "min_nodes",
    "heartbeat_ms",
    "heartbeat_timeout_ms",
    "label",
    "batch_size",
];

/// Diagnostic emitter: resolves dotted paths to positions via the span
/// index (same contract as the cwl analyzer's sink).
struct CfgSink<'a> {
    spans: &'a SpanIndex,
    report: &'a mut Report,
}

impl CfgSink<'_> {
    fn push(&mut self, code: &'static str, severity: Severity, path: String, message: String) {
        let position = self.spans.resolve(&path);
        self.report.diags.push(Diag {
            code,
            severity,
            path,
            position,
            message,
            file: None,
        });
    }

    fn error(&mut self, code: &'static str, path: impl Into<String>, message: impl Into<String>) {
        self.push(code, Severity::Error, path.into(), message.into());
    }

    fn warning(&mut self, code: &'static str, path: impl Into<String>, message: impl Into<String>) {
        self.push(code, Severity::Warning, path.into(), message.into());
    }
}

fn child(base: &str, seg: &str) -> String {
    yamlite::span::child_path(base, seg)
}

/// Levenshtein edit distance, for did-you-mean suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Closest known key, when close enough to be a plausible typo.
fn did_you_mean<'a>(key: &str, known: &[&'a str]) -> Option<&'a str> {
    known
        .iter()
        .map(|k| (edit_distance(key, k), *k))
        .min()
        .filter(|(d, k)| *d <= 2.max(k.len() / 3))
        .map(|(_, k)| k)
}

/// E041 for every key of `block` not in `known`.
fn check_keys(block: &Value, base: &str, known: &[&str], sink: &mut CfgSink) {
    let Value::Map(m) = block else { return };
    for (key, _) in m.iter() {
        if known.contains(&key) {
            continue;
        }
        let suggestion = match did_you_mean(key, known) {
            Some(s) => format!(" (did you mean {s:?}?)"),
            None => String::new(),
        };
        let where_ = if base.is_empty() {
            "the top level".to_string()
        } else {
            format!("`{base}:`")
        };
        sink.error(
            codes::CFG_UNKNOWN_KEY,
            child(base, key),
            format!("unknown key {key:?} in {where_}{suggestion}"),
        );
    }
}

/// E042 unless `block[key]`, when present, is an integer `>= min`.
fn check_int(block: &Value, base: &str, key: &str, min: i64, sink: &mut CfgSink) {
    let Some(v) = block.get(key) else { return };
    let label = child(base, key);
    match v.as_int() {
        Some(n) if n >= min => {}
        Some(n) => sink.error(
            codes::CFG_VALUE,
            label.clone(),
            format!("{label} must be >= {min}, got {n}"),
        ),
        None => sink.error(
            codes::CFG_VALUE,
            label.clone(),
            format!("{label} must be an integer, got {}", v.to_display_string()),
        ),
    }
}

/// E042 unless `block[key]`, when present, is a boolean.
fn check_bool(block: &Value, base: &str, key: &str, sink: &mut CfgSink) {
    let Some(v) = block.get(key) else { return };
    if v.as_bool().is_none() {
        sink.error(
            codes::CFG_VALUE,
            child(base, key),
            format!(
                "{base}.{key} must be a boolean, got {}",
                v.to_display_string()
            ),
        );
    }
}

/// E042 unless `block[key]`, when present, is a number in `[lo, hi]`.
fn check_fraction(block: &Value, base: &str, key: &str, sink: &mut CfgSink) {
    let Some(v) = block.get(key) else { return };
    match v.as_float().or_else(|| v.as_int().map(|n| n as f64)) {
        Some(f) if f.is_finite() && (0.0..=1.0).contains(&f) => {}
        _ => sink.error(
            codes::CFG_VALUE,
            child(base, key),
            format!(
                "{base}.{key} must be a fraction in [0, 1], got {}",
                v.to_display_string()
            ),
        ),
    }
}

/// E042 unless `block[key]`, when present, is a finite number `> 0`
/// (fair-share weights: a zero or negative weight starves the tenant).
fn check_weight(block: &Value, base: &str, key: &str, sink: &mut CfgSink) {
    let Some(v) = block.get(key) else { return };
    match v.as_float() {
        Some(f) if f.is_finite() && f > 0.0 => {}
        _ => sink.error(
            codes::CFG_VALUE,
            child(base, key),
            format!(
                "{base}.{key} must be a number > 0, got {}",
                v.to_display_string()
            ),
        ),
    }
}

/// E045 probe: the deepest existing ancestor of `sock`'s parent must be a
/// writable directory, or `bind()` can never create the socket there.
fn probe_socket_dir(sock: &Path) -> Result<(), String> {
    let parent = match sock.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => return Ok(()), // bare filename: binds in the cwd
    };
    let mut probe = parent;
    loop {
        if probe.exists() {
            if !probe.is_dir() {
                return Err(format!(
                    "serve.socket {}: ancestor {} exists but is not a directory",
                    sock.display(),
                    probe.display()
                ));
            }
            let marker = probe.join(format!(".serve-probe-{}", std::process::id()));
            return match std::fs::File::create(&marker) {
                Ok(_) => {
                    let _ = std::fs::remove_file(&marker);
                    Ok(())
                }
                Err(e) => Err(format!(
                    "serve.socket {} is not creatable ({} at {})",
                    sock.display(),
                    e,
                    probe.display()
                )),
            };
        }
        match probe.parent() {
            Some(p) if p != probe => probe = p,
            _ => return Ok(()), // relative path with no existing prefix
        }
    }
}

/// E042 unless `block[key]`, when present, is one of `allowed`.
fn check_enum(block: &Value, base: &str, key: &str, allowed: &[&str], sink: &mut CfgSink) {
    let Some(v) = block.get(key) else { return };
    let ok = v.as_str().map(|s| allowed.contains(&s)).unwrap_or(false);
    if !ok {
        let suggestion = v
            .as_str()
            .and_then(|s| did_you_mean(s, allowed))
            .map(|s| format!(" (did you mean {s:?}?)"))
            .unwrap_or_default();
        sink.error(
            codes::CFG_VALUE,
            child(base, key),
            format!(
                "{base}.{key} must be one of {allowed:?}, got {}{suggestion}",
                v.to_display_string()
            ),
        );
    }
}

/// Lint a parsed run config, appending findings to `report`.
pub fn lint_value(doc: &Value, spans: &SpanIndex, report: &mut Report) {
    let mut sink = CfgSink { spans, report };
    let sink = &mut sink;
    match doc {
        Value::Null => return, // empty config = all defaults, fine
        Value::Map(_) => {}
        other => {
            sink.error(
                codes::CFG_VALUE,
                "",
                format!(
                    "config must be a YAML map, got {}",
                    other.to_display_string()
                ),
            );
            return;
        }
    }
    check_keys(doc, "", TOP_KEYS, sink);

    let executor = doc.get("executor").cloned().unwrap_or(Value::Null);
    let kind = executor
        .get("kind")
        .and_then(Value::as_str)
        .unwrap_or("thread-pool");
    let is_htex = matches!(kind, "htex" | "high-throughput");
    check_keys(&executor, "executor", EXECUTOR_KEYS, sink);
    check_enum(&executor, "executor", "kind", EXECUTOR_KINDS, sink);
    check_int(&executor, "executor", "workers", 1, sink);
    check_int(&executor, "executor", "nodes", 1, sink);
    check_int(&executor, "executor", "workers_per_node", 0, sink);
    check_int(&executor, "executor", "min_nodes", 0, sink);
    check_int(&executor, "executor", "heartbeat_ms", 1, sink);
    check_int(&executor, "executor", "heartbeat_timeout_ms", 1, sink);
    check_int(&executor, "executor", "batch_size", 1, sink);

    let provider = doc.get("provider").cloned().unwrap_or(Value::Null);
    let provider_kind = provider
        .get("kind")
        .and_then(Value::as_str)
        .unwrap_or("local");
    check_keys(&provider, "provider", PROVIDER_KEYS, sink);
    check_enum(&provider, "provider", "kind", PROVIDER_KINDS, sink);
    check_int(&provider, "provider", "cores_per_node", 1, sink);
    let cluster = provider.get("cluster").cloned().unwrap_or(Value::Null);
    check_keys(&cluster, "provider.cluster", CLUSTER_KEYS, sink);
    check_int(&cluster, "provider.cluster", "nodes", 1, sink);
    check_int(&cluster, "provider.cluster", "cores_per_node", 1, sink);

    if let Some(retry) = doc.get("retry") {
        check_keys(retry, "retry", RETRY_KEYS, sink);
        check_int(retry, "retry", "max_retries", 0, sink);
        check_int(retry, "retry", "initial_backoff_ms", 0, sink);
        check_int(retry, "retry", "max_backoff_ms", 0, sink);
        check_int(retry, "retry", "walltime_ms", 1, sink);
        check_fraction(retry, "retry", "jitter", sink);
        if let Some(m) = retry.get("multiplier") {
            match m.as_float().or_else(|| m.as_int().map(|n| n as f64)) {
                Some(f) if f.is_finite() && f >= 0.0 => {}
                _ => sink.error(
                    codes::CFG_VALUE,
                    "retry.multiplier",
                    format!(
                        "retry.multiplier must be a finite non-negative number, got {}",
                        m.to_display_string()
                    ),
                ),
            }
        }
    }
    check_int(doc, "", "retries", 0, sink);

    let fault = doc.get("fault").cloned().unwrap_or(Value::Null);
    check_keys(&fault, "fault", FAULT_KEYS, sink);
    if let Some(kills) = fault.get("kill").and_then(Value::as_seq) {
        for (i, kill) in kills.iter().enumerate() {
            let kpath = yamlite::span::item_path("fault.kill", i);
            check_keys(kill, &kpath, KILL_KEYS, sink);
            if kill.get("node").and_then(Value::as_str).is_none() {
                sink.error(
                    codes::CFG_VALUE,
                    kpath.clone(),
                    format!("fault.kill[{i}] needs a `node:` name"),
                );
            }
            if kill.get("after_tasks").is_some() && kill.get("after_ms").is_some() {
                sink.error(
                    codes::CFG_COMBO,
                    kpath.clone(),
                    format!(
                        "fault.kill[{i}] sets both after_tasks and after_ms; \
                         a kill has one trigger (after_tasks wins here, which \
                         is probably not what you meant)"
                    ),
                );
            }
        }
    }

    let run = doc.get("run").cloned().unwrap_or(Value::Null);
    check_keys(&run, "run", RUN_KEYS, sink);
    check_bool(&run, "run", "builtin_tools", sink);

    let check = doc.get("check").cloned().unwrap_or(Value::Null);
    check_keys(&check, "check", CHECK_KEYS, sink);
    check_bool(&check, "check", "pre_run", sink);
    check_bool(&check, "check", "strict", sink);

    let checkpoint = doc.get("checkpoint").cloned().unwrap_or(Value::Null);
    check_keys(&checkpoint, "checkpoint", CHECKPOINT_KEYS, sink);
    check_enum(&checkpoint, "checkpoint", "mode", CHECKPOINT_MODES, sink);
    check_int(&checkpoint, "checkpoint", "period_ms", 1, sink);

    let staging = doc.get("staging").cloned().unwrap_or(Value::Null);
    check_keys(&staging, "staging", STAGING_KEYS, sink);
    check_enum(&staging, "staging", "mode", STAGING_MODES, sink);
    check_int(&staging, "staging", "pool", 1, sink);
    if let Some(dir) = staging.get("dir").and_then(Value::as_str) {
        let probe = StagingSettings {
            dir: Some(PathBuf::from(dir)),
            ..Default::default()
        };
        if let Err(e) = probe.validate() {
            sink.error(codes::CFG_STAGING_DIR, "staging.dir", e);
        }
    }

    let monitoring = doc.get("monitoring").cloned().unwrap_or(Value::Null);
    check_keys(&monitoring, "monitoring", MONITORING_KEYS, sink);
    check_bool(&monitoring, "monitoring", "enabled", sink);
    check_fraction(&monitoring, "monitoring", "sample_rate", sink);
    check_int(&monitoring, "monitoring", "events_cap", 1, sink);
    if let Some(sinks) = monitoring.get("sinks").and_then(Value::as_seq) {
        for (i, s) in sinks.iter().enumerate() {
            let ok = s
                .as_str()
                .map(|s| MONITORING_SINKS.contains(&s))
                .unwrap_or(false);
            if !ok {
                sink.error(
                    codes::CFG_VALUE,
                    yamlite::span::item_path("monitoring.sinks", i),
                    format!(
                        "monitoring.sinks entries must be one of {MONITORING_SINKS:?}, got {}",
                        s.to_display_string()
                    ),
                );
            }
        }
    }

    let serve = doc.get("serve").cloned().unwrap_or(Value::Null);
    check_keys(&serve, "serve", SERVE_KEYS, sink);
    check_int(&serve, "serve", "max_in_flight", 1, sink);
    check_int(&serve, "serve", "queue_cap", 1, sink);
    check_weight(&serve, "serve", "default_weight", sink);
    if let Some(tenants) = serve.get("tenants").cloned() {
        match &tenants {
            Value::Map(m) => {
                for (name, _) in m.iter() {
                    check_weight(&tenants, "serve.tenants", name, sink);
                }
            }
            other => sink.error(
                codes::CFG_VALUE,
                "serve.tenants",
                format!(
                    "serve.tenants must be a map of tenant -> weight, got {}",
                    other.to_display_string()
                ),
            ),
        }
    }
    // E045: a socket path the daemon can never bind — same probe idiom as
    // the staging-dir check (walk up to the deepest existing ancestor,
    // which is what `bind()` needs to be a writable directory).
    if let Some(sock) = serve.get("socket").and_then(Value::as_str) {
        if let Err(e) = probe_socket_dir(Path::new(sock)) {
            sink.error(codes::CFG_SERVE_SOCKET, "serve.socket", e);
        }
    }

    // E043: heartbeat timeout must exceed the heartbeat period, or every
    // manager is declared lost between two beats.
    if let (Some(period), Some(timeout)) = (
        executor.get("heartbeat_ms").and_then(Value::as_int),
        executor.get("heartbeat_timeout_ms").and_then(Value::as_int),
    ) {
        if timeout <= period {
            sink.error(
                codes::CFG_COMBO,
                "executor.heartbeat_timeout_ms",
                format!(
                    "heartbeat_timeout_ms ({timeout}) must exceed heartbeat_ms \
                     ({period}); as configured every manager misses its deadline"
                ),
            );
        }
    }

    // E043: asking the provider for more nodes than the cluster has.
    if provider_kind == "slurm" {
        if let Some(cluster_nodes) = cluster.get("nodes").and_then(Value::as_int) {
            for key in ["nodes", "min_nodes"] {
                if let Some(n) = executor.get(key).and_then(Value::as_int) {
                    if n > cluster_nodes {
                        sink.error(
                            codes::CFG_COMBO,
                            child("executor", key),
                            format!(
                                "executor.{key} ({n}) exceeds the cluster's \
                                 {cluster_nodes} node(s); the pilot job can never start"
                            ),
                        );
                    }
                }
            }
        }
    }

    // W120: settings the chosen executor/mode never reads.
    if !is_htex {
        if doc.get("provider").is_some() {
            sink.warning(
                codes::CFG_NO_EFFECT,
                "provider",
                format!("`provider:` has no effect with the {kind} executor"),
            );
        }
        if doc.get("fault").is_some() {
            sink.warning(
                codes::CFG_NO_EFFECT,
                "fault",
                format!("`fault:` has no effect with the {kind} executor"),
            );
        }
        for key in HTEX_ONLY_KEYS {
            if executor.get(key).is_some() {
                sink.warning(
                    codes::CFG_NO_EFFECT,
                    child("executor", key),
                    format!("executor.{key} has no effect with the {kind} executor"),
                );
            }
        }
    } else {
        if executor.get("workers").is_some() {
            sink.warning(
                codes::CFG_NO_EFFECT,
                "executor.workers",
                "executor.workers has no effect with htex (use workers_per_node)",
            );
        }
        match provider_kind {
            "slurm" if provider.get("cores_per_node").is_some() => sink.warning(
                codes::CFG_NO_EFFECT,
                "provider.cores_per_node",
                "provider.cores_per_node has no effect with slurm \
                 (set provider.cluster.cores_per_node)",
            ),
            "local" if provider.get("cluster").is_some() => sink.warning(
                codes::CFG_NO_EFFECT,
                "provider.cluster",
                "provider.cluster has no effect with the local provider",
            ),
            _ => {}
        }
    }
    let ckpt_mode = checkpoint.get("mode").and_then(Value::as_str);
    if checkpoint.get("period_ms").is_some() && ckpt_mode != Some("periodic") {
        sink.warning(
            codes::CFG_NO_EFFECT,
            "checkpoint.period_ms",
            format!(
                "checkpoint.period_ms only applies to mode: periodic (mode here is {})",
                ckpt_mode.unwrap_or("task-exit")
            ),
        );
    }
    if check.get("strict").and_then(Value::as_bool) == Some(true)
        && check.get("pre_run").and_then(Value::as_bool) == Some(false)
    {
        sink.warning(
            codes::CFG_NO_EFFECT,
            "check.strict",
            "check.strict has no effect with pre_run: false (nothing is checked)",
        );
    }
}

/// Lint config source text. `file` names the report.
pub fn lint_str(text: &str, file: Option<&Path>) -> Report {
    let mut report = Report::new();
    report.file = file.map(|p| p.display().to_string());
    match yamlite::parse_str_spanned(text) {
        Err(e) => report.diags.push(Diag {
            code: codes::YAML_PARSE,
            severity: Severity::Error,
            path: String::new(),
            position: Some(e.position),
            message: e.message,
            file: None,
        }),
        Ok((doc, spans)) => lint_value(&doc, &spans, &mut report),
    }
    report.sort();
    report
}

/// Lint a config file on disk.
pub fn lint_file(path: impl AsRef<Path>) -> Report {
    let path = path.as_ref();
    match yamlite::parse_file_spanned(path) {
        Ok((doc, spans)) => {
            let mut report = Report::new();
            report.file = Some(path.display().to_string());
            lint_value(&doc, &spans, &mut report);
            report.sort();
            report
        }
        Err(e) => {
            let mut report = Report::new();
            report.file = Some(path.display().to_string());
            report.diags.push(Diag {
                code: codes::YAML_PARSE,
                severity: Severity::Error,
                path: String::new(),
                position: Some(e.position),
                message: e.message,
                file: None,
            });
            report
        }
    }
}

/// The checkpoint journal directory a config would write, when
/// checkpointing is on: the explicit `checkpoint.dir`, else
/// `<run.workdir>/ckpt` when a workdir is pinned. `None` when
/// checkpointing is off or the journal lands in a per-process temp dir
/// (unique by construction).
pub fn effective_checkpoint_dir(doc: &Value) -> Option<PathBuf> {
    let block = doc.get("checkpoint")?;
    if block.get("mode").and_then(Value::as_str) == Some("off") {
        return None;
    }
    if let Some(dir) = block.get("dir").and_then(Value::as_str) {
        return Some(PathBuf::from(dir));
    }
    doc.get("run")
        .and_then(|r| r.get("workdir"))
        .and_then(Value::as_str)
        .map(|w| Path::new(w).join("ckpt"))
}

/// Cross-file pass: W121 when two configs would write the same checkpoint
/// journal directory (a resume would load another run's results).
/// Appends one diagnostic per involved file to its report.
pub fn cross_file_checks(files: &mut [(PathBuf, Value, SpanIndex, Report)]) {
    let mut by_dir: BTreeMap<PathBuf, Vec<usize>> = BTreeMap::new();
    for (i, (_, doc, _, _)) in files.iter().enumerate() {
        if let Some(dir) = effective_checkpoint_dir(doc) {
            by_dir.entry(dir).or_default().push(i);
        }
    }
    for (dir, idxs) in by_dir {
        if idxs.len() < 2 {
            continue;
        }
        for &i in &idxs {
            let others: Vec<String> = idxs
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| files[j].0.display().to_string())
                .collect();
            let path = if files[i]
                .1
                .get("checkpoint")
                .and_then(|c| c.get("dir"))
                .is_some()
            {
                "checkpoint.dir".to_string()
            } else {
                "checkpoint".to_string()
            };
            let position = files[i].2.resolve(&path);
            files[i].3.diags.push(Diag {
                code: codes::CFG_SHARED_CKPT,
                severity: Severity::Warning,
                path,
                position,
                message: format!(
                    "checkpoint dir {} is shared with {} (a resume would mix runs)",
                    dir.display(),
                    others.join(", ")
                ),
                file: None,
            });
        }
    }
}

/// The configured executor's capacity, in the shape the cwl feasibility
/// pass consumes (GiB → MiB; a zero/unknown memory hint becomes `None`).
pub fn executor_capacity(parsl: &parsl::Config) -> cwl::analyze::ExecutorCapacity {
    let cap = parsl.capacity();
    cwl::analyze::ExecutorCapacity {
        label: format!(
            "{} ({} node(s) x {} worker(s))",
            parsl.label, cap.nodes, cap.workers_per_node
        ),
        slots: cap.total_slots(),
        cores_per_node: cap.cores_per_node.map(|c| c as i64),
        ram_per_node_mb: cap.mem_gib_per_node.map(|g| (g as i64) * 1024),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(text: &str) -> Report {
        lint_str(text, None)
    }

    #[test]
    fn clean_config_is_clean() {
        let r = lint(
            "executor:\n  kind: htex\n  nodes: 3\n  workers_per_node: 4\nprovider:\n  kind: slurm\n  cluster:\n    nodes: 4\n    cores_per_node: 8\nretry:\n  max_retries: 1\n  jitter: 0.1\nrun:\n  workdir: /tmp/x\n",
        );
        assert!(r.is_clean(true), "{}", r.render_text());
    }

    #[test]
    fn unknown_key_has_did_you_mean() {
        let r = lint("executor:\n  kind: thread-pool\n  workres: 4\n");
        assert!(r.has_code(codes::CFG_UNKNOWN_KEY), "{}", r.render_text());
        let d = r
            .diags
            .iter()
            .find(|d| d.code == codes::CFG_UNKNOWN_KEY)
            .unwrap();
        assert!(
            d.message.contains("did you mean \"workers\""),
            "{}",
            d.message
        );
        assert!(d.position.is_some(), "unknown key must carry a span");
    }

    #[test]
    fn bad_values_are_e042() {
        let r = lint("executor:\n  kind: quantum\n");
        assert!(r.has_code(codes::CFG_VALUE), "{}", r.render_text());
        let r = lint("retry:\n  jitter: 1.5\n");
        assert!(r.has_code(codes::CFG_VALUE));
        let r = lint("staging:\n  pool: 0\n");
        assert!(r.has_code(codes::CFG_VALUE));
        let r = lint("run:\n  builtin_tools: probably\n");
        assert!(r.has_code(codes::CFG_VALUE));
        let r = lint("monitoring:\n  sinks: [jsonl, bogus]\n");
        assert!(r.has_code(codes::CFG_VALUE));
    }

    #[test]
    fn bad_combos_are_e043() {
        let r = lint("executor:\n  kind: htex\n  heartbeat_ms: 100\n  heartbeat_timeout_ms: 50\n");
        assert!(r.has_code(codes::CFG_COMBO), "{}", r.render_text());
        let r = lint(
            "executor:\n  kind: htex\n  nodes: 5\nprovider:\n  kind: slurm\n  cluster:\n    nodes: 3\n",
        );
        assert!(r.has_code(codes::CFG_COMBO), "{}", r.render_text());
        let r = lint(
            "executor:\n  kind: htex\nfault:\n  kill:\n    - node: node01\n      after_tasks: 2\n      after_ms: 100\n",
        );
        assert!(r.has_code(codes::CFG_COMBO), "{}", r.render_text());
    }

    #[test]
    fn unreachable_staging_dir_is_e044() {
        let r = lint("staging:\n  dir: /etc/passwd/cas\n");
        assert!(r.has_code(codes::CFG_STAGING_DIR), "{}", r.render_text());
    }

    #[test]
    fn serve_block_is_linted() {
        let r = lint(
            "serve:\n  socket: /tmp/s.sock\n  max_in_flight: 2\n  queue_cap: 8\n  default_weight: 1.5\n  tenants:\n    alice: 3\n    bob: 1\n",
        );
        assert!(r.is_clean(true), "{}", r.render_text());

        let r = lint("serve:\n  max_in_flight: 0\n");
        assert!(r.has_code(codes::CFG_VALUE), "{}", r.render_text());
        let r = lint("serve:\n  queue_cap: 0\n");
        assert!(r.has_code(codes::CFG_VALUE));
        let r = lint("serve:\n  default_weight: 0\n");
        assert!(r.has_code(codes::CFG_VALUE));
        let r = lint("serve:\n  tenants:\n    alice: -1\n");
        assert!(r.has_code(codes::CFG_VALUE));
        let r = lint("serve:\n  tenants: [alice, bob]\n");
        assert!(r.has_code(codes::CFG_VALUE));
        let r = lint("serve:\n  max_inflight: 2\n");
        assert!(r.has_code(codes::CFG_UNKNOWN_KEY));
    }

    #[test]
    fn unbindable_serve_socket_is_e045() {
        let r = lint("serve:\n  socket: /etc/passwd/serve.sock\n");
        assert!(r.has_code(codes::CFG_SERVE_SOCKET), "{}", r.render_text());
    }

    #[test]
    fn monitoring_events_cap_is_linted() {
        let r = lint("monitoring:\n  events_cap: 4096\n");
        assert!(r.is_clean(true), "{}", r.render_text());
        let r = lint("monitoring:\n  events_cap: 0\n");
        assert!(r.has_code(codes::CFG_VALUE), "{}", r.render_text());
    }

    #[test]
    fn no_effect_settings_are_w120() {
        let r = lint("executor:\n  kind: thread-pool\n  nodes: 3\nprovider:\n  kind: local\n");
        assert!(r.has_code(codes::CFG_NO_EFFECT), "{}", r.render_text());
        assert!(r.is_clean(false), "W120 is a warning, not an error");
        let r = lint("executor:\n  kind: htex\n  workers: 4\n");
        assert!(r.has_code(codes::CFG_NO_EFFECT));
        let r = lint("checkpoint:\n  mode: task-exit\n  period_ms: 100\n");
        assert!(r.has_code(codes::CFG_NO_EFFECT));
        let r = lint("check:\n  pre_run: false\n  strict: true\n");
        assert!(r.has_code(codes::CFG_NO_EFFECT));
    }

    #[test]
    fn shared_checkpoint_dir_is_w121() {
        let a = yamlite::parse_str_spanned("checkpoint:\n  dir: /tmp/shared-j\n").unwrap();
        let b = yamlite::parse_str_spanned(
            "checkpoint:\n  mode: periodic\n  period_ms: 100\n  dir: /tmp/shared-j\n",
        )
        .unwrap();
        let c = yamlite::parse_str_spanned("checkpoint:\n  dir: /tmp/other-j\n").unwrap();
        let mut files = vec![
            (PathBuf::from("a.yml"), a.0, a.1, Report::new()),
            (PathBuf::from("b.yml"), b.0, b.1, Report::new()),
            (PathBuf::from("c.yml"), c.0, c.1, Report::new()),
        ];
        cross_file_checks(&mut files);
        assert!(files[0].3.has_code(codes::CFG_SHARED_CKPT));
        assert!(files[1].3.has_code(codes::CFG_SHARED_CKPT));
        assert!(!files[2].3.has_code(codes::CFG_SHARED_CKPT));
        assert!(files[0].3.diags[0].message.contains("b.yml"));
    }

    #[test]
    fn workdir_implies_checkpoint_dir() {
        let doc = yamlite::parse_str("checkpoint: {}\nrun:\n  workdir: /tmp/w\n").unwrap();
        assert_eq!(
            effective_checkpoint_dir(&doc),
            Some(PathBuf::from("/tmp/w/ckpt"))
        );
        let doc = yamlite::parse_str("checkpoint:\n  mode: off\n  dir: /tmp/j\n").unwrap();
        assert_eq!(effective_checkpoint_dir(&doc), None);
        let doc = yamlite::parse_str("run:\n  workdir: /tmp/w\n").unwrap();
        assert_eq!(effective_checkpoint_dir(&doc), None);
    }

    #[test]
    fn capacity_conversion() {
        let cap = executor_capacity(&parsl::Config::local_threads(6));
        assert_eq!(cap.slots, 6);
        assert!(cap.ram_per_node_mb.is_none());
    }
}
