//! `CwlApp` — a CWL `CommandLineTool` imported as a Parsl app (§III-A).

use cwl::loader::{load_file, CwlDocument};
use cwl::types::CwlType;
use cwl::CommandLineTool;
use cwlexec::{
    execute_tool_staged, BuiltinDispatch, StageCtx, StagingSettings, SubprocessDispatch,
    ToolDispatch,
};
use datastore::Stager;
use expr::{interpolate, EvalContext, ExpressionEngine, JsCostModel};
use parsl::{AppArg, AppFuture, DataFlowKernel, DataFuture, File, TaskError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use yamlite::{Map, Value};

/// Options controlling how a [`CwlApp`] executes its tool.
pub struct CwlAppOptions {
    /// Base directory for per-invocation working directories.
    pub workdir_base: PathBuf,
    /// Run recognized workload tools in-process instead of spawning
    /// subprocesses (hermetic benchmarking; see [`BuiltinDispatch`]).
    pub builtin_tools: bool,
    /// Explicit dispatch override (failure injection, custom sandboxes);
    /// takes precedence over `builtin_tools`.
    pub dispatch: Option<Arc<dyn ToolDispatch>>,
    /// Data-plane configuration (`staging:` block); used to open a
    /// per-run content store under `workdir_base` unless `stager` is set.
    pub staging: StagingSettings,
    /// Pre-built stager shared across apps in one run (the CLI builds one
    /// so every task and the prestage pool hit the same store and the
    /// run can publish one set of stage counters).
    pub stager: Option<Arc<Stager>>,
    /// Service run tag: when set, every task submitted through this app
    /// (or a workflow runner built from these options) carries the run's
    /// identity — fair-share scheduling, per-run journaling, and lineage
    /// namespacing all key off it.
    pub run_tag: Option<parsl::RunTag>,
}

impl Default for CwlAppOptions {
    fn default() -> Self {
        Self {
            workdir_base: std::env::temp_dir().join(format!("cwl-parsl-{}", std::process::id())),
            builtin_tools: false,
            dispatch: None,
            staging: StagingSettings::default(),
            stager: None,
            run_tag: None,
        }
    }
}

impl CwlAppOptions {
    /// Options rooted at a specific working directory.
    pub fn in_dir(dir: impl Into<PathBuf>) -> Self {
        Self {
            workdir_base: dir.into(),
            ..Default::default()
        }
    }

    /// Use the in-process builtin tool dispatch.
    pub fn with_builtin_tools(mut self) -> Self {
        self.builtin_tools = true;
        self
    }

    /// Use a specific dispatch implementation.
    pub fn with_dispatch(mut self, dispatch: Arc<dyn ToolDispatch>) -> Self {
        self.dispatch = Some(dispatch);
        self
    }

    /// Use specific data-plane settings.
    pub fn with_staging(mut self, staging: StagingSettings) -> Self {
        self.staging = staging;
        self
    }

    /// Share an already-open stager instead of building one.
    pub fn with_stager(mut self, stager: Arc<Stager>) -> Self {
        self.stager = Some(stager);
        self
    }

    /// Tag every submission with a service run identity.
    pub fn with_run_tag(mut self, tag: parsl::RunTag) -> Self {
        self.run_tag = Some(tag);
        self
    }

    /// Resolve the dispatch implied by these options.
    pub(crate) fn resolve_dispatch(&self) -> Arc<dyn ToolDispatch> {
        match &self.dispatch {
            Some(d) => d.clone(),
            None if self.builtin_tools => Arc::new(BuiltinDispatch),
            None => Arc::new(SubprocessDispatch),
        }
    }

    /// Resolve the stager implied by these options (shared one, else a
    /// store rooted under the workdir base).
    pub(crate) fn resolve_stager(&self) -> Result<Arc<Stager>, String> {
        match &self.stager {
            Some(s) => Ok(s.clone()),
            None => self.staging.build(&self.workdir_base),
        }
    }
}

/// A CWL `CommandLineTool` imported as a Parsl app. Create once with
/// [`CwlApp::load`], then invoke any number of times — each invocation is a
/// Parsl task with its own working directory (Listing 2's `CWLApp`).
pub struct CwlApp {
    tool: Arc<CommandLineTool>,
    dfk: Arc<DataFlowKernel>,
    engine: Arc<dyn ExpressionEngine>,
    dispatch: Arc<dyn ToolDispatch>,
    stager: Arc<Stager>,
    workdir_base: PathBuf,
    label: String,
    run_tag: Option<parsl::RunTag>,
    seq: AtomicU64,
}

/// The result of invoking a [`CwlApp`]: the app future (resolving to the
/// output object) plus one [`DataFuture`] per predictable file output —
/// Parsl's `future.outputs` list.
pub struct CwlRun {
    /// Resolves to the collected CWL output object.
    pub future: AppFuture,
    /// File outputs, in the tool's output declaration order.
    pub outputs: Vec<DataFuture>,
    /// This invocation's working directory.
    pub workdir: PathBuf,
}

impl CwlRun {
    /// Convenience: the first file output (`future.outputs[0]` in the
    /// paper's listings).
    pub fn output(&self) -> &DataFuture {
        &self.outputs[0]
    }
}

impl std::fmt::Debug for CwlRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CwlRun")
            .field("future", &self.future)
            .field("outputs", &self.outputs.len())
            .field("workdir", &self.workdir)
            .finish()
    }
}

impl std::fmt::Debug for CwlApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CwlApp")
            .field("label", &self.label)
            .field("inputs", &self.tool.inputs.len())
            .field("outputs", &self.tool.outputs.len())
            .finish()
    }
}

impl CwlApp {
    /// Load a CommandLineTool definition and bind it to a kernel.
    pub fn load(
        dfk: &Arc<DataFlowKernel>,
        path: impl AsRef<Path>,
        options: CwlAppOptions,
    ) -> Result<Self, String> {
        let path = path.as_ref();
        let doc = load_file(path)?;
        let CwlDocument::Tool(tool) = doc else {
            return Err(format!(
                "{} is a {}, not a CommandLineTool (use ParslWorkflowRunner for workflows)",
                path.display(),
                doc.class()
            ));
        };
        Self::from_tool(
            dfk,
            tool,
            path.file_stem().map(|s| s.to_string_lossy().into_owned()),
            options,
        )
    }

    /// Wrap an already-parsed tool.
    pub fn from_tool(
        dfk: &Arc<DataFlowKernel>,
        tool: CommandLineTool,
        label: Option<String>,
        options: CwlAppOptions,
    ) -> Result<Self, String> {
        // parsl-cwl evaluates expressions in-process (the §V fast path), so
        // the JS engine carries no modelled process-boundary cost here.
        let engine: Arc<dyn ExpressionEngine> = Arc::from(cwlexec::engine_for(
            &tool.requirements,
            JsCostModel::free(),
        )?);
        let dispatch = options.resolve_dispatch();
        let stager = options.resolve_stager()?;
        let label = label
            .or_else(|| tool.id.clone())
            .unwrap_or_else(|| "cwl-tool".to_string());
        Ok(Self {
            tool: Arc::new(tool),
            dfk: dfk.clone(),
            engine,
            dispatch,
            stager,
            workdir_base: options.workdir_base,
            label,
            run_tag: options.run_tag,
            seq: AtomicU64::new(0),
        })
    }

    /// The data plane this app stages through.
    pub fn stager(&self) -> &Arc<Stager> {
        &self.stager
    }

    /// The underlying tool definition.
    pub fn tool(&self) -> &CommandLineTool {
        &self.tool
    }

    /// Start building an invocation (keyword arguments style).
    pub fn call(&self) -> CwlInvocation<'_> {
        CwlInvocation {
            app: self,
            args: Vec::new(),
            stdout_override: None,
        }
    }
}

/// Argument kinds accepted by an invocation.
enum Kwarg {
    Literal(Value),
    Fut(AppFuture),
    Data(DataFuture),
}

/// Builder for one [`CwlApp`] invocation.
pub struct CwlInvocation<'a> {
    app: &'a CwlApp,
    args: Vec<(String, Kwarg)>,
    stdout_override: Option<String>,
}

impl<'a> CwlInvocation<'a> {
    /// Bind a literal value to an input.
    pub fn arg(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.args.push((name.into(), Kwarg::Literal(value.into())));
        self
    }

    /// Bind another app's result future to an input.
    pub fn arg_future(mut self, name: impl Into<String>, fut: &AppFuture) -> Self {
        self.args.push((name.into(), Kwarg::Fut(fut.clone())));
        self
    }

    /// Bind an upstream file future to a File input — the Listing 4
    /// pattern (`input_image=resized_img_future.outputs[0]`).
    pub fn arg_data(mut self, name: impl Into<String>, data: &DataFuture) -> Self {
        self.args.push((name.into(), Kwarg::Data(data.clone())));
        self
    }

    /// Override the tool's stdout capture file (Listing 2 passes
    /// `stdout="hello.txt"`).
    pub fn stdout(mut self, name: impl Into<String>) -> Self {
        self.stdout_override = Some(name.into());
        self
    }

    /// Submit the invocation to the kernel. Returns immediately with a
    /// [`CwlRun`]; execution starts once all future-valued inputs resolve.
    pub fn submit(self) -> Result<CwlRun, String> {
        let app = self.app;
        let tool = app.tool.clone();

        // Validate argument names early (the Python bridge raises on
        // unexpected kwargs at call time too).
        for (name, _) in &self.args {
            if tool.input(name).is_none() {
                return Err(format!(
                    "tool {:?} has no input {name:?} (declared inputs: {})",
                    app.label,
                    tool.inputs
                        .iter()
                        .map(|i| i.id.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }

        // Per-invocation working directory.
        let seq = app.seq.fetch_add(1, Ordering::Relaxed);
        let workdir = app.workdir_base.join(format!("{}_{seq}", app.label));

        // Apply the stdout override by rewriting the tool copy.
        let tool = if let Some(name) = &self.stdout_override {
            let mut t = (*tool).clone();
            t.stdout = Some(name.clone());
            Arc::new(t)
        } else {
            tool
        };

        // Split literal vs future-valued arguments; futures become Parsl
        // dataflow dependencies.
        let mut parsl_args: Vec<AppArg> = Vec::new();
        let mut slots: Vec<(String, Option<usize>, Option<Value>)> = Vec::new();
        for (name, kwarg) in self.args {
            match kwarg {
                Kwarg::Literal(v) => slots.push((name, None, Some(v))),
                Kwarg::Fut(f) => {
                    slots.push((name, Some(parsl_args.len()), None));
                    parsl_args.push(AppArg::future(&f));
                }
                Kwarg::Data(d) => {
                    slots.push((name, Some(parsl_args.len()), None));
                    parsl_args.push(AppArg::data(&d));
                }
            }
        }

        // Predict output file names from the literal arguments so
        // DataFutures exist before execution. Names that depend on
        // future-valued inputs cannot be predicted — reject loudly.
        let predicted = predict_output_files(&tool, &slots, &workdir, app.engine.as_ref())?;

        // The task body: reconstruct the full input object and run the tool.
        let engine = app.engine.clone();
        let dispatch = app.dispatch.clone();
        let stager = app.stager.clone();
        let obs = app.dfk.observability().clone();
        // Task id for the staging spans' lineage: assigned by submit()
        // below, so the body reads it through a cell. A no-dependency task
        // can race the store and see 0 — spans then record untracked,
        // which is harmless.
        let lineage = Arc::new(AtomicU64::new(0));
        let body_lineage = lineage.clone();
        let body_tool = tool.clone();
        let body_workdir = workdir.clone();
        let body_slots = slots;
        let body = parsl::apps::FnApp::new(move |vals: &[Value]| {
            let mut provided = Map::with_capacity(body_slots.len());
            for (name, fut_idx, literal) in &body_slots {
                let v = match (fut_idx, literal) {
                    (Some(i), _) => vals[*i].clone(),
                    (None, Some(v)) => v.clone(),
                    (None, None) => Value::Null,
                };
                provided.insert(name.clone(), v);
            }
            let ctx = StageCtx {
                stager: &stager,
                obs: &obs,
                lineage: body_lineage.load(Ordering::Acquire),
                parent: 0,
            };
            let run = execute_tool_staged(
                &body_tool,
                &provided,
                &body_workdir,
                engine.as_ref(),
                dispatch.as_ref(),
                Some(&ctx),
            )
            .map_err(TaskError::failed)?;
            Ok(Value::Map(run.outputs))
        });

        let future = match &app.run_tag {
            Some(tag) => app
                .dfk
                .submit_tagged(&app.label, None, parsl_args, body, tag.clone()),
            None => app.dfk.submit(&app.label, parsl_args, body),
        };
        lineage.store(future.id().0, Ordering::Release);
        let outputs = predicted
            .into_iter()
            .map(|path| DataFuture::new(File::new(path), future.clone()))
            .collect();
        Ok(CwlRun {
            future,
            outputs,
            workdir,
        })
    }
}

/// Predict output file paths from literal inputs (plus defaults).
fn predict_output_files(
    tool: &CommandLineTool,
    slots: &[(String, Option<usize>, Option<Value>)],
    workdir: &Path,
    engine: &dyn ExpressionEngine,
) -> Result<Vec<PathBuf>, String> {
    // Literal inputs and defaults are known now.
    let mut known = Map::new();
    for param in &tool.inputs {
        if let Some(default) = &param.default {
            known.insert(param.id.clone(), default.clone());
        }
    }
    for (name, fut_idx, literal) in slots {
        match (fut_idx, literal) {
            (None, Some(v)) => {
                // Normalize literal Files so expressions can use .basename.
                let v = match tool.input(name).map(|p| &p.typ) {
                    Some(t @ (CwlType::File | CwlType::Directory)) => {
                        cwl::input::normalize_value(v, t).unwrap_or_else(|_| v.clone())
                    }
                    _ => v.clone(),
                };
                known.insert(name.clone(), v);
            }
            _ => {
                known.insert(name.clone(), Value::Null);
            }
        }
    }
    let ctx = EvalContext::from_inputs(Value::Map(known));

    let mut files = Vec::new();
    for out in &tool.outputs {
        let name = match &out.typ {
            CwlType::Stdout => tool.stdout.clone(),
            CwlType::Stderr => tool.stderr.clone(),
            _ => out.glob.clone(),
        };
        let Some(name) = name else { continue };
        let resolved = if expr::interp::has_expression(&name) {
            match interpolate(&name, engine, &ctx) {
                Ok(v) if !v.to_display_string().is_empty() && !v.is_null() => v.to_display_string(),
                _ => {
                    return Err(format!(
                        "output {:?} file name {name:?} depends on a future-valued input; \
                         pass that input as a literal so the DataFuture path is known up front",
                        out.id
                    ))
                }
            }
        } else {
            name
        };
        if resolved.contains('*') {
            // Glob patterns cannot be predicted; skip (the value is still
            // available from the app future's output object).
            continue;
        }
        files.push(workdir.join(resolved));
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsl::Config;

    fn fixtures() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
    }

    fn workdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cwlapp-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Listing 2: load echo.cwl, execute with Parsl, read the output file.
    #[test]
    fn listing2_echo() {
        let dir = workdir("echo");
        let dfk = DataFlowKernel::new(Config::local_threads(2));
        let echo = CwlApp::load(
            &dfk,
            fixtures().join("echo.cwl"),
            CwlAppOptions::in_dir(&dir).with_builtin_tools(),
        )
        .unwrap();
        let run = echo
            .call()
            .arg("message", "Hello, World!")
            .stdout("hello.txt")
            .submit()
            .unwrap();
        let file = run.output().result().unwrap();
        assert_eq!(
            std::fs::read_to_string(file.path()).unwrap(),
            "Hello, World!\n"
        );
        let outputs = run.future.result().unwrap();
        assert_eq!(outputs["output"]["basename"].as_str(), Some("hello.txt"));
        dfk.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn default_input_applies() {
        let dir = workdir("default");
        let dfk = DataFlowKernel::new(Config::local_threads(2));
        let echo = CwlApp::load(
            &dfk,
            fixtures().join("echo.cwl"),
            CwlAppOptions::in_dir(&dir).with_builtin_tools(),
        )
        .unwrap();
        let run = echo.call().submit().unwrap();
        let file = run.output().result().unwrap();
        assert_eq!(
            std::fs::read_to_string(file.path()).unwrap(),
            "Hello World\n"
        );
        dfk.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Listing 4: the three-stage image pipeline chained through
    /// DataFutures, all three tasks in flight under one kernel.
    #[test]
    fn listing4_image_pipeline_chained() {
        let dir = workdir("pipeline");
        imaging::write_rimg(dir.join("input.rimg"), &imaging::gradient(32, 32, 9)).unwrap();
        let dfk = DataFlowKernel::new(Config::local_threads(4));
        let opts = || CwlAppOptions::in_dir(&dir).with_builtin_tools();
        let resize = CwlApp::load(&dfk, fixtures().join("resize_image.cwl"), opts()).unwrap();
        let filter = CwlApp::load(&dfk, fixtures().join("filter_image.cwl"), opts()).unwrap();
        let blur = CwlApp::load(&dfk, fixtures().join("blur_image.cwl"), opts()).unwrap();

        let resized = resize
            .call()
            .arg(
                "input_image",
                dir.join("input.rimg").to_string_lossy().into_owned(),
            )
            .arg("size", 16i64)
            .arg("output_image", "resized.rimg")
            .submit()
            .unwrap();
        let filtered = filter
            .call()
            .arg_data("input_image", resized.output())
            .arg("sepia", true)
            .arg("output_image", "filtered.rimg")
            .submit()
            .unwrap();
        let blurred = blur
            .call()
            .arg_data("input_image", filtered.output())
            .arg("radius", 1i64)
            .arg("output_image", "blurred.rimg")
            .submit()
            .unwrap();

        let final_file = blurred.output().result().unwrap();
        let img = imaging::read_rimg(final_file.path()).unwrap();
        assert_eq!((img.width(), img.height()), (16, 16));
        // Dataflow ran three tasks.
        assert_eq!(dfk.monitoring().summary().completed, 3);
        dfk.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_kwarg_rejected_at_call_time() {
        let dir = workdir("badkw");
        let dfk = DataFlowKernel::new(Config::local_threads(1));
        let echo = CwlApp::load(
            &dfk,
            fixtures().join("echo.cwl"),
            CwlAppOptions::in_dir(&dir).with_builtin_tools(),
        )
        .unwrap();
        let err = echo.call().arg("mesage", "typo").submit().unwrap_err();
        assert!(err.contains("no input \"mesage\""), "{err}");
        assert!(err.contains("message"), "should list valid inputs: {err}");
        dfk.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loading_workflow_as_app_fails_clearly() {
        let dir = workdir("wfload");
        let dfk = DataFlowKernel::new(Config::local_threads(1));
        let err = CwlApp::load(
            &dfk,
            fixtures().join("image_pipeline.cwl"),
            CwlAppOptions::in_dir(&dir),
        )
        .unwrap_err();
        assert!(err.contains("not a CommandLineTool"), "{err}");
        dfk.shutdown();
    }

    #[test]
    fn failure_propagates_through_chain() {
        let dir = workdir("failchain");
        let dfk = DataFlowKernel::new(Config::local_threads(2));
        let opts = || CwlAppOptions::in_dir(&dir).with_builtin_tools();
        let resize = CwlApp::load(&dfk, fixtures().join("resize_image.cwl"), opts()).unwrap();
        let blur = CwlApp::load(&dfk, fixtures().join("blur_image.cwl"), opts()).unwrap();
        let r = resize
            .call()
            .arg("input_image", "/ghost.rimg")
            .arg("size", 8i64)
            .arg("output_image", "r.rimg")
            .submit()
            .unwrap();
        let b = blur
            .call()
            .arg_data("input_image", r.output())
            .arg("radius", 1i64)
            .arg("output_image", "b.rimg")
            .submit()
            .unwrap();
        match b.future.result() {
            Err(TaskError::DependencyFailed { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        dfk.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Listing 5 through the app path: inline-Python expression in
    /// `arguments` capitalizes the message.
    #[test]
    fn inline_python_expression_tool() {
        let dir = workdir("inlinepy");
        let dfk = DataFlowKernel::new(Config::local_threads(1));
        let cap = CwlApp::load(
            &dfk,
            fixtures().join("capitalize_message_py.cwl"),
            CwlAppOptions::in_dir(&dir).with_builtin_tools(),
        )
        .unwrap();
        let run = cap
            .call()
            .arg("message", "hello brave new world")
            .submit()
            .unwrap();
        let file = run.output().result().unwrap();
        assert_eq!(
            std::fs::read_to_string(file.path()).unwrap(),
            "Hello Brave New World\n"
        );
        dfk.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn output_prediction_requires_literal_name() {
        let dir = workdir("pred");
        let dfk = DataFlowKernel::new(Config::local_threads(2));
        let opts = || CwlAppOptions::in_dir(&dir).with_builtin_tools();
        let resize = CwlApp::load(&dfk, fixtures().join("resize_image.cwl"), opts()).unwrap();
        // output_image passed as a future → glob cannot be predicted.
        let name_task = dfk.submit(
            "name",
            vec![],
            parsl::apps::FnApp::new(|_| Ok(Value::str("dynamic.rimg"))),
        );
        let err = resize
            .call()
            .arg("input_image", "/x.rimg")
            .arg("size", 8i64)
            .arg_future("output_image", &name_task)
            .submit()
            .unwrap_err();
        assert!(err.contains("depends on a future-valued input"), "{err}");
        dfk.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
