//! Executing complete CWL `Workflow`s on Parsl — the paper's stated future
//! work ("in the future we will extend this integration to support Workflow
//! definitions"), implemented here.
//!
//! The workflow *compiles* onto the dataflow kernel: every step instance
//! (scatter instances individually, subworkflow steps recursively) becomes
//! one Parsl task, and step-to-step `source` wiring becomes future
//! dependencies. Nothing blocks at compile time — the entire graph is
//! submitted up front and Parsl interleaves whatever is ready, exactly the
//! behaviour Listing 4 demonstrates by hand.

use crate::cwlapp::CwlAppOptions;
use cwl::loader::{load_file, resolve_run, CwlDocument};
use cwl::workflow::{Step, Workflow};
use cwlexec::{execute_tool_staged, StageCtx, ToolDispatch};
use datastore::Stager;
use expr::{interpolate, EvalContext, ExpressionEngine, JsCostModel};
use parsl::{AppArg, AppFuture, DataFlowKernel, TaskError};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use yamlite::{Map, Value};

/// A dataflow node: either a known value or (gathered) task futures with an
/// output key to extract.
#[derive(Clone)]
enum Node {
    Lit(Value),
    Fut { fut: AppFuture, key: Option<String> },
    Gather { futs: Vec<AppFuture>, key: String },
}

/// How one tool input gets its value inside the task body.
enum Slot {
    Lit(Value),
    One {
        arg: usize,
        key: Option<String>,
    },
    Many {
        start: usize,
        len: usize,
        key: String,
    },
}

/// Runs CWL workflows on a Parsl kernel.
pub struct ParslWorkflowRunner {
    dfk: Arc<DataFlowKernel>,
    workdir_base: PathBuf,
    dispatch: Arc<dyn ToolDispatch>,
    // Deferred so `new` stays infallible; surfaced by `run`.
    stager: Result<Arc<Stager>, String>,
    /// Service run identity stamped on every submitted task.
    run_tag: Option<parsl::RunTag>,
}

impl ParslWorkflowRunner {
    /// Build a runner over an existing kernel.
    pub fn new(dfk: &Arc<DataFlowKernel>, options: CwlAppOptions) -> Self {
        let dispatch = options.resolve_dispatch();
        let stager = options.resolve_stager();
        Self {
            dfk: dfk.clone(),
            workdir_base: options.workdir_base,
            dispatch,
            stager,
            run_tag: options.run_tag,
        }
    }

    /// The data plane tasks stage through (when the store opened).
    pub fn stager(&self) -> Option<&Arc<Stager>> {
        self.stager.as_ref().ok()
    }

    /// Execute the workflow at `path` with `provided` inputs; blocks until
    /// all tasks finish and returns the workflow output object.
    pub fn run(&self, path: impl AsRef<Path>, provided: &Map) -> Result<Map, String> {
        let path = path.as_ref();
        let doc = load_file(path)?;
        let CwlDocument::Workflow(wf) = doc else {
            return Err(format!("{} is not a Workflow", path.display()));
        };
        let diags = cwl::validate_document(&yamlite::parse_file(path).map_err(|e| e.to_string())?);
        if !cwl::validate::is_valid(&diags) {
            return Err(format!("validation failed: {}", diags[0]));
        }
        let base_dir = path.parent().unwrap_or(Path::new(".")).to_path_buf();
        // A data plane that failed to open fails the run up front, not one
        // task at a time.
        self.stager.as_ref().map_err(|e| e.clone())?;

        let mut given: HashMap<String, Node> = HashMap::new();
        for (k, v) in provided.iter() {
            given.insert(k.to_string(), Node::Lit(v.clone()));
        }
        let outputs = self.compile(&wf, &base_dir, given, "")?;

        // Materialize: wait on every output's futures.
        let mut out = Map::with_capacity(outputs.len());
        for output in &wf.outputs {
            let node = outputs
                .get(&output.id)
                .cloned()
                .ok_or_else(|| format!("internal: output {:?} not compiled", output.id))?;
            out.insert(output.id.clone(), materialize(node)?);
        }
        Ok(out)
    }

    /// Compile a workflow into submitted tasks; returns output nodes.
    fn compile(
        &self,
        wf: &Workflow,
        base_dir: &Path,
        given: HashMap<String, Node>,
        prefix: &str,
    ) -> Result<HashMap<String, Node>, String> {
        // Resolve workflow inputs: literals are normalized now; futures pass
        // through and are checked by the consuming tool.
        let mut values: HashMap<String, Node> = HashMap::new();
        for input in &wf.inputs {
            let node = match given.get(&input.id) {
                Some(Node::Lit(v)) if v.is_null() => default_or_err(input)?,
                Some(Node::Lit(v)) => Node::Lit(
                    cwl::input::normalize_value(v, &input.typ)
                        .map_err(|e| format!("workflow input {:?}: {e}", input.id))?,
                ),
                Some(fut) => fut.clone(),
                None => default_or_err(input)?,
            };
            values.insert(input.id.clone(), node);
        }
        for key in given.keys() {
            if !wf.inputs.iter().any(|i| &i.id == key) {
                return Err(format!("unknown workflow input {key:?}"));
            }
        }

        // Engine for step-level valueFrom expressions.
        let wf_engine: Arc<dyn ExpressionEngine> =
            Arc::from(cwlexec::engine_for(&wf.requirements, JsCostModel::free())?);

        let order = wf.topo_order()?;
        for idx in order {
            let step = &wf.steps[idx];
            let doc =
                resolve_run(&step.run, base_dir).map_err(|e| format!("step {:?}: {e}", step.id))?;
            let step_base = match &step.run {
                cwl::workflow::RunRef::Path(p) => {
                    let p = if Path::new(p).is_absolute() {
                        PathBuf::from(p)
                    } else {
                        base_dir.join(p)
                    };
                    p.parent().unwrap_or(base_dir).to_path_buf()
                }
                cwl::workflow::RunRef::Inline(_) => base_dir.to_path_buf(),
            };

            // Gather this step's input nodes.
            let mut inputs: Vec<(String, Node, Option<String>)> = Vec::new();
            for si in &step.inputs {
                if si.is_multi_source() {
                    return Err(format!(
                        "step {:?} input {:?}: multiple sources (linkMerge) are not \
                         supported by the Parsl workflow compiler; use a single source",
                        step.id, si.id
                    ));
                }
                let node = match &si.source {
                    Some(src) => values.get(src).cloned().ok_or_else(|| {
                        format!(
                            "step {:?} input {:?}: unknown source {src:?}",
                            step.id, si.id
                        )
                    })?,
                    None => Node::Lit(si.default.clone().unwrap_or(Value::Null)),
                };
                // A null from a missing source falls back to the default.
                let node = match (&node, &si.default) {
                    (Node::Lit(Value::Null), Some(d)) => Node::Lit(d.clone()),
                    _ => node,
                };
                inputs.push((si.id.clone(), node, si.value_from.clone()));
            }

            if step.scatter.is_empty() {
                match &doc {
                    CwlDocument::Tool(_) => {
                        let fut = self.submit_step(
                            step,
                            &doc,
                            &step_base,
                            inputs,
                            &wf_engine,
                            &format!("{prefix}{}", step.id),
                        )?;
                        record(step, fut, &mut values, None);
                    }
                    CwlDocument::Workflow(sub) => {
                        // Non-scattered subworkflow: compile recursively so
                        // its steps join the same dataflow graph.
                        if !wf.requirements.subworkflow {
                            return Err(format!(
                                "step {:?} runs a nested workflow but \
                                 SubworkflowFeatureRequirement is absent",
                                step.id
                            ));
                        }
                        if step.when.is_some() {
                            return Err(format!(
                                "step {:?}: `when` on subworkflow steps is not supported \
                                 by the Parsl workflow compiler",
                                step.id
                            ));
                        }
                        let sub_given = apply_value_from_static(inputs, &wf_engine)?;
                        let outs = self.compile(
                            sub,
                            &step_base,
                            sub_given,
                            &format!("{prefix}{}_", step.id),
                        )?;
                        for out_id in &step.out {
                            let node = outs.get(out_id).cloned().ok_or_else(|| {
                                format!("step {:?}: subworkflow lacks output {out_id:?}", step.id)
                            })?;
                            values.insert(format!("{}/{}", step.id, out_id), node);
                        }
                    }
                }
            } else {
                // Scatter: the scattered arrays must be known at compile
                // time (dynamic scatter would need join-app machinery).
                let mut n: Option<usize> = None;
                for target in &step.scatter {
                    let (_, node, _) =
                        inputs
                            .iter()
                            .find(|(id, _, _)| id == target)
                            .ok_or_else(|| {
                                format!("step {:?}: scatter target {target:?} not wired", step.id)
                            })?;
                    let Node::Lit(Value::Seq(arr)) = node else {
                        return Err(format!(
                            "step {:?}: scatter over a dynamic (future-valued) array is not \
                             supported by the Parsl workflow compiler",
                            step.id
                        ));
                    };
                    match n {
                        None => n = Some(arr.len()),
                        Some(m) if m != arr.len() => {
                            return Err(format!(
                                "step {:?}: scatter arrays disagree on length",
                                step.id
                            ))
                        }
                        _ => {}
                    }
                }
                let n = n.ok_or_else(|| format!("step {:?}: empty scatter", step.id))?;
                let mut futs: Vec<AppFuture> = Vec::with_capacity(n);
                let mut sub_outs: Vec<HashMap<String, Node>> = Vec::with_capacity(n);
                for k in 0..n {
                    let instance: Vec<(String, Node, Option<String>)> = inputs
                        .iter()
                        .map(|(id, node, vf)| {
                            let node = if step.scatter.contains(id) {
                                let Node::Lit(Value::Seq(arr)) = node else {
                                    unreachable!()
                                };
                                Node::Lit(arr[k].clone())
                            } else {
                                node.clone()
                            };
                            (id.clone(), node, vf.clone())
                        })
                        .collect();
                    match &doc {
                        CwlDocument::Tool(_) => {
                            let fut = self.submit_step(
                                step,
                                &doc,
                                &step_base,
                                instance,
                                &wf_engine,
                                &format!("{prefix}{}_{k}", step.id),
                            )?;
                            futs.push(fut);
                        }
                        CwlDocument::Workflow(sub) => {
                            if !wf.requirements.subworkflow {
                                return Err(format!(
                                    "step {:?} runs a nested workflow but \
                                     SubworkflowFeatureRequirement is absent",
                                    step.id
                                ));
                            }
                            let sub_given = apply_value_from_static(instance, &wf_engine)?;
                            let outs = self.compile(
                                sub,
                                &step_base,
                                sub_given,
                                &format!("{prefix}{}_{k}_", step.id),
                            )?;
                            sub_outs.push(outs);
                        }
                    }
                }
                if !futs.is_empty() {
                    for out_id in &step.out {
                        values.insert(
                            format!("{}/{}", step.id, out_id),
                            Node::Gather {
                                futs: futs.clone(),
                                key: out_id.clone(),
                            },
                        );
                    }
                } else {
                    // Scattered subworkflow: gather each declared output.
                    for out_id in &step.out {
                        let mut parts = Vec::with_capacity(sub_outs.len());
                        for outs in &sub_outs {
                            parts.push(outs.get(out_id).cloned().ok_or_else(|| {
                                format!("step {:?}: subworkflow lacks output {out_id:?}", step.id)
                            })?);
                        }
                        values.insert(format!("{}/{}", step.id, out_id), gather_nodes(parts)?);
                    }
                }
            }
        }

        // Workflow outputs.
        let mut outputs = HashMap::new();
        for out in &wf.outputs {
            let node = values.get(&out.output_source).cloned().ok_or_else(|| {
                format!("outputSource {:?} was never produced", out.output_source)
            })?;
            outputs.insert(out.id.clone(), node);
        }
        Ok(outputs)
    }

    /// Submit one step instance. Non-scatter subworkflows recurse at
    /// compile time; tools become Parsl tasks.
    fn submit_step(
        &self,
        step: &Step,
        doc: &CwlDocument,
        step_base: &Path,
        inputs: Vec<(String, Node, Option<String>)>,
        wf_engine: &Arc<dyn ExpressionEngine>,
        task_name: &str,
    ) -> Result<AppFuture, String> {
        match doc {
            CwlDocument::Workflow(_) => Err(format!(
                "step {:?}: non-scattered subworkflows should be compiled, not submitted \
                 (internal error)",
                step.id
            )),
            CwlDocument::Tool(tool) => {
                let tool = Arc::new(tool.clone());
                let tool_engine: Arc<dyn ExpressionEngine> = Arc::from(cwlexec::engine_for(
                    &tool.requirements,
                    JsCostModel::free(),
                )?);

                // Translate input nodes into Parsl args + body slots.
                let mut parsl_args: Vec<AppArg> = Vec::new();
                let mut slots: Vec<(String, Slot)> = Vec::new();
                let mut value_froms: Vec<(String, String)> = Vec::new();
                for (id, node, vf) in inputs {
                    if let Some(vf) = vf {
                        value_froms.push((id.clone(), vf));
                    }
                    let slot = match node {
                        Node::Lit(v) => Slot::Lit(v),
                        Node::Fut { fut, key } => {
                            let arg = parsl_args.len();
                            parsl_args.push(AppArg::future(&fut));
                            Slot::One { arg, key }
                        }
                        Node::Gather { futs, key } => {
                            let start = parsl_args.len();
                            let len = futs.len();
                            for f in &futs {
                                parsl_args.push(AppArg::future(f));
                            }
                            Slot::Many { start, len, key }
                        }
                    };
                    slots.push((id, slot));
                }

                let workdir = self.workdir_base.join(task_name);
                let dispatch = self.dispatch.clone();
                let stager = self.stager.as_ref().map_err(|e| e.clone())?.clone();
                let obs = self.dfk.observability().clone();
                // Task id for staging-span lineage, assigned after submit;
                // a racing no-dependency task may read 0 (untracked spans).
                let lineage = Arc::new(AtomicU64::new(0));
                let body_lineage = lineage.clone();
                let wf_engine = wf_engine.clone();
                let step_id = step.id.clone();
                let when = step.when.clone();
                let declared_outs = step.out.clone();
                let _ = step_base;
                let body = parsl::apps::FnApp::new(move |vals: &[Value]| {
                    let mut provided = Map::with_capacity(slots.len());
                    for (id, slot) in &slots {
                        let v = match slot {
                            Slot::Lit(v) => v.clone(),
                            Slot::One { arg, key } => {
                                extract(&vals[*arg], key.as_deref()).map_err(TaskError::failed)?
                            }
                            Slot::Many { start, len, key } => {
                                let mut seq = Vec::with_capacity(*len);
                                for v in &vals[*start..*start + *len] {
                                    seq.push(extract(v, Some(key)).map_err(TaskError::failed)?);
                                }
                                Value::Seq(seq)
                            }
                        };
                        provided.insert(id.clone(), v);
                    }
                    // Step-level valueFrom transforms.
                    let frozen = Value::Map(provided.clone());
                    for (id, vf) in &value_froms {
                        let mut ctx = EvalContext::from_inputs(frozen.clone());
                        ctx.self_ = provided.get(id).cloned().unwrap_or(Value::Null);
                        let v = interpolate(vf, wf_engine.as_ref(), &ctx).map_err(|e| {
                            TaskError::failed(format!(
                                "step {step_id:?} input {id:?} valueFrom: {e}"
                            ))
                        })?;
                        provided.insert(id.clone(), v);
                    }
                    // CWL v1.2 conditional execution: a falsy `when` skips
                    // the tool; outputs become null.
                    if let Some(when) = &when {
                        let ctx = EvalContext::from_inputs(Value::Map(provided.clone()));
                        let verdict = interpolate(when, wf_engine.as_ref(), &ctx).map_err(|e| {
                            TaskError::failed(format!("step {step_id:?} when: {e}"))
                        })?;
                        if !verdict.truthy() {
                            let mut skipped = Map::with_capacity(declared_outs.len());
                            for out_id in &declared_outs {
                                skipped.insert(out_id.clone(), Value::Null);
                            }
                            return Ok(Value::Map(skipped));
                        }
                    }
                    let ctx = StageCtx {
                        stager: &stager,
                        obs: &obs,
                        lineage: body_lineage.load(Ordering::Acquire),
                        parent: 0,
                    };
                    let run = execute_tool_staged(
                        &tool,
                        &provided,
                        &workdir,
                        tool_engine.as_ref(),
                        dispatch.as_ref(),
                        Some(&ctx),
                    )
                    .map_err(|e| TaskError::failed(format!("step {step_id:?}: {e}")))?;
                    Ok(Value::Map(run.outputs))
                });
                // `submit_bound` joins the Parsl task id to the CWL step id
                // in both the lineage table and the checkpoint journal
                // before the task can launch — binding after submit races a
                // fast worker journaling a step-less record. Scatter
                // instances share the step id; the task label keeps the
                // per-instance index.
                let fut = match &self.run_tag {
                    Some(tag) => self.dfk.submit_tagged(
                        task_name,
                        Some(&step.id),
                        parsl_args,
                        body,
                        tag.clone(),
                    ),
                    None => self
                        .dfk
                        .submit_bound(task_name, Some(&step.id), parsl_args, body),
                };
                lineage.store(fut.id().0, Ordering::Release);
                Ok(fut)
            }
        }
    }
}

/// Record a step's output futures under `step/out` keys.
fn record(step: &Step, fut: AppFuture, values: &mut HashMap<String, Node>, _k: Option<usize>) {
    for out_id in &step.out {
        values.insert(
            format!("{}/{}", step.id, out_id),
            Node::Fut {
                fut: fut.clone(),
                key: Some(out_id.clone()),
            },
        );
    }
}

fn default_or_err(input: &cwl::workflow::WorkflowInput) -> Result<Node, String> {
    if let Some(d) = &input.default {
        return Ok(Node::Lit(
            cwl::input::normalize_value(d, &input.typ)
                .map_err(|e| format!("workflow input {:?}: {e}", input.id))?,
        ));
    }
    if input.typ.allows_null() {
        return Ok(Node::Lit(Value::Null));
    }
    Err(format!("missing required workflow input {:?}", input.id))
}

/// Extract an output by key from a task's output object.
fn extract(v: &Value, key: Option<&str>) -> Result<Value, String> {
    match key {
        None => Ok(v.clone()),
        Some(k) => v
            .get(k)
            .cloned()
            .ok_or_else(|| format!("upstream task did not produce output {k:?}")),
    }
}

/// Apply valueFrom transforms whose inputs are fully static (used when
/// feeding literal scatter elements into a subworkflow).
fn apply_value_from_static(
    inputs: Vec<(String, Node, Option<String>)>,
    engine: &Arc<dyn ExpressionEngine>,
) -> Result<HashMap<String, Node>, String> {
    let mut literal = Map::new();
    let mut any_future = false;
    for (id, node, _) in &inputs {
        match node {
            Node::Lit(v) => {
                literal.insert(id.clone(), v.clone());
            }
            _ => any_future = true,
        }
    }
    let frozen = Value::Map(literal.clone());
    let mut out = HashMap::new();
    for (id, node, vf) in inputs {
        let node = match (&node, vf) {
            (Node::Lit(v), Some(vf)) => {
                let mut ctx = EvalContext::from_inputs(frozen.clone());
                ctx.self_ = v.clone();
                Node::Lit(
                    interpolate(&vf, engine.as_ref(), &ctx)
                        .map_err(|e| format!("input {id:?} valueFrom: {e}"))?,
                )
            }
            (_, Some(_)) if any_future => {
                return Err(format!(
                    "input {id:?}: valueFrom on future-valued subworkflow inputs is not supported"
                ))
            }
            _ => node,
        };
        out.insert(id, node);
    }
    Ok(out)
}

/// Combine per-instance subworkflow output nodes into one gathered node.
fn gather_nodes(parts: Vec<Node>) -> Result<Node, String> {
    // All-literal parts collapse to a literal array; future-valued parts
    // must share the extraction shape.
    if parts.iter().all(|p| matches!(p, Node::Lit(_))) {
        let vals = parts
            .into_iter()
            .map(|p| match p {
                Node::Lit(v) => v,
                _ => unreachable!(),
            })
            .collect();
        return Ok(Node::Lit(Value::Seq(vals)));
    }
    let mut futs = Vec::with_capacity(parts.len());
    let mut shared_key: Option<String> = None;
    for p in parts {
        match p {
            Node::Fut { fut, key } => {
                match (&shared_key, key) {
                    (None, Some(k)) => shared_key = Some(k),
                    (Some(a), Some(b)) if *a == b => {}
                    (_, k) => {
                        return Err(format!(
                            "cannot gather subworkflow outputs with mixed keys ({shared_key:?} vs {k:?})"
                        ))
                    }
                }
                futs.push(fut);
            }
            other => {
                let _ = other;
                return Err(
                    "cannot gather a mix of literal and future subworkflow outputs".to_string(),
                );
            }
        }
    }
    Ok(Node::Gather {
        futs,
        key: shared_key.ok_or("gather requires an output key")?,
    })
}

/// Wait for a node's futures and produce its final value.
fn materialize(node: Node) -> Result<Value, String> {
    match node {
        Node::Lit(v) => Ok(v),
        Node::Fut { fut, key } => {
            let v = fut.result().map_err(|e| e.to_string())?;
            extract(&v, key.as_deref())
        }
        Node::Gather { futs, key } => {
            let mut out = Vec::with_capacity(futs.len());
            for fut in futs {
                let v = fut.result().map_err(|e| e.to_string())?;
                out.push(extract(&v, Some(&key))?);
            }
            Ok(Value::Seq(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsl::Config;

    fn fixtures() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
    }

    fn workdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("wfrunner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn as_map(v: Value) -> Map {
        match v {
            Value::Map(m) => m,
            _ => unreachable!(),
        }
    }

    #[test]
    fn runs_listing3_pipeline() {
        let dir = workdir("pipe");
        imaging::write_rimg(dir.join("in.rimg"), &imaging::gradient(32, 32, 4)).unwrap();
        let dfk = DataFlowKernel::new(Config::local_threads(4));
        let runner =
            ParslWorkflowRunner::new(&dfk, CwlAppOptions::in_dir(&dir).with_builtin_tools());
        let outputs = runner
            .run(
                fixtures().join("image_pipeline.cwl"),
                &as_map(yamlite::vmap! {
                    "input_image" => dir.join("in.rimg").to_string_lossy().into_owned(),
                    "size" => 16i64,
                    "sepia" => true,
                    "radius" => 1i64,
                }),
            )
            .unwrap();
        let img = imaging::read_rimg(
            outputs.get("final_output").unwrap()["path"]
                .as_str()
                .unwrap(),
        )
        .unwrap();
        assert_eq!((img.width(), img.height()), (16, 16));
        assert_eq!(dfk.monitoring().summary().completed, 3);
        dfk.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn runs_scattered_subworkflow() {
        let dir = workdir("scatter");
        let mut paths = Vec::new();
        for i in 0..3 {
            let p = dir.join(format!("img{i}.rimg"));
            imaging::write_rimg(&p, &imaging::gradient(24, 24, i as u64)).unwrap();
            paths.push(Value::str(p.to_string_lossy().into_owned()));
        }
        let dfk = DataFlowKernel::new(Config::local_threads(4));
        let runner =
            ParslWorkflowRunner::new(&dfk, CwlAppOptions::in_dir(&dir).with_builtin_tools());
        let outputs = runner
            .run(
                fixtures().join("scatter_images.cwl"),
                &as_map(yamlite::vmap! {
                    "input_images" => Value::Seq(paths),
                    "size" => 12i64,
                    "sepia" => false,
                    "radius" => 1i64,
                }),
            )
            .unwrap();
        let outs = outputs.get("final_outputs").unwrap().as_seq().unwrap();
        assert_eq!(outs.len(), 3);
        for o in outs {
            let img = imaging::read_rimg(o["path"].as_str().unwrap()).unwrap();
            assert_eq!((img.width(), img.height()), (12, 12));
        }
        // 3 images × 3 stages = 9 Parsl tasks.
        assert_eq!(dfk.monitoring().summary().completed, 9);
        dfk.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn runs_word_scatter_python() {
        let dir = workdir("words");
        let dfk = DataFlowKernel::new(Config::local_threads(4));
        let runner =
            ParslWorkflowRunner::new(&dfk, CwlAppOptions::in_dir(&dir).with_builtin_tools());
        let words: Vec<Value> = ["alpha", "beta", "gamma"]
            .iter()
            .map(|w| Value::str(*w))
            .collect();
        let outputs = runner
            .run(
                fixtures().join("scatter_words_py.cwl"),
                &as_map(yamlite::vmap! {"words" => Value::Seq(words)}),
            )
            .unwrap();
        let files = outputs.get("capitalized").unwrap().as_seq().unwrap();
        assert_eq!(files.len(), 3);
        let texts: Vec<String> = files
            .iter()
            .map(|f| std::fs::read_to_string(f["path"].as_str().unwrap()).unwrap())
            .collect();
        assert_eq!(texts, vec!["Alpha\n", "Beta\n", "Gamma\n"]);
        dfk.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_input_rejected() {
        let dir = workdir("missing");
        let dfk = DataFlowKernel::new(Config::local_threads(1));
        let runner =
            ParslWorkflowRunner::new(&dfk, CwlAppOptions::in_dir(&dir).with_builtin_tools());
        let err = runner
            .run(fixtures().join("image_pipeline.cwl"), &Map::new())
            .unwrap_err();
        assert!(err.contains("missing required workflow input"), "{err}");
        dfk.shutdown();
    }

    #[test]
    fn tool_file_rejected() {
        let dir = workdir("tool");
        let dfk = DataFlowKernel::new(Config::local_threads(1));
        let runner =
            ParslWorkflowRunner::new(&dfk, CwlAppOptions::in_dir(&dir).with_builtin_tools());
        let err = runner
            .run(fixtures().join("echo.cwl"), &Map::new())
            .unwrap_err();
        assert!(err.contains("not a Workflow"), "{err}");
        dfk.shutdown();
    }
}
