//! `cwl_parsl` — the paper's contribution: the integration of CWL and Parsl.
//!
//! Three pieces (paper §III–§V):
//!
//! * [`CwlApp`] — *importing tool definitions*: load a CWL
//!   `CommandLineTool` and call it like any other Parsl app. Inputs are
//!   keyword arguments; `File`-typed inputs accept paths or upstream
//!   [`parsl::DataFuture`]s; every declared file output comes back as a
//!   `DataFuture` that downstream apps (CWL or not) can consume without
//!   waiting (§III-A, Listings 1–2);
//! * [`config`] — the TaPS-style YAML configuration the `parsl-cwl` runner
//!   uses to pick an executor/provider (§III-B), plus the runner library
//!   behind the `parsl-cwl` binary;
//! * [`wfrunner`] — the paper's stated future work, implemented here as an
//!   extension: executing a complete CWL `Workflow` (including scatter and
//!   subworkflows) on Parsl's dataflow kernel, one Parsl task per step
//!   instance with dependencies expressed as futures.
//!
//! Inline-Python expressions (§V) flow in through the `cwl`/`expr` crates:
//! any document carrying `InlinePythonRequirement` gets its expressions
//! evaluated in-process by the Python-subset interpreter.

pub mod checkpoint;
pub mod config;
pub mod cwlapp;
pub mod lint;
pub mod proto;
pub mod runner;
pub mod wfrunner;

pub use config::{load_config_file, load_config_value, RunnerConfig, ServeSettings};
pub use cwlapp::{CwlApp, CwlAppOptions, CwlInvocation, CwlRun};
pub use runner::{run_tool_cli, run_tool_cli_resumable, CkptReport, CliOutcome};
pub use wfrunner::ParslWorkflowRunner;
