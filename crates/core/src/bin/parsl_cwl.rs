//! `parsl-cwl` — the Parsl CWL runner command (paper §III-B).
//!
//! ```text
//! parsl-cwl <config.yml> <doc.cwl> [inputs.yml] [--key=value ...]
//! parsl-cwl --validate <doc.cwl>
//! ```

use cwl_parsl::{load_config_file, run_tool_cli};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("parsl-cwl: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    if args.first().map(String::as_str) == Some("--validate") {
        let path = args.get(1).ok_or("usage: parsl-cwl --validate <doc.cwl>")?;
        let doc = yamlite::parse_file(path).map_err(|e| e.to_string())?;
        let diags = cwl::validate_document(&doc);
        for d in &diags {
            println!("{d}");
        }
        return if cwl::validate::is_valid(&diags) {
            println!("{path}: valid");
            Ok(())
        } else {
            Err(format!("{path} failed validation"))
        };
    }

    let usage = "usage: parsl-cwl <config.yml> <doc.cwl> [inputs.yml] [--key=value ...]";
    let config_path = args.first().ok_or(usage)?;
    let cwl_path = args.get(1).ok_or(usage)?;
    let mut inputs_file: Option<PathBuf> = None;
    let mut overrides = Vec::new();
    for arg in &args[2..] {
        if arg.starts_with("--") {
            overrides.push(arg.clone());
        } else if inputs_file.is_none() {
            inputs_file = Some(PathBuf::from(arg));
        } else {
            return Err(format!("unexpected argument {arg:?}\n{usage}"));
        }
    }

    let config = load_config_file(config_path)?;
    let override_map = cwl_parsl::runner::parse_overrides(&overrides)?;
    let inputs = cwl_parsl::runner::load_inputs(inputs_file.as_deref(), &override_map)?;
    let outcome = run_tool_cli(config, std::path::Path::new(cwl_path), &inputs)?;

    println!(
        "{}",
        yamlite::to_string(&yamlite::Value::Map(outcome.outputs)).trim_end()
    );
    eprintln!(
        "parsl-cwl: {} task(s) completed; workdir {}",
        outcome.tasks,
        outcome.workdir.display()
    );
    if let Some(trace) = &outcome.trace {
        eprintln!(
            "parsl-cwl: trace written to {} (inspect with parsl-trace)",
            trace.display()
        );
    }
    Ok(())
}
