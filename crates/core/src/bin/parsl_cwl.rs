//! `parsl-cwl` — the Parsl CWL runner command (paper §III-B).
//!
//! ```text
//! parsl-cwl <config.yml> <doc.cwl> [inputs.yml] [--key=value ...]
//! parsl-cwl <config.yml> <doc.cwl> --resume <run-dir> [inputs...]
//! parsl-cwl --validate <doc.cwl>
//! parsl-cwl submit|status|logs|cancel|drain <config.yml> ...   (service client)
//! ```

use cwl_parsl::proto::{self, obj, s};
use cwl_parsl::{load_config_file, run_tool_cli_resumable};
use obs::json::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: parsl-cwl <config.yml> <doc.cwl> [inputs.yml] [--key=value ...]
       parsl-cwl <config.yml> <doc.cwl> --resume <run-dir> [inputs.yml] [--key=value ...]
       parsl-cwl --validate <doc.cwl>
       parsl-cwl submit <config.yml> <doc.cwl> [inputs.yml] [--key=value ...] [--tenant=NAME]
       parsl-cwl status <config.yml> [run-id]
       parsl-cwl logs   <config.yml> <run-id>
       parsl-cwl cancel <config.yml> <run-id>
       parsl-cwl drain  <config.yml> [--wait]

options:
  --resume <run-dir>   resume a crashed run from its checkpoint journal
                       (<run-dir> is the journal directory, the workdir
                       containing ckpt/, or the journal file itself);
                       requires a `checkpoint:` block in the config
  --validate <doc>     statically validate a CWL document and exit
  --help               print this message

The submit/status/logs/cancel/drain subcommands talk to a running
`parsl-serve` daemon over the Unix socket the config's `serve:` block
names (default <run.workdir>/serve.sock).

Input overrides are written --key=value (values parse as YAML scalars).
Flags not listed above and not of --key=value form are rejected.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("parsl-cwl: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err(USAGE.to_string());
    }
    if args.first().map(String::as_str) == Some("--help") {
        println!("{USAGE}");
        return Ok(());
    }
    match args.first().map(String::as_str) {
        Some("submit") => return client_submit(&args[1..]),
        Some("status") => return client_status(&args[1..]),
        Some("logs") => return client_logs(&args[1..]),
        Some("cancel") => return client_cancel(&args[1..]),
        Some("drain") => return client_drain(&args[1..]),
        _ => {}
    }
    if args.first().map(String::as_str) == Some("--validate") {
        let path = args.get(1).ok_or("usage: parsl-cwl --validate <doc.cwl>")?;
        let doc = yamlite::parse_file(path).map_err(|e| e.to_string())?;
        let diags = cwl::validate_document(&doc);
        for d in &diags {
            println!("{d}");
        }
        return if cwl::validate::is_valid(&diags) {
            println!("{path}: valid");
            Ok(())
        } else {
            Err(format!("{path} failed validation"))
        };
    }

    let config_path = args.first().ok_or(USAGE)?;
    let cwl_path = args.get(1).ok_or(USAGE)?;
    let mut inputs_file: Option<PathBuf> = None;
    let mut overrides = Vec::new();
    let mut resume: Option<PathBuf> = None;
    let mut rest = args[2..].iter();
    while let Some(arg) = rest.next() {
        if let Some(value) = arg.strip_prefix("--resume=") {
            resume = Some(PathBuf::from(value));
        } else if arg == "--resume" {
            let value = rest
                .next()
                .ok_or(format!("--resume needs a run directory\n{USAGE}"))?;
            resume = Some(PathBuf::from(value));
        } else if arg == "--help" {
            println!("{USAGE}");
            return Ok(());
        } else if let Some(flag) = arg.strip_prefix("--") {
            // Only --key=value input overrides remain legal; a bare flag
            // here is a typo'd option, not an input, and silently treating
            // it as one hid mistakes like `--resume` without a checkpoint.
            if !flag.contains('=') {
                return Err(format!("unknown flag {arg:?}\n{USAGE}"));
            }
            overrides.push(arg.clone());
        } else if inputs_file.is_none() {
            inputs_file = Some(PathBuf::from(arg));
        } else {
            return Err(format!("unexpected argument {arg:?}\n{USAGE}"));
        }
    }

    let config = load_config_file(config_path)?;
    let override_map = cwl_parsl::runner::parse_overrides(&overrides)?;
    let inputs = cwl_parsl::runner::load_inputs(inputs_file.as_deref(), &override_map)?;
    let outcome = run_tool_cli_resumable(
        config,
        std::path::Path::new(cwl_path),
        &inputs,
        resume.as_deref(),
    )?;

    println!(
        "{}",
        yamlite::to_string(&yamlite::Value::Map(outcome.outputs)).trim_end()
    );
    eprintln!(
        "parsl-cwl: {} task(s) completed; workdir {}",
        outcome.tasks,
        outcome.workdir.display()
    );
    if let Some(ckpt) = &outcome.ckpt {
        eprintln!(
            "parsl-cwl: checkpoint journal {} ({} replayed, {} appended, {} invalidated{}{})",
            ckpt.journal.display(),
            ckpt.replayed,
            ckpt.appended,
            ckpt.invalidated,
            if ckpt.torn {
                ", torn tail truncated"
            } else {
                ""
            },
            if ckpt.stale {
                ", stale journal set aside"
            } else {
                ""
            },
        );
    }
    if let Some(trace) = &outcome.trace {
        eprintln!(
            "parsl-cwl: trace written to {} (inspect with parsl-trace)",
            trace.display()
        );
    }
    Ok(())
}

/// The daemon socket a config implies (client side of the service).
fn socket_from_config(config_path: &str) -> Result<PathBuf, String> {
    let config = load_config_file(config_path)?;
    Ok(config.serve.socket_path(&config.workdir))
}

/// `parsl-cwl submit <config.yml> <doc.cwl> [inputs.yml] [--key=value ...]
/// [--tenant=NAME]` — submit a workflow to a running daemon.
fn client_submit(args: &[String]) -> Result<(), String> {
    let config_path = args.first().ok_or(USAGE)?;
    let cwl_path = args.get(1).ok_or(USAGE)?;
    let mut inputs_file: Option<PathBuf> = None;
    let mut overrides = Vec::new();
    let mut tenant = "default".to_string();
    for arg in &args[2..] {
        if let Some(name) = arg.strip_prefix("--tenant=") {
            tenant = name.to_string();
        } else if let Some(flag) = arg.strip_prefix("--") {
            if !flag.contains('=') {
                return Err(format!("unknown flag {arg:?}\n{USAGE}"));
            }
            overrides.push(arg.clone());
        } else if inputs_file.is_none() {
            inputs_file = Some(PathBuf::from(arg));
        } else {
            return Err(format!("unexpected argument {arg:?}\n{USAGE}"));
        }
    }
    let socket = socket_from_config(config_path)?;
    let override_map = cwl_parsl::runner::parse_overrides(&overrides)?;
    let inputs = cwl_parsl::runner::load_inputs(inputs_file.as_deref(), &override_map)?;
    // Absolute path: the daemon resolves paths in its own cwd.
    let cwl_abs = Path::new(cwl_path)
        .canonicalize()
        .map_err(|e| format!("{cwl_path}: {e}"))?;
    let req = obj(vec![
        ("cmd", s("submit")),
        ("cwl", s(cwl_abs.display().to_string())),
        ("inputs", proto::yaml_to_json(&yamlite::Value::Map(inputs))),
        ("tenant", s(tenant)),
    ]);
    let resp = proto::request(&socket, &req)?;
    let run = resp.get("run").and_then(Json::as_u64).unwrap_or(0);
    let dir = resp.get("run_dir").and_then(Json::as_str).unwrap_or("");
    println!("run {run} submitted ({dir})");
    Ok(())
}

/// Render one status entry as a stable, grep-friendly line.
/// Print a line, tolerating a closed stdout (`status | head` must not
/// panic the client on EPIPE).
fn out_line(line: std::fmt::Arguments<'_>) {
    use std::io::Write;
    let _ = writeln!(std::io::stdout(), "{line}");
}

fn print_run_line(run: &Json) {
    let id = run.get("run").and_then(Json::as_u64).unwrap_or(0);
    let tenant = run.get("tenant").and_then(Json::as_str).unwrap_or("?");
    let state = run.get("state").and_then(Json::as_str).unwrap_or("?");
    let replayed = run.get("replayed").and_then(Json::as_u64).unwrap_or(0);
    let appended = run.get("appended").and_then(Json::as_u64).unwrap_or(0);
    let error = run
        .get("error")
        .and_then(Json::as_str)
        .map(|e| format!(" error={e:?}"))
        .unwrap_or_default();
    out_line(format_args!(
        "run {id} tenant={tenant} state={state} replayed={replayed} appended={appended}{error}"
    ));
}

/// `parsl-cwl status <config.yml> [run-id]`
fn client_status(args: &[String]) -> Result<(), String> {
    let config_path = args.first().ok_or(USAGE)?;
    let socket = socket_from_config(config_path)?;
    let mut fields = vec![("cmd", s("status"))];
    if let Some(id) = args.get(1) {
        let id: u64 = id.parse().map_err(|_| format!("bad run id {id:?}"))?;
        fields.push(("run", Json::Num(id as f64)));
    }
    let resp = proto::request(&socket, &obj(fields))?;
    if let Some(runs) = resp.get("runs").and_then(Json::as_arr) {
        for run in runs {
            print_run_line(run);
        }
    }
    let active = resp.get("active").and_then(Json::as_u64).unwrap_or(0);
    let queued = resp.get("queued").and_then(Json::as_u64).unwrap_or(0);
    out_line(format_args!("active {active} queued {queued}"));
    Ok(())
}

/// `parsl-cwl logs <config.yml> <run-id>`
fn client_logs(args: &[String]) -> Result<(), String> {
    let config_path = args.first().ok_or(USAGE)?;
    let id: u64 = args
        .get(1)
        .ok_or(USAGE)?
        .parse()
        .map_err(|_| "bad run id".to_string())?;
    let socket = socket_from_config(config_path)?;
    let req = obj(vec![("cmd", s("logs")), ("run", Json::Num(id as f64))]);
    let resp = proto::request(&socket, &req)?;
    print_run_line(&resp);
    if let Some(dir) = resp.get("run_dir").and_then(Json::as_str) {
        out_line(format_args!("run_dir {dir}"));
    }
    if let Some(outputs) = resp.get("outputs") {
        out_line(format_args!(
            "outputs:\n{}",
            yamlite::to_string(&proto::json_to_yaml(outputs)).trim_end()
        ));
    }
    if let Some(files) = resp.get("files").and_then(Json::as_arr) {
        for f in files {
            if let Some(name) = f.as_str() {
                out_line(format_args!("file {name}"));
            }
        }
    }
    Ok(())
}

/// `parsl-cwl cancel <config.yml> <run-id>`
fn client_cancel(args: &[String]) -> Result<(), String> {
    let config_path = args.first().ok_or(USAGE)?;
    let id: u64 = args
        .get(1)
        .ok_or(USAGE)?
        .parse()
        .map_err(|_| "bad run id".to_string())?;
    let socket = socket_from_config(config_path)?;
    let req = obj(vec![("cmd", s("cancel")), ("run", Json::Num(id as f64))]);
    let resp = proto::request(&socket, &req)?;
    match resp.get("cancelled") {
        Some(Json::Bool(true)) => {
            println!("run {id} cancelled");
            Ok(())
        }
        _ => Err(format!("unknown run {id}")),
    }
}

/// `parsl-cwl drain <config.yml> [--wait]` — stop admissions; with
/// `--wait`, poll until the daemon finishes every run and exits.
fn client_drain(args: &[String]) -> Result<(), String> {
    let config_path = args.first().ok_or(USAGE)?;
    let wait = match args.get(1).map(String::as_str) {
        None => false,
        Some("--wait") => true,
        Some(other) => return Err(format!("unexpected argument {other:?}\n{USAGE}")),
    };
    let socket = socket_from_config(config_path)?;
    let resp = proto::request(&socket, &obj(vec![("cmd", s("drain"))]))?;
    let active = resp.get("active").and_then(Json::as_u64).unwrap_or(0);
    let queued = resp.get("queued").and_then(Json::as_u64).unwrap_or(0);
    println!("draining ({active} active, {queued} queued)");
    if !wait {
        return Ok(());
    }
    loop {
        std::thread::sleep(std::time::Duration::from_millis(300));
        let status = match proto::request(&socket, &obj(vec![("cmd", s("status"))])) {
            Ok(v) => v,
            // The daemon removes its socket and exits once drained.
            Err(_) => break,
        };
        let active = status.get("active").and_then(Json::as_u64).unwrap_or(0);
        let queued = status.get("queued").and_then(Json::as_u64).unwrap_or(0);
        if active == 0 && queued == 0 {
            break;
        }
    }
    println!("drained");
    Ok(())
}
