//! `parsl-cwl` — the Parsl CWL runner command (paper §III-B).
//!
//! ```text
//! parsl-cwl <config.yml> <doc.cwl> [inputs.yml] [--key=value ...]
//! parsl-cwl <config.yml> <doc.cwl> --resume <run-dir> [inputs...]
//! parsl-cwl --validate <doc.cwl>
//! ```

use cwl_parsl::{load_config_file, run_tool_cli_resumable};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: parsl-cwl <config.yml> <doc.cwl> [inputs.yml] [--key=value ...]
       parsl-cwl <config.yml> <doc.cwl> --resume <run-dir> [inputs.yml] [--key=value ...]
       parsl-cwl --validate <doc.cwl>

options:
  --resume <run-dir>   resume a crashed run from its checkpoint journal
                       (<run-dir> is the journal directory, the workdir
                       containing ckpt/, or the journal file itself);
                       requires a `checkpoint:` block in the config
  --validate <doc>     statically validate a CWL document and exit
  --help               print this message

Input overrides are written --key=value (values parse as YAML scalars).
Flags not listed above and not of --key=value form are rejected.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("parsl-cwl: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err(USAGE.to_string());
    }
    if args.first().map(String::as_str) == Some("--help") {
        println!("{USAGE}");
        return Ok(());
    }
    if args.first().map(String::as_str) == Some("--validate") {
        let path = args.get(1).ok_or("usage: parsl-cwl --validate <doc.cwl>")?;
        let doc = yamlite::parse_file(path).map_err(|e| e.to_string())?;
        let diags = cwl::validate_document(&doc);
        for d in &diags {
            println!("{d}");
        }
        return if cwl::validate::is_valid(&diags) {
            println!("{path}: valid");
            Ok(())
        } else {
            Err(format!("{path} failed validation"))
        };
    }

    let config_path = args.first().ok_or(USAGE)?;
    let cwl_path = args.get(1).ok_or(USAGE)?;
    let mut inputs_file: Option<PathBuf> = None;
    let mut overrides = Vec::new();
    let mut resume: Option<PathBuf> = None;
    let mut rest = args[2..].iter();
    while let Some(arg) = rest.next() {
        if let Some(value) = arg.strip_prefix("--resume=") {
            resume = Some(PathBuf::from(value));
        } else if arg == "--resume" {
            let value = rest
                .next()
                .ok_or(format!("--resume needs a run directory\n{USAGE}"))?;
            resume = Some(PathBuf::from(value));
        } else if arg == "--help" {
            println!("{USAGE}");
            return Ok(());
        } else if let Some(flag) = arg.strip_prefix("--") {
            // Only --key=value input overrides remain legal; a bare flag
            // here is a typo'd option, not an input, and silently treating
            // it as one hid mistakes like `--resume` without a checkpoint.
            if !flag.contains('=') {
                return Err(format!("unknown flag {arg:?}\n{USAGE}"));
            }
            overrides.push(arg.clone());
        } else if inputs_file.is_none() {
            inputs_file = Some(PathBuf::from(arg));
        } else {
            return Err(format!("unexpected argument {arg:?}\n{USAGE}"));
        }
    }

    let config = load_config_file(config_path)?;
    let override_map = cwl_parsl::runner::parse_overrides(&overrides)?;
    let inputs = cwl_parsl::runner::load_inputs(inputs_file.as_deref(), &override_map)?;
    let outcome = run_tool_cli_resumable(
        config,
        std::path::Path::new(cwl_path),
        &inputs,
        resume.as_deref(),
    )?;

    println!(
        "{}",
        yamlite::to_string(&yamlite::Value::Map(outcome.outputs)).trim_end()
    );
    eprintln!(
        "parsl-cwl: {} task(s) completed; workdir {}",
        outcome.tasks,
        outcome.workdir.display()
    );
    if let Some(ckpt) = &outcome.ckpt {
        eprintln!(
            "parsl-cwl: checkpoint journal {} ({} replayed, {} appended, {} invalidated{}{})",
            ckpt.journal.display(),
            ckpt.replayed,
            ckpt.appended,
            ckpt.invalidated,
            if ckpt.torn {
                ", torn tail truncated"
            } else {
                ""
            },
            if ckpt.stale {
                ", stale journal set aside"
            } else {
                ""
            },
        );
    }
    if let Some(trace) = &outcome.trace {
        eprintln!(
            "parsl-cwl: trace written to {} (inspect with parsl-trace)",
            trace.display()
        );
    }
    Ok(())
}
