//! `parsl-lint` — static type-checker for parsl-cwl run configs.
//!
//! ```text
//! parsl-lint [--json] [--strict] [-q] <file-or-dir>...
//! ```
//!
//! Checks every config against the loader's schema (unknown keys with
//! did-you-mean, invalid values, invalid combinations, unreachable staging
//! dirs, no-effect settings) and runs cross-file checks over the whole set
//! (two configs sharing one checkpoint dir). Directories are scanned
//! non-recursively for `*.yml` / `*.yaml`; files carrying a CWL `class:`
//! key are skipped (those belong to `cwl-check`). Exit status: 0 clean,
//! 1 findings, 2 usage error.

use cwl::analyze::diag::{codes, Diag, Report};
use cwl::validate::Severity;
use cwl_parsl::lint::{cross_file_checks, lint_value};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use yamlite::{SpanIndex, Value};

const USAGE: &str = "usage: parsl-lint [--json] [--strict] [-q] <file-or-dir>...

  --json    emit one JSON report object per file
  --strict  treat warnings as failures
  -q        suppress per-file OK lines";

fn main() -> ExitCode {
    let mut json = false;
    let mut strict = false;
    let mut quiet = false;
    let mut targets: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--strict" => strict = true,
            "-q" | "--quiet" => quiet = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("parsl-lint: unknown flag {flag:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            path => targets.push(PathBuf::from(path)),
        }
    }
    if targets.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for target in &targets {
        if target.is_dir() {
            match collect_dir(target) {
                Ok(mut found) => files.append(&mut found),
                Err(e) => {
                    eprintln!(
                        "parsl-lint: cannot read directory {}: {e}",
                        target.display()
                    );
                    return ExitCode::from(2);
                }
            }
        } else {
            files.push(target.clone());
        }
    }
    files.sort();

    // Per-file lint, keeping parsed docs around for the cross-file pass.
    let mut checked: Vec<(PathBuf, Value, SpanIndex, Report)> = Vec::new();
    for file in files {
        let mut report = Report::new();
        report.file = Some(file.display().to_string());
        match std::fs::read_to_string(&file) {
            Err(e) => {
                report.diags.push(Diag {
                    code: codes::YAML_PARSE,
                    severity: Severity::Error,
                    path: String::new(),
                    position: None,
                    message: format!("cannot read {}: {e}", file.display()),
                    file: None,
                });
                checked.push((file, Value::Null, SpanIndex::default(), report));
            }
            Ok(text) => match yamlite::parse_str_spanned(&text) {
                Err(e) => {
                    report.diags.push(Diag {
                        code: codes::YAML_PARSE,
                        severity: Severity::Error,
                        path: String::new(),
                        position: Some(e.position),
                        message: e.message,
                        file: None,
                    });
                    checked.push((file, Value::Null, SpanIndex::default(), report));
                }
                Ok((doc, spans)) => {
                    if doc.get("class").is_some() {
                        continue; // a CWL document: cwl-check's jurisdiction
                    }
                    lint_value(&doc, &spans, &mut report);
                    checked.push((file, doc, spans, report));
                }
            },
        }
    }
    cross_file_checks(&mut checked);

    let mut failed = false;
    for (file, _, _, mut report) in checked {
        report.sort();
        failed |= !report.is_clean(strict);
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render_text());
            if report.diags.is_empty() && !quiet {
                println!("{}: OK", file.display());
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn collect_dir(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        if path.is_file() && matches!(ext, "yml" | "yaml") {
            out.push(path);
        }
    }
    Ok(out)
}
