//! Wire protocol for the `parsl-serve` daemon.
//!
//! Submissions and control commands travel over a Unix-domain socket as
//! length-prefixed JSON frames: a 4-byte big-endian payload length
//! followed by a UTF-8 JSON object. Requests carry a `cmd` field
//! (`submit`, `status`, `logs`, `cancel`, `drain`, `ping`); responses
//! carry `ok: true` plus command-specific fields, or `ok: false` with an
//! `error` string (and, for admission rejections, the full diagnostic
//! text under `diagnostics`).
//!
//! The frame format is deliberately dumb — no streaming, no pipelining,
//! one request/response per connection round — because the payloads are
//! small (a CWL path plus an inputs object) and the daemon's accept loop
//! is single-threaded. The JSON value type is [`obs::json::Json`], shared
//! with the trace tooling so the client, daemon, and `parsl-trace` all
//! read the same dialect.

use obs::json::{self, Json};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Frames larger than this are rejected as corrupt rather than allocated.
/// Inputs objects are small; 16 MiB is orders of magnitude of headroom.
pub const MAX_FRAME: u32 = 16 << 20;

/// Serialize a [`Json`] value to compact JSON text.
///
/// The inverse of [`obs::json::parse`]; lives here because the obs crate
/// only ever writes JSON through purpose-built formatters.
pub fn render(v: &Json) -> String {
    let mut out = String::new();
    render_into(v, &mut out);
    out
}

fn render_into(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            // Integers (the common case: counts, ids) render without a
            // trailing `.0` so they round-trip through yamlite as ints.
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::Str(s) => {
            out.push('"');
            out.push_str(&json::escape(s));
            out.push('"');
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(m) => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&json::escape(k));
                out.push_str("\":");
                render_into(val, out);
            }
            out.push('}');
        }
    }
}

/// Build a JSON object from key/value pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// Shorthand for a JSON string value.
pub fn s(text: impl Into<String>) -> Json {
    Json::Str(text.into())
}

/// Convert a parsed YAML value (a job-order inputs object) to JSON for
/// transport. Lossless for everything yamlite can represent.
pub fn yaml_to_json(v: &yamlite::Value) -> Json {
    use yamlite::Value;
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Num(*i as f64),
        Value::Float(f) => Json::Num(*f),
        Value::Str(s) => Json::Str(s.clone()),
        Value::Seq(items) => Json::Arr(items.iter().map(yaml_to_json).collect()),
        Value::Map(m) => Json::Obj(
            m.iter()
                .map(|(k, v)| (k.to_string(), yaml_to_json(v)))
                .collect(),
        ),
    }
}

/// Convert transported JSON back to a YAML value for the runner. Numbers
/// with no fractional part come back as ints (CWL job orders distinguish
/// `int` from `double` inputs).
pub fn json_to_yaml(v: &Json) -> yamlite::Value {
    use yamlite::Value;
    match v {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                Value::Int(*n as i64)
            } else {
                Value::Float(*n)
            }
        }
        Json::Str(s) => Value::Str(s.clone()),
        Json::Arr(items) => Value::Seq(items.iter().map(json_to_yaml).collect()),
        Json::Obj(m) => {
            let mut map = yamlite::Map::with_capacity(m.len());
            for (k, v) in m {
                map.insert(k.clone(), json_to_yaml(v));
            }
            Value::Map(map)
        }
    }
}

/// Write one frame: 4-byte big-endian length, then the JSON text.
pub fn write_frame(stream: &mut impl Write, v: &Json) -> Result<(), String> {
    let payload = render(v);
    let bytes = payload.as_bytes();
    if bytes.len() as u64 > MAX_FRAME as u64 {
        return Err(format!("frame of {} bytes exceeds MAX_FRAME", bytes.len()));
    }
    let len = (bytes.len() as u32).to_be_bytes();
    stream
        .write_all(&len)
        .and_then(|()| stream.write_all(bytes))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("frame write failed: {e}"))
}

/// Read one frame, or `Ok(None)` on clean EOF before the length prefix.
pub fn read_frame(stream: &mut impl Read) -> Result<Option<Json>, String> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(format!("frame length read failed: {e}")),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(format!("frame length {len} exceeds MAX_FRAME (corrupt?)"));
    }
    let mut buf = vec![0u8; len as usize];
    stream
        .read_exact(&mut buf)
        .map_err(|e| format!("frame body read failed: {e}"))?;
    let text = String::from_utf8(buf).map_err(|e| format!("frame is not UTF-8: {e}"))?;
    json::parse(&text).map(Some)
}

/// One client round: connect, send `req`, read the response.
///
/// Responses are the daemon's to define; this helper only turns
/// `ok: false` frames into `Err` with the daemon's message so callers
/// handle one error channel.
pub fn request(socket: &Path, req: &Json) -> Result<Json, String> {
    let mut stream = UnixStream::connect(socket).map_err(|e| {
        format!(
            "connect to {} failed: {e} (daemon not running?)",
            socket.display()
        )
    })?;
    // A wedged daemon should produce a client error, not a hang.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    write_frame(&mut stream, req)?;
    let resp = read_frame(&mut stream)?
        .ok_or_else(|| "daemon closed the connection without responding".to_string())?;
    match resp.get("ok") {
        Some(Json::Bool(true)) => Ok(resp),
        Some(Json::Bool(false)) => {
            let msg = resp
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified daemon error");
            let diags = resp
                .get("diagnostics")
                .and_then(Json::as_str)
                .map(|d| format!("\n{d}"))
                .unwrap_or_default();
            Err(format!("{msg}{diags}"))
        }
        _ => Err(format!("malformed daemon response: {}", render(&resp))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let req = obj(vec![
            ("cmd", s("submit")),
            ("cwl", s("/tmp/wf.cwl")),
            (
                "inputs",
                obj(vec![("n", Json::Num(3.0)), ("name", s("x \"y\" z"))]),
            ),
        ]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        assert_eq!(&buf[..4], &(buf.len() as u32 - 4).to_be_bytes());
        let got = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(got, req);
        // Clean EOF after a full frame reads as None, not an error.
        let mut two = buf.clone();
        two.extend_from_slice(&buf);
        let mut cursor = &two[..];
        assert!(read_frame(&mut cursor).unwrap().is_some());
        assert!(read_frame(&mut cursor).unwrap().is_some());
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        buf.extend_from_slice(b"xxxx");
        assert!(read_frame(&mut &buf[..]).unwrap_err().contains("MAX_FRAME"));
    }

    #[test]
    fn yaml_json_round_trip_preserves_ints() {
        let y = yamlite::parse_str("a: 3\nb: 1.5\nc: [x, true, null]\n").unwrap();
        let j = yaml_to_json(&y);
        let back = json_to_yaml(&j);
        assert_eq!(back.get("a").and_then(yamlite::Value::as_int), Some(3));
        assert_eq!(back.get("b").and_then(yamlite::Value::as_float), Some(1.5));
        assert_eq!(y, back);
    }
}
