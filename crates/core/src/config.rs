//! TaPS-style YAML configuration for the `parsl-cwl` runner (§III-B).
//!
//! The paper adopts a YAML configuration format (following the TaPS
//! benchmark suite) so the Parsl execution setup lives next to the CWL
//! documents. Example:
//!
//! ```yaml
//! executor:
//!   kind: htex            # or thread-pool
//!   nodes: 3
//!   workers_per_node: 48  # 0 = one worker per core
//!   min_nodes: 3          # replace lost nodes to keep this floor
//!   heartbeat_ms: 25      # manager heartbeat period
//!   heartbeat_timeout_ms: 250
//! provider:
//!   kind: slurm           # or local
//!   cluster:
//!     nodes: 3
//!     cores_per_node: 48
//! retry:
//!   max_retries: 1
//!   initial_backoff_ms: 50
//!   multiplier: 2.0
//!   max_backoff_ms: 2000
//!   jitter: 0.1
//!   walltime_ms: 60000
//! fault:                  # scripted node deaths (experiments only)
//!   kill:
//!     - node: node02
//!       after_tasks: 10
//!     - node: node03
//!       after_ms: 500
//! run:
//!   workdir: ./work
//!   builtin_tools: true
//! check:                  # cwl-check pre-run gate
//!   pre_run: true         # analyze the document before executing
//!   strict: false         # also refuse to run on warnings
//! checkpoint:             # durable crash-resume journal
//!   mode: task-exit       # off | task-exit | periodic
//!   dir: ./work/ckpt      # journal directory (default: <workdir>/ckpt)
//!   period_ms: 500        # fsync interval for periodic mode
//! staging:                # content-addressed data plane
//!   mode: auto            # copy | link | auto (default auto)
//!   dir: /shared/cas      # shared store (default: per-run <workdir>/cas)
//!   pool: 8               # parallel stage-in pool width
//! serve:                  # parsl-serve daemon (multi-run service)
//!   socket: ./work/serve.sock  # UDS path (default: <workdir>/serve.sock)
//!   max_in_flight: 4      # runs executing concurrently
//!   queue_cap: 64         # queued runs before backpressure rejection
//!   default_weight: 1.0   # fair-share weight for unlisted tenants
//!   tenants:              # per-tenant fair-share weights
//!     alice: 3.0
//!     bob: 1.0
//! ```
//!
//! `retries: N` at the top level is still accepted as shorthand for
//! `retry: {max_retries: N}`.

use cwlexec::StagingSettings;
use gridsim::{BatchScheduler, ClusterSpec, FaultPlan, LatencyModel, SchedulerConfig};
use parsl::{Config, HtexConfig, LocalProvider, Provider, RetryPolicy, SlurmProvider};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use yamlite::Value;

/// A fully resolved runner configuration.
pub struct RunnerConfig {
    /// The Parsl kernel configuration (executor + provider + retry policy).
    pub parsl: Config,
    /// Working-directory base for tool invocations.
    pub workdir: PathBuf,
    /// Run recognized workload tools in-process.
    pub builtin_tools: bool,
    /// The simulated batch scheduler, when a slurm provider was configured
    /// (kept so callers can inspect queue state).
    pub scheduler: Option<BatchScheduler>,
    /// The fault plan, when a `fault:` block was configured (kept so
    /// callers can assert which nodes died).
    pub fault_plan: Option<FaultPlan>,
    /// Run the `cwl::analyze` static pass before executing (the `cwl-check`
    /// pre-run gate).
    pub pre_run_check: bool,
    /// Under `pre_run_check`, also refuse to run on warnings.
    pub strict_check: bool,
    /// Durable checkpointing of task completions (the `checkpoint:` block).
    pub checkpoint: CheckpointSettings,
    /// Content-addressed data plane (the `staging:` block).
    pub staging: StagingSettings,
    /// Multi-run service daemon settings (the `serve:` block).
    pub serve: ServeSettings,
}

/// The parsed `serve:` block — settings for the `parsl-serve` daemon.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeSettings {
    /// Unix-domain socket path; `None` defaults to `<workdir>/serve.sock`.
    pub socket: Option<PathBuf>,
    /// Maximum number of runs executing concurrently; further admitted
    /// runs wait in the queue.
    pub max_in_flight: usize,
    /// Maximum number of queued-but-not-started runs before submissions
    /// are rejected with backpressure.
    pub queue_cap: usize,
    /// Per-tenant fair-share weights (name, weight). Tenants not listed
    /// get [`ServeSettings::default_weight`].
    pub tenants: Vec<(String, f64)>,
    /// Fair-share weight for tenants without an explicit entry.
    pub default_weight: f64,
}

impl Default for ServeSettings {
    fn default() -> Self {
        Self {
            socket: None,
            max_in_flight: 4,
            queue_cap: 64,
            tenants: Vec::new(),
            default_weight: 1.0,
        }
    }
}

impl ServeSettings {
    /// Resolve the socket path against the configured workdir.
    pub fn socket_path(&self, workdir: &Path) -> PathBuf {
        self.socket
            .clone()
            .unwrap_or_else(|| workdir.join("serve.sock"))
    }

    /// The fair-share weight for a tenant.
    pub fn weight_for(&self, tenant: &str) -> f64 {
        self.tenants
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, w)| *w)
            .unwrap_or(self.default_weight)
    }
}

/// When completed tasks are made durable in the checkpoint journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointMode {
    /// No journal (the default): a crashed run loses all completed work.
    Off,
    /// fsync the journal on every task completion.
    TaskExit,
    /// Append without syncing; a background flusher fsyncs on an interval.
    Periodic,
}

/// The parsed `checkpoint:` block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointSettings {
    /// Journal durability mode.
    pub mode: CheckpointMode,
    /// Journal directory; `None` defaults to `<workdir>/ckpt` at run time.
    pub dir: Option<PathBuf>,
    /// fsync interval for [`CheckpointMode::Periodic`].
    pub period: Duration,
}

impl Default for CheckpointSettings {
    fn default() -> Self {
        Self {
            mode: CheckpointMode::Off,
            dir: None,
            period: Duration::from_millis(500),
        }
    }
}

impl CheckpointSettings {
    /// The journal sync mode, unless checkpointing is off.
    pub fn sync_mode(&self) -> Option<ckpt::SyncMode> {
        match self.mode {
            CheckpointMode::Off => None,
            CheckpointMode::TaskExit => Some(ckpt::SyncMode::TaskExit),
            CheckpointMode::Periodic => Some(ckpt::SyncMode::Periodic(self.period)),
        }
    }
}

/// Load a configuration from a YAML file.
///
/// The file is first run through the `parsl-lint` pass ([`crate::lint`]),
/// honouring the config's own `check:` block: with `pre_run: true` (the
/// default) lint *errors* (unknown keys, bad values/combos, unreachable
/// staging dirs) fail the load; with `strict: true` warnings do too.
/// [`load_config_value`] stays gate-free for programmatic construction.
pub fn load_config_file(path: impl AsRef<Path>) -> Result<RunnerConfig, String> {
    let path = path.as_ref();
    let (v, spans) = yamlite::parse_file_spanned(path).map_err(|e| e.to_string())?;
    let check = v.get("check").cloned().unwrap_or(Value::Null);
    let pre_run = check
        .get("pre_run")
        .and_then(Value::as_bool)
        .unwrap_or(true);
    let strict = check
        .get("strict")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    if pre_run {
        let mut report = cwl::analyze::Report::new();
        report.file = Some(path.display().to_string());
        crate::lint::lint_value(&v, &spans, &mut report);
        report.sort();
        if !report.is_clean(strict) {
            return Err(format!(
                "config lint found {} error(s), {} warning(s):\n{}",
                report.error_count(),
                report.warning_count(),
                report.render_text().trim_end()
            ));
        }
    }
    load_config_value(&v)
}

/// Parse the `retry:` block (or the legacy top-level `retries:` count).
/// Values that would misbehave at retry time — `jitter` outside `[0, 1]`,
/// a negative `multiplier` — are load errors, not silent clamps: a typo'd
/// policy should fail before the run starts, with the offending value in
/// the message.
fn parse_retry(v: &Value) -> Result<RetryPolicy, String> {
    let mut policy = RetryPolicy::default();
    if let Some(n) = v.get("retries").and_then(Value::as_int) {
        policy.max_retries = n.max(0) as usize;
    }
    if let Some(block) = v.get("retry") {
        if let Some(n) = block.get("max_retries").and_then(Value::as_int) {
            policy.max_retries = n.max(0) as usize;
        }
        if let Some(ms) = block.get("initial_backoff_ms").and_then(Value::as_int) {
            policy.initial_backoff = Duration::from_millis(ms.max(0) as u64);
        }
        if let Some(m) = block.get("multiplier").and_then(Value::as_float) {
            policy.multiplier = m;
        }
        if let Some(ms) = block.get("max_backoff_ms").and_then(Value::as_int) {
            policy.max_backoff = Duration::from_millis(ms.max(0) as u64);
        }
        if let Some(j) = block.get("jitter").and_then(Value::as_float) {
            policy.jitter_frac = j;
        }
        if let Some(ms) = block.get("walltime_ms").and_then(Value::as_int) {
            policy.walltime = Some(Duration::from_millis(ms.max(1) as u64));
        }
    }
    policy.validate()?;
    Ok(policy)
}

/// Parse the `checkpoint:` block. Writing the block at all means "turn it
/// on" (in `task-exit` mode) unless `mode: off` is explicit — mirroring the
/// `monitoring:` block's convention.
fn parse_checkpoint(v: &Value) -> Result<CheckpointSettings, String> {
    let mut settings = CheckpointSettings::default();
    let Some(block) = v.get("checkpoint") else {
        return Ok(settings);
    };
    settings.mode = match block.get("mode").and_then(Value::as_str) {
        None | Some("task-exit") => CheckpointMode::TaskExit,
        Some("periodic") => CheckpointMode::Periodic,
        Some("off") => CheckpointMode::Off,
        Some(other) => {
            return Err(format!(
                "unknown checkpoint mode {other:?} (expected off, task-exit, or periodic)"
            ))
        }
    };
    if let Some(dir) = block.get("dir").and_then(Value::as_str) {
        settings.dir = Some(PathBuf::from(dir));
    }
    if let Some(ms) = block.get("period_ms").and_then(Value::as_int) {
        settings.period = Duration::from_millis(ms.max(1) as u64);
    }
    Ok(settings)
}

/// Parse the `staging:` block into [`StagingSettings`]. Absent block =
/// defaults (auto mode, per-run store).
fn parse_staging(v: &Value) -> Result<StagingSettings, String> {
    let mut settings = StagingSettings::default();
    let Some(block) = v.get("staging") else {
        return Ok(settings);
    };
    if let Some(mode) = block.get("mode").and_then(Value::as_str) {
        settings.mode = datastore::StageMode::parse(mode).ok_or_else(|| {
            format!("unknown staging mode {mode:?} (expected copy, link, or auto)")
        })?;
    }
    if let Some(dir) = block.get("dir").and_then(Value::as_str) {
        settings.dir = Some(PathBuf::from(dir));
    }
    if let Some(pool) = block.get("pool").and_then(Value::as_int) {
        settings.pool = pool.max(1) as usize;
    }
    // A pinned dir that can never be created should fail at load, not
    // after tasks have started.
    settings.validate()?;
    Ok(settings)
}

/// Parse the `monitoring:` block into an [`obs::ObsConfig`].
///
/// ```yaml
/// monitoring:
///   enabled: true
///   sample_rate: 1.0      # fraction of tasks whose spans are recorded
///   export: trace.jsonl   # JSONL trace path (read by parsl-trace)
///   sinks: [jsonl, chrome]
/// ```
fn parse_monitoring(v: &Value) -> Result<obs::ObsConfig, String> {
    let mut cfg = obs::ObsConfig::default();
    let Some(block) = v.get("monitoring") else {
        return Ok(cfg);
    };
    cfg.enabled = block
        .get("enabled")
        .and_then(Value::as_bool)
        // Writing a `monitoring:` block at all means "turn it on" unless
        // explicitly disabled.
        .unwrap_or(true);
    if let Some(r) = block.get("sample_rate").and_then(Value::as_float) {
        cfg.sample_rate = r.clamp(0.0, 1.0);
    }
    if let Some(p) = block.get("export").and_then(Value::as_str) {
        cfg.export_path = Some(PathBuf::from(p));
    }
    if let Some(cap) = block.get("events_cap").and_then(Value::as_int) {
        cfg.events_cap = cap.max(1) as usize;
    }
    if let Some(sinks) = block.get("sinks").and_then(Value::as_seq) {
        cfg.sink_jsonl = false;
        cfg.sink_chrome = false;
        for s in sinks {
            match s.as_str() {
                Some("jsonl") => cfg.sink_jsonl = true,
                Some("chrome") => cfg.sink_chrome = true,
                other => return Err(format!("unknown monitoring sink {other:?}")),
            }
        }
    }
    Ok(cfg)
}

/// Parse the `serve:` block into [`ServeSettings`]. Absent block =
/// defaults (the daemon can still run; clients then use the default
/// `<workdir>/serve.sock`). Misconfigurations that would wedge the
/// service — a zero in-flight limit, a non-positive fair-share weight —
/// are load errors, mirroring `parse_retry`.
fn parse_serve(v: &Value) -> Result<ServeSettings, String> {
    let mut settings = ServeSettings::default();
    let Some(block) = v.get("serve") else {
        return Ok(settings);
    };
    if let Some(p) = block.get("socket").and_then(Value::as_str) {
        settings.socket = Some(PathBuf::from(p));
    }
    if let Some(n) = block.get("max_in_flight").and_then(Value::as_int) {
        if n < 1 {
            return Err(format!("serve.max_in_flight must be >= 1 (got {n})"));
        }
        settings.max_in_flight = n as usize;
    }
    if let Some(n) = block.get("queue_cap").and_then(Value::as_int) {
        if n < 1 {
            return Err(format!("serve.queue_cap must be >= 1 (got {n})"));
        }
        settings.queue_cap = n as usize;
    }
    if let Some(w) = block.get("default_weight").and_then(Value::as_float) {
        if w <= 0.0 {
            return Err(format!("serve.default_weight must be > 0 (got {w})"));
        }
        settings.default_weight = w;
    }
    if let Some(tenants) = block.get("tenants").and_then(Value::as_map) {
        for (name, weight) in tenants.iter() {
            let w = weight
                .as_float()
                .ok_or_else(|| format!("serve.tenants.{name} must be a number"))?;
            if w <= 0.0 {
                return Err(format!("serve.tenants.{name} must be > 0 (got {w})"));
            }
            settings.tenants.push((name.to_string(), w));
        }
    }
    Ok(settings)
}

/// Parse the `fault:` block into a [`FaultPlan`].
fn parse_fault(v: &Value) -> Result<Option<FaultPlan>, String> {
    let Some(block) = v.get("fault") else {
        return Ok(None);
    };
    let mut plan = FaultPlan::new();
    if let Some(kills) = block.get("kill").and_then(Value::as_seq) {
        for kill in kills {
            let node = kill
                .get("node")
                .and_then(Value::as_str)
                .ok_or("fault.kill entries need a `node:` name")?
                .to_string();
            if let Some(n) = kill.get("after_tasks").and_then(Value::as_int) {
                plan = plan.kill_after_tasks(node, n.max(0) as usize);
            } else if let Some(ms) = kill.get("after_ms").and_then(Value::as_int) {
                plan = plan.kill_after(node, Duration::from_millis(ms.max(0) as u64));
            } else {
                plan = plan.kill_now(node);
            }
        }
    }
    Ok(Some(plan))
}

/// Load a configuration from a parsed value.
pub fn load_config_value(v: &Value) -> Result<RunnerConfig, String> {
    let executor = v.get("executor").cloned().unwrap_or(Value::Null);
    let kind = executor
        .get("kind")
        .and_then(Value::as_str)
        .unwrap_or("thread-pool");
    let retry = parse_retry(v)?;
    let fault_plan = parse_fault(v)?;
    let monitoring = parse_monitoring(v)?;
    let checkpoint = parse_checkpoint(v)?;
    let staging = parse_staging(v)?;
    let serve = parse_serve(v)?;

    let mut scheduler = None;
    let parsl = match kind {
        "thread-pool" | "threads" | "local-threads" => {
            let workers = executor
                .get("workers")
                .and_then(Value::as_int)
                .map(|n| n.max(1) as usize)
                .unwrap_or_else(default_parallelism);
            Config::local_threads(workers).with_retry_policy(retry)
        }
        "htex" | "high-throughput" => {
            let nodes = executor
                .get("nodes")
                .and_then(Value::as_int)
                .unwrap_or(1)
                .max(1) as usize;
            let workers_per_node = executor
                .get("workers_per_node")
                .and_then(Value::as_int)
                .unwrap_or(0)
                .max(0) as usize;
            let provider_cfg = v.get("provider").cloned().unwrap_or(Value::Null);
            let provider: Arc<dyn Provider> = match provider_cfg
                .get("kind")
                .and_then(Value::as_str)
                .unwrap_or("local")
            {
                "local" => {
                    let cores = provider_cfg
                        .get("cores_per_node")
                        .and_then(Value::as_int)
                        .map(|n| n.max(1) as usize)
                        .unwrap_or_else(default_parallelism);
                    Arc::new(LocalProvider::new(cores))
                }
                "slurm" => {
                    let cluster_cfg = provider_cfg.get("cluster").cloned().unwrap_or(Value::Null);
                    let cluster = ClusterSpec::homogeneous(
                        "configured",
                        cluster_cfg
                            .get("nodes")
                            .and_then(Value::as_int)
                            .unwrap_or(nodes as i64)
                            .max(1) as usize,
                        cluster_cfg
                            .get("cores_per_node")
                            .and_then(Value::as_int)
                            .map(|n| n.max(1) as usize)
                            .unwrap_or_else(default_parallelism),
                        126,
                    );
                    let sched = BatchScheduler::new(cluster, SchedulerConfig::default());
                    scheduler = Some(sched.clone());
                    Arc::new(SlurmProvider::new(sched))
                }
                other => return Err(format!("unknown provider kind {other:?}")),
            };
            let defaults = HtexConfig::default();
            let htex = HtexConfig {
                label: executor
                    .get("label")
                    .and_then(Value::as_str)
                    .unwrap_or("htex")
                    .to_string(),
                nodes,
                workers_per_node,
                latency: LatencyModel::cluster_lan(),
                min_nodes: executor
                    .get("min_nodes")
                    .and_then(Value::as_int)
                    .map(|n| n.max(0) as usize)
                    .unwrap_or(0),
                heartbeat_period: executor
                    .get("heartbeat_ms")
                    .and_then(Value::as_int)
                    .map(|ms| Duration::from_millis(ms.max(1) as u64))
                    .unwrap_or(defaults.heartbeat_period),
                heartbeat_threshold: executor
                    .get("heartbeat_timeout_ms")
                    .and_then(Value::as_int)
                    .map(|ms| Duration::from_millis(ms.max(1) as u64))
                    .unwrap_or(defaults.heartbeat_threshold),
                fault_plan: fault_plan.clone(),
                batch_size: executor
                    .get("batch_size")
                    .and_then(Value::as_int)
                    .map(|n| n.max(1) as usize)
                    .unwrap_or(defaults.batch_size),
                clock: defaults.clock,
            };
            Config::htex(htex, provider).with_retry_policy(retry)
        }
        other => return Err(format!("unknown executor kind {other:?}")),
    };

    let run = v.get("run").cloned().unwrap_or(Value::Null);
    let workdir = run
        .get("workdir")
        .and_then(Value::as_str)
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("parsl-cwl-{}", std::process::id())));
    let builtin_tools = run
        .get("builtin_tools")
        .and_then(Value::as_bool)
        .unwrap_or(false);

    let check = v.get("check").cloned().unwrap_or(Value::Null);
    let pre_run_check = check
        .get("pre_run")
        .and_then(Value::as_bool)
        .unwrap_or(true);
    let strict_check = check
        .get("strict")
        .and_then(Value::as_bool)
        .unwrap_or(false);

    let parsl = parsl.with_monitoring(monitoring);

    Ok(RunnerConfig {
        parsl,
        workdir,
        builtin_tools,
        scheduler,
        fault_plan,
        pre_run_check,
        strict_check,
        checkpoint,
        staging,
        serve,
    })
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsl::ExecutorChoice;
    use yamlite::parse_str;

    #[test]
    fn default_config_is_thread_pool() {
        let c = load_config_value(&Value::Null).unwrap();
        assert!(matches!(
            c.parsl.executor,
            ExecutorChoice::ThreadPool { .. }
        ));
        assert!(!c.builtin_tools);
        assert!(c.scheduler.is_none());
        assert!(c.fault_plan.is_none());
        assert_eq!(c.parsl.retry, RetryPolicy::default());
    }

    #[test]
    fn thread_pool_with_workers() {
        let v = parse_str("executor:\n  kind: thread-pool\n  workers: 6\nretries: 2\n").unwrap();
        let c = load_config_value(&v).unwrap();
        match c.parsl.executor {
            ExecutorChoice::ThreadPool { workers } => assert_eq!(workers, 6),
            _ => panic!("wrong executor"),
        }
        assert_eq!(c.parsl.retry.max_retries, 2);
    }

    #[test]
    fn retry_block_overrides_shorthand() {
        let v = parse_str(
            "retries: 1\nretry:\n  max_retries: 3\n  initial_backoff_ms: 50\n  multiplier: 3.0\n  max_backoff_ms: 800\n  jitter: 0.2\n  walltime_ms: 1500\n",
        )
        .unwrap();
        let c = load_config_value(&v).unwrap();
        let r = &c.parsl.retry;
        assert_eq!(r.max_retries, 3);
        assert_eq!(r.initial_backoff, Duration::from_millis(50));
        assert_eq!(r.multiplier, 3.0);
        assert_eq!(r.max_backoff, Duration::from_millis(800));
        assert_eq!(r.jitter_frac, 0.2);
        assert_eq!(r.walltime, Some(Duration::from_millis(1500)));
    }

    #[test]
    fn htex_with_slurm_cluster() {
        let v = parse_str(
            "executor:\n  kind: htex\n  nodes: 3\n  workers_per_node: 4\nprovider:\n  kind: slurm\n  cluster:\n    nodes: 3\n    cores_per_node: 4\nrun:\n  workdir: /tmp/x\n  builtin_tools: true\n",
        )
        .unwrap();
        let c = load_config_value(&v).unwrap();
        assert!(matches!(c.parsl.executor, ExecutorChoice::Htex { .. }));
        assert!(c.builtin_tools);
        assert_eq!(c.workdir, PathBuf::from("/tmp/x"));
        let sched = c.scheduler.unwrap();
        assert_eq!(sched.cluster().node_count(), 3);
        assert_eq!(sched.cluster().total_cores(), 12);
    }

    #[test]
    fn htex_fault_tolerance_surface() {
        let v = parse_str(
            "executor:\n  kind: htex\n  nodes: 3\n  workers_per_node: 2\n  min_nodes: 3\n  heartbeat_ms: 10\n  heartbeat_timeout_ms: 120\nprovider:\n  kind: slurm\n  cluster:\n    nodes: 4\n    cores_per_node: 2\nretry:\n  max_retries: 1\nfault:\n  kill:\n    - node: node02\n      after_tasks: 5\n    - node: node03\n      after_ms: 250\n",
        )
        .unwrap();
        let c = load_config_value(&v).unwrap();
        let plan = c.fault_plan.clone().expect("fault plan parsed");
        assert!(!plan.is_empty());
        assert!(!plan.is_dead("node02"));
        match c.parsl.executor {
            ExecutorChoice::Htex { config, .. } => {
                assert_eq!(config.min_nodes, 3);
                assert_eq!(config.heartbeat_period, Duration::from_millis(10));
                assert_eq!(config.heartbeat_threshold, Duration::from_millis(120));
                // The executor's plan shares state with the returned one.
                assert!(config.fault_plan.is_some());
            }
            _ => panic!("wrong executor"),
        }
        assert_eq!(c.parsl.retry.max_retries, 1);
    }

    #[test]
    fn check_block_defaults_and_overrides() {
        let c = load_config_value(&Value::Null).unwrap();
        assert!(c.pre_run_check);
        assert!(!c.strict_check);
        let v = parse_str("check:\n  pre_run: false\n  strict: true\n").unwrap();
        let c = load_config_value(&v).unwrap();
        assert!(!c.pre_run_check);
        assert!(c.strict_check);
    }

    #[test]
    fn monitoring_block_parses() {
        let c = load_config_value(&Value::Null).unwrap();
        assert!(!c.parsl.monitoring.enabled, "monitoring must default off");

        let v = parse_str(
            "monitoring:\n  sample_rate: 0.5\n  export: /tmp/t.jsonl\n  sinks: [jsonl, chrome]\n",
        )
        .unwrap();
        let c = load_config_value(&v).unwrap();
        let m = &c.parsl.monitoring;
        assert!(m.enabled, "a monitoring block implies enabled");
        assert_eq!(m.sample_rate, 0.5);
        assert_eq!(m.export_path, Some(PathBuf::from("/tmp/t.jsonl")));
        assert!(m.sink_jsonl);
        assert!(m.sink_chrome);

        let v = parse_str("monitoring:\n  enabled: false\n  export: x.jsonl\n").unwrap();
        assert!(!load_config_value(&v).unwrap().parsl.monitoring.enabled);

        let v = parse_str("monitoring:\n  sinks: [bogus]\n").unwrap();
        assert!(load_config_value(&v).is_err());
    }

    #[test]
    fn out_of_range_jitter_is_a_load_error() {
        // Regression: a negative jitter used to be silently clamped (and,
        // fed directly to RetryPolicy, could panic in gen_range).
        let v = parse_str("retry:\n  jitter: -0.3\n").unwrap();
        let err = match load_config_value(&v) {
            Err(e) => e,
            Ok(_) => panic!("negative jitter must be rejected"),
        };
        assert!(err.contains("retry.jitter"), "{err}");
        assert!(err.contains("-0.3"), "{err}");
        let v = parse_str("retry:\n  jitter: 2.5\n").unwrap();
        assert!(load_config_value(&v).is_err());
        // In-range values still load.
        let v = parse_str("retry:\n  jitter: 0.25\n").unwrap();
        assert_eq!(load_config_value(&v).unwrap().parsl.retry.jitter_frac, 0.25);
    }

    #[test]
    fn checkpoint_block_parses() {
        let c = load_config_value(&Value::Null).unwrap();
        assert_eq!(c.checkpoint, CheckpointSettings::default());
        assert_eq!(c.checkpoint.mode, CheckpointMode::Off);
        assert!(c.checkpoint.sync_mode().is_none());

        // A bare block implies task-exit mode.
        let v = parse_str("checkpoint: {}\n").unwrap();
        let c = load_config_value(&v).unwrap();
        assert_eq!(c.checkpoint.mode, CheckpointMode::TaskExit);
        assert_eq!(c.checkpoint.sync_mode(), Some(ckpt::SyncMode::TaskExit));

        let v =
            parse_str("checkpoint:\n  mode: periodic\n  dir: /tmp/j\n  period_ms: 250\n").unwrap();
        let c = load_config_value(&v).unwrap();
        assert_eq!(c.checkpoint.mode, CheckpointMode::Periodic);
        assert_eq!(c.checkpoint.dir, Some(PathBuf::from("/tmp/j")));
        assert_eq!(
            c.checkpoint.sync_mode(),
            Some(ckpt::SyncMode::Periodic(Duration::from_millis(250)))
        );

        let v = parse_str("checkpoint:\n  mode: off\n  dir: /tmp/j\n").unwrap();
        assert_eq!(
            load_config_value(&v).unwrap().checkpoint.mode,
            CheckpointMode::Off
        );

        let v = parse_str("checkpoint:\n  mode: sometimes\n").unwrap();
        match load_config_value(&v) {
            Err(e) => assert!(e.contains("checkpoint mode"), "{e}"),
            Ok(_) => panic!("unknown checkpoint mode must be rejected"),
        }
    }

    #[test]
    fn staging_block_parses() {
        let c = load_config_value(&Value::Null).unwrap();
        assert_eq!(c.staging, StagingSettings::default());
        assert_eq!(c.staging.mode, datastore::StageMode::Auto);
        assert!(c.staging.dir.is_none());

        let v = parse_str("staging:\n  mode: copy\n  dir: /shared/cas\n  pool: 8\n").unwrap();
        let c = load_config_value(&v).unwrap();
        assert_eq!(c.staging.mode, datastore::StageMode::Copy);
        assert_eq!(c.staging.dir, Some(PathBuf::from("/shared/cas")));
        assert_eq!(c.staging.pool, 8);

        let v = parse_str("staging:\n  mode: link\n").unwrap();
        assert_eq!(
            load_config_value(&v).unwrap().staging.mode,
            datastore::StageMode::Link
        );

        let v = parse_str("staging:\n  mode: teleport\n").unwrap();
        match load_config_value(&v) {
            Err(e) => assert!(e.contains("staging mode"), "{e}"),
            Ok(_) => panic!("unknown staging mode must be rejected"),
        }
    }

    #[test]
    fn fault_kill_requires_node_name() {
        let v = parse_str("fault:\n  kill:\n    - after_tasks: 2\n").unwrap();
        assert!(load_config_value(&v).is_err());
    }

    #[test]
    fn unknown_kinds_rejected() {
        let v = parse_str("executor:\n  kind: quantum\n").unwrap();
        assert!(load_config_value(&v).is_err());
        let v = parse_str("executor:\n  kind: htex\nprovider:\n  kind: cloud9\n").unwrap();
        assert!(load_config_value(&v).is_err());
    }
}
