//! TaPS-style YAML configuration for the `parsl-cwl` runner (§III-B).
//!
//! The paper adopts a YAML configuration format (following the TaPS
//! benchmark suite) so the Parsl execution setup lives next to the CWL
//! documents. Example:
//!
//! ```yaml
//! executor:
//!   kind: htex            # or thread-pool
//!   nodes: 3
//!   workers_per_node: 48  # 0 = one worker per core
//! provider:
//!   kind: slurm           # or local
//!   cluster:
//!     nodes: 3
//!     cores_per_node: 48
//! retries: 1
//! run:
//!   workdir: ./work
//!   builtin_tools: true
//! ```

use gridsim::{BatchScheduler, ClusterSpec, LatencyModel, SchedulerConfig};
use parsl::{Config, HtexConfig, LocalProvider, Provider, SlurmProvider};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use yamlite::Value;

/// A fully resolved runner configuration.
pub struct RunnerConfig {
    /// The Parsl kernel configuration (executor + provider + retries).
    pub parsl: Config,
    /// Working-directory base for tool invocations.
    pub workdir: PathBuf,
    /// Run recognized workload tools in-process.
    pub builtin_tools: bool,
    /// The simulated batch scheduler, when a slurm provider was configured
    /// (kept so callers can inspect queue state).
    pub scheduler: Option<BatchScheduler>,
}

/// Load a configuration from a YAML file.
pub fn load_config_file(path: impl AsRef<Path>) -> Result<RunnerConfig, String> {
    let v = yamlite::parse_file(path.as_ref()).map_err(|e| e.to_string())?;
    load_config_value(&v)
}

/// Load a configuration from a parsed value.
pub fn load_config_value(v: &Value) -> Result<RunnerConfig, String> {
    let executor = v.get("executor").cloned().unwrap_or(Value::Null);
    let kind = executor
        .get("kind")
        .and_then(Value::as_str)
        .unwrap_or("thread-pool");
    let retries = v.get("retries").and_then(Value::as_int).unwrap_or(0).max(0) as usize;

    let mut scheduler = None;
    let parsl = match kind {
        "thread-pool" | "threads" | "local-threads" => {
            let workers = executor
                .get("workers")
                .and_then(Value::as_int)
                .map(|n| n.max(1) as usize)
                .unwrap_or_else(default_parallelism);
            Config::local_threads(workers).with_retries(retries)
        }
        "htex" | "high-throughput" => {
            let nodes = executor.get("nodes").and_then(Value::as_int).unwrap_or(1).max(1) as usize;
            let workers_per_node = executor
                .get("workers_per_node")
                .and_then(Value::as_int)
                .unwrap_or(0)
                .max(0) as usize;
            let provider_cfg = v.get("provider").cloned().unwrap_or(Value::Null);
            let provider: Arc<dyn Provider> = match provider_cfg
                .get("kind")
                .and_then(Value::as_str)
                .unwrap_or("local")
            {
                "local" => {
                    let cores = provider_cfg
                        .get("cores_per_node")
                        .and_then(Value::as_int)
                        .map(|n| n.max(1) as usize)
                        .unwrap_or_else(default_parallelism);
                    Arc::new(LocalProvider::new(cores))
                }
                "slurm" => {
                    let cluster_cfg = provider_cfg.get("cluster").cloned().unwrap_or(Value::Null);
                    let cluster = ClusterSpec::homogeneous(
                        "configured",
                        cluster_cfg
                            .get("nodes")
                            .and_then(Value::as_int)
                            .unwrap_or(nodes as i64)
                            .max(1) as usize,
                        cluster_cfg
                            .get("cores_per_node")
                            .and_then(Value::as_int)
                            .map(|n| n.max(1) as usize)
                            .unwrap_or_else(default_parallelism),
                        126,
                    );
                    let sched = BatchScheduler::new(cluster, SchedulerConfig::default());
                    scheduler = Some(sched.clone());
                    Arc::new(SlurmProvider::new(sched))
                }
                other => return Err(format!("unknown provider kind {other:?}")),
            };
            let htex = HtexConfig {
                label: executor
                    .get("label")
                    .and_then(Value::as_str)
                    .unwrap_or("htex")
                    .to_string(),
                nodes,
                workers_per_node,
                latency: LatencyModel::cluster_lan(),
            };
            Config::htex(htex, provider).with_retries(retries)
        }
        other => return Err(format!("unknown executor kind {other:?}")),
    };

    let run = v.get("run").cloned().unwrap_or(Value::Null);
    let workdir = run
        .get("workdir")
        .and_then(Value::as_str)
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("parsl-cwl-{}", std::process::id())));
    let builtin_tools = run
        .get("builtin_tools")
        .and_then(Value::as_bool)
        .unwrap_or(false);

    Ok(RunnerConfig { parsl, workdir, builtin_tools, scheduler })
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsl::ExecutorChoice;
    use yamlite::parse_str;

    #[test]
    fn default_config_is_thread_pool() {
        let c = load_config_value(&Value::Null).unwrap();
        assert!(matches!(c.parsl.executor, ExecutorChoice::ThreadPool { .. }));
        assert!(!c.builtin_tools);
        assert!(c.scheduler.is_none());
    }

    #[test]
    fn thread_pool_with_workers() {
        let v = parse_str("executor:\n  kind: thread-pool\n  workers: 6\nretries: 2\n").unwrap();
        let c = load_config_value(&v).unwrap();
        match c.parsl.executor {
            ExecutorChoice::ThreadPool { workers } => assert_eq!(workers, 6),
            _ => panic!("wrong executor"),
        }
        assert_eq!(c.parsl.retries, 2);
    }

    #[test]
    fn htex_with_slurm_cluster() {
        let v = parse_str(
            "executor:\n  kind: htex\n  nodes: 3\n  workers_per_node: 4\nprovider:\n  kind: slurm\n  cluster:\n    nodes: 3\n    cores_per_node: 4\nrun:\n  workdir: /tmp/x\n  builtin_tools: true\n",
        )
        .unwrap();
        let c = load_config_value(&v).unwrap();
        assert!(matches!(c.parsl.executor, ExecutorChoice::Htex { .. }));
        assert!(c.builtin_tools);
        assert_eq!(c.workdir, PathBuf::from("/tmp/x"));
        let sched = c.scheduler.unwrap();
        assert_eq!(sched.cluster().node_count(), 3);
        assert_eq!(sched.cluster().total_cores(), 12);
    }

    #[test]
    fn unknown_kinds_rejected() {
        let v = parse_str("executor:\n  kind: quantum\n").unwrap();
        assert!(load_config_value(&v).is_err());
        let v = parse_str("executor:\n  kind: htex\nprovider:\n  kind: cloud9\n").unwrap();
        assert!(load_config_value(&v).is_err());
    }
}
