//! Crash-resume orchestration for `parsl-cwl` runs: binding a checkpoint
//! journal to a run, and deciding which journal records a resumed run may
//! trust.
//!
//! A journal is only as good as its validation. Three rules, applied in
//! order on resume:
//!
//! 1. **Stale workflow or inputs.** The journal header's `run_hash` covers
//!    every CWL file the workflow references plus the root input object.
//!    On mismatch, the whole journal is set aside (renamed to
//!    `journal.ckpt.stale`) and the run starts a fresh one — replaying
//!    results computed by a *different* workflow would be silent
//!    corruption.
//! 2. **Torn tail.** Handled by `ckpt` itself: the damaged suffix is
//!    truncated before any append.
//! 3. **Deleted outputs.** A record whose result names a `class: File`
//!    path that no longer exists is dropped (the task re-runs); records are
//!    also deduplicated last-wins so a re-run's fresh record supersedes the
//!    invalidated one on the next resume.

use crate::config::CheckpointSettings;
use ckpt::{Header, Journal, LoadedJournal, Record};
use cwl::loader::{load_file, CwlDocument};
use cwl::workflow::RunRef;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use yamlite::{Map, Value};

/// Journal file name inside the checkpoint directory.
pub const JOURNAL_FILE: &str = "journal.ckpt";

/// Hash the run identity: every CWL file the workflow references
/// (recursively through `run:`), chained with the root input object. Two
/// runs share a hash exactly when replaying one's results in the other is
/// sound.
pub fn run_hash(cwl_path: &Path, inputs: &Map) -> Result<u64, String> {
    let mut h = ckpt::FNV_OFFSET;
    let mut visited = HashSet::new();
    h = hash_document(cwl_path, h, &mut visited)?;
    h = ckpt::fnv1a(
        h,
        yamlite::to_string_flow(&Value::Map(inputs.clone())).as_bytes(),
    );
    Ok(h)
}

fn hash_document(path: &Path, mut h: u64, visited: &mut HashSet<PathBuf>) -> Result<u64, String> {
    let canonical = path
        .canonicalize()
        .map_err(|e| format!("cannot hash {}: {e}", path.display()))?;
    if !visited.insert(canonical.clone()) {
        return Ok(h);
    }
    let bytes =
        std::fs::read(&canonical).map_err(|e| format!("cannot hash {}: {e}", path.display()))?;
    h = ckpt::fnv1a(h, &bytes);
    // Recurse into referenced step files so editing a tool invalidates
    // journals of every workflow that runs it. Inline run blocks are
    // already covered by the parent file's bytes.
    if let Ok(CwlDocument::Workflow(wf)) = load_file(&canonical) {
        let base = canonical.parent().unwrap_or(Path::new("."));
        for step in &wf.steps {
            if let RunRef::Path(p) = &step.run {
                h = hash_document(&base.join(p), h, visited)?;
            }
        }
    }
    Ok(h)
}

/// A journal bound to the current run, plus what a resume recovered.
pub struct PreparedCkpt {
    /// The open journal the kernel will append to.
    pub journal: Arc<Journal>,
    /// Validated records to seed the memo table with.
    pub seed: Vec<Record>,
    /// Records rejected during validation (stale hash, missing output
    /// files). Parse failures surface later via `seed_checkpoint`.
    pub invalidated: usize,
    /// Whether a torn tail was truncated on load.
    pub torn: bool,
    /// Whether the whole journal was set aside as stale.
    pub stale: bool,
}

/// Resolve where the journal lives for this run.
pub fn journal_path(settings: &CheckpointSettings, workdir: &Path) -> PathBuf {
    settings
        .dir
        .clone()
        .unwrap_or_else(|| workdir.join("ckpt"))
        .join(JOURNAL_FILE)
}

/// Locate the journal under a `--resume` argument: the run directory
/// itself, its `ckpt/` subdirectory, or a direct path to the journal file.
fn resolve_resume_journal(resume: &Path) -> Result<PathBuf, String> {
    if resume.is_file() {
        return Ok(resume.to_path_buf());
    }
    for candidate in [
        resume.join(JOURNAL_FILE),
        resume.join("ckpt").join(JOURNAL_FILE),
    ] {
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err(format!(
        "--resume: no {JOURNAL_FILE} found under {}",
        resume.display()
    ))
}

/// Bind a journal to this run. `None` when checkpointing is off (an
/// explicit `--resume` with checkpointing off is an error, not a silent
/// full re-run). A fresh run refuses to clobber an existing journal; a
/// resume validates and truncates per the module rules.
pub fn prepare(
    settings: &CheckpointSettings,
    workdir: &Path,
    resume: Option<&Path>,
    hash: u64,
    label: &str,
) -> Result<Option<PreparedCkpt>, String> {
    let Some(sync) = settings.sync_mode() else {
        if resume.is_some() {
            return Err(
                "--resume requires checkpointing: add a `checkpoint:` block to the config"
                    .to_string(),
            );
        }
        return Ok(None);
    };
    let header = Header {
        version: 1,
        run_hash: hash,
        label: label.to_string(),
    };

    let Some(resume) = resume else {
        let path = journal_path(settings, workdir);
        if path.exists() {
            return Err(format!(
                "a checkpoint journal already exists at {}; resume it with --resume {} or remove it",
                path.display(),
                path.parent().unwrap_or(Path::new(".")).display()
            ));
        }
        let journal = Journal::create(&path, &header, sync)?;
        return Ok(Some(PreparedCkpt {
            journal: Arc::new(journal),
            seed: Vec::new(),
            invalidated: 0,
            torn: false,
            stale: false,
        }));
    };

    let path = resolve_resume_journal(resume)?;
    let loaded = ckpt::load(&path)?;
    if loaded.header.run_hash != hash {
        // Different workflow or inputs: nothing in this journal can be
        // trusted. Set it aside (kept for post-mortems) and start fresh.
        let stale_path = path.with_extension("ckpt.stale");
        std::fs::rename(&path, &stale_path)
            .map_err(|e| format!("cannot set aside stale journal: {e}"))?;
        let journal = Journal::create(&path, &header, sync)?;
        return Ok(Some(PreparedCkpt {
            journal: Arc::new(journal),
            seed: Vec::new(),
            invalidated: loaded.records.len(),
            torn: loaded.torn,
            stale: true,
        }));
    }

    let (journal, loaded) = Journal::resume(&path, sync)?;
    let torn = loaded.torn;
    let (seed, invalidated) = validate_records(loaded);
    Ok(Some(PreparedCkpt {
        journal: Arc::new(journal),
        seed,
        invalidated,
        torn,
        stale: false,
    }))
}

/// Apply the record-level trust rules: deduplicate by memo key (last
/// record wins — a re-run after invalidation supersedes the stale entry)
/// and drop records whose `class: File` outputs no longer exist or whose
/// on-disk content no longer matches the recorded digest (a truncated or
/// modified-in-place output re-runs instead of replaying).
fn validate_records(loaded: LoadedJournal) -> (Vec<Record>, usize) {
    let total = loaded.records.len();
    let mut by_key: HashMap<(String, u64), Record> = HashMap::new();
    let mut order: Vec<(String, u64)> = Vec::new();
    for rec in loaded.records {
        let key = (rec.label.clone(), rec.fingerprint);
        if by_key.insert(key.clone(), rec).is_none() {
            order.push(key);
        }
    }
    let mut seed = Vec::new();
    let mut invalidated = total - order.len();
    let mut verify = |path: &Path, expected: &str| content_matches(path, expected);
    for key in order {
        let rec = by_key.remove(&key).expect("key recorded on insert");
        match ckpt::invalidate::parse_result(&rec.result) {
            Ok(value) if ckpt::invalidate::stale_file_outputs(&value, &mut verify).is_empty() => {
                seed.push(rec)
            }
            _ => invalidated += 1,
        }
    }
    (seed, invalidated)
}

/// Does the file's current content match a recorded `checksum` string?
/// Unknown checksum formats replay (fail open: the format predates or
/// postdates this build; existence was already checked). Hashing goes
/// through the process-global digest index, so a file the data plane
/// already ingested costs a metadata stat, not a re-read.
fn content_matches(path: &Path, expected: &str) -> bool {
    let Some(want_hash) = expected
        .strip_prefix("xxh64:")
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
    else {
        return true;
    };
    if let Some(d) = datastore::index::global().lookup_current(path) {
        return d.hash == want_hash;
    }
    match datastore::Digest::of_file(path) {
        Ok(d) => {
            if let (Ok(canonical), Ok(meta)) = (path.canonicalize(), std::fs::metadata(path)) {
                datastore::index::global().record(&canonical, &meta, d);
            }
            d.hash == want_hash
        }
        Err(_) => false,
    }
}
