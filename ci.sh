#!/usr/bin/env bash
# Local CI gate: build everything, run the full test suite, and hold the
# workspace to zero clippy warnings.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release

# Test suite, held to a wall-clock budget so the tier-1 gate cannot creep
# into unusable territory (override for slow machines).
TEST_BUDGET_SECS="${CI_TEST_BUDGET_SECS:-600}"
test_start=$(date +%s)
cargo test -q
test_elapsed=$(( $(date +%s) - test_start ))
echo "test suite took ${test_elapsed}s (budget ${TEST_BUDGET_SECS}s)"
if [ "$test_elapsed" -gt "$TEST_BUDGET_SECS" ]; then
    echo "error: test suite exceeded its ${TEST_BUDGET_SECS}s budget" >&2
    exit 1
fi

cargo fmt --check
cargo clippy --all-targets -- -D warnings

# Static analysis gate: every shipped fixture and config must be
# diagnostic-free, warnings included. (fixtures/broken/ is the analyzer's
# own negative corpus and is deliberately not globbed here.)
cargo run --release -p cwl --bin cwl-check -- --strict -q fixtures/*.cwl configs/

# Benches must at least compile.
cargo bench --no-run

# Dispatch-pipeline throughput smoke: exercises the batched HTEX protocol
# and the compiled-expression cache end to end. The committed
# BENCH_dispatch.json comes from a full run (no --smoke); see EXPERIMENTS.md.
cargo run --release -p bench --bin throughput -- --smoke --json target/BENCH_dispatch.smoke.json

# Observability smoke: run a workflow with monitoring on, then summarize the
# exported trace with parsl-trace in both human and JSON form. The JSON
# output must name every diamond task.
rm -rf target/trace-smoke-work target/trace-smoke.jsonl target/trace-smoke.jsonl.chrome.json
cargo run --release -p cwl_parsl --bin parsl-cwl -- \
    configs/trace-smoke.yml fixtures/diamond.cwl --message='trace smoke'
test -s target/trace-smoke.jsonl
test -s target/trace-smoke.jsonl.chrome.json
cargo run --release -p obs --bin parsl-trace -- target/trace-smoke.jsonl
trace_json=$(cargo run --release -p obs --bin parsl-trace -- target/trace-smoke.jsonl --json)
for step in seed left right join; do
    echo "$trace_json" | grep -q "\"$step\"" || {
        echo "error: parsl-trace --json is missing task \"$step\"" >&2
        exit 1
    }
done

# Disabled-monitoring overhead gate: the instrumented pipeline with
# monitoring off must stay within noise of the committed pre-instrumentation
# numbers (tolerance overridable via BENCH_CHECK_TOLERANCE).
cargo run --release -p bench --bin throughput -- --check BENCH_dispatch.json
