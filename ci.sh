#!/usr/bin/env bash
# Local CI gate: build everything, run the full test suite, and hold the
# workspace to zero clippy warnings.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
