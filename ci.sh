#!/usr/bin/env bash
# Local CI gate: build everything, run the full test suite, and hold the
# workspace to zero clippy warnings.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --all-targets -- -D warnings

# Static analysis gate: every shipped fixture and config must be
# diagnostic-free, warnings included. (fixtures/broken/ is the analyzer's
# own negative corpus and is deliberately not globbed here.)
cargo run --release -p cwl --bin cwl-check -- --strict -q fixtures/*.cwl configs/

# Benches must at least compile.
cargo bench --no-run

# Dispatch-pipeline throughput smoke: exercises the batched HTEX protocol
# and the compiled-expression cache end to end. The committed
# BENCH_dispatch.json comes from a full run (no --smoke); see EXPERIMENTS.md.
cargo run --release -p bench --bin throughput -- --smoke --json target/BENCH_dispatch.smoke.json
