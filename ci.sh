#!/usr/bin/env bash
# Local CI gate: build everything, run the full test suite, and hold the
# workspace to zero clippy warnings.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release

# Test suite, held to a wall-clock budget so the tier-1 gate cannot creep
# into unusable territory (override for slow machines).
TEST_BUDGET_SECS="${CI_TEST_BUDGET_SECS:-600}"
test_start=$(date +%s)
cargo test -q
test_elapsed=$(( $(date +%s) - test_start ))
echo "test suite took ${test_elapsed}s (budget ${TEST_BUDGET_SECS}s)"
if [ "$test_elapsed" -gt "$TEST_BUDGET_SECS" ]; then
    echo "error: test suite exceeded its ${TEST_BUDGET_SECS}s budget" >&2
    exit 1
fi

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Deterministic-simulation gate (DESIGN.md §4i): the invariant suite over a
# fixed 50-seed matrix plus one rotating seed indexed by the CI run (falling
# back to the date locally), so every CI run explores a schedule nobody has
# seen before while staying replayable. simrun prints the reproducing seed
# and the exact replay command on failure and exits nonzero.
rotating_seed=$(( ${GITHUB_RUN_NUMBER:-$(date +%Y%m%d)} + 1000003 ))
echo "sim gate: fixed seeds 1..50 + rotating seed ${rotating_seed}"
cargo run --release -p gridsim --bin simrun -- \
    --suite --count 50 --base 1 --seeds "$rotating_seed"
# The full-stack driver (real DFK/HTEX under a virtual clock) on the same
# rotating seed; the fixed matrix already ran inside `cargo test` above.
SIM_SEEDS="$rotating_seed" cargo test --release -q -p cwl_parsl \
    --test integration_simtest
# Replay guarantee: two consecutive runs of one seed must emit byte-identical
# event logs, else a CI failure's seed would not reproduce locally.
cargo run --release -p gridsim --bin simrun -- --log 42 > target/sim-seed42-a.log
cargo run --release -p gridsim --bin simrun -- --log 42 > target/sim-seed42-b.log
if ! cmp -s target/sim-seed42-a.log target/sim-seed42-b.log; then
    echo "error: seed 42 produced different event logs on consecutive runs:" >&2
    diff target/sim-seed42-a.log target/sim-seed42-b.log | head >&2
    exit 1
fi
echo "sim gate: seed 42 event log is byte-stable across runs"

# Static analysis gate: every shipped fixture and config must be
# diagnostic-free, warnings included. (fixtures/broken/ is the analyzer's
# own negative corpus and is deliberately not globbed here.)
cargo run --release -p cwl --bin cwl-check -- --strict -q fixtures/*.cwl configs/

# Run-config lint gate: every shipped config must type-check against the
# parsl-lint schema, warnings included.
cargo run --release -p cwl_parsl --bin parsl-lint -- --strict -q configs/

# The analyzer must still CATCH what it exists to catch: a clean exit on
# the negative corpus would mean the effect/feasibility passes regressed.
for bad in effect_collision unschedulable; do
    if cargo run --release -p cwl --bin cwl-check -- --strict -q \
        "fixtures/broken/$bad.cwl" >/dev/null 2>&1; then
        echo "error: cwl-check --strict passed fixtures/broken/$bad.cwl" >&2
        exit 1
    fi
done

# Benches must at least compile.
cargo bench --no-run

# Dispatch-pipeline throughput smoke: exercises the batched HTEX protocol
# and the compiled-expression cache end to end. The committed
# BENCH_dispatch.json comes from a full run (no --smoke); see EXPERIMENTS.md.
cargo run --release -p bench --bin throughput -- --smoke --json target/BENCH_dispatch.smoke.json

# Stage-in throughput smoke: the zero-copy ladder vs the byte-copy baseline
# over a small scatter, with byte-identity verified inside the driver. The
# committed BENCH_staging.json comes from a full run; see EXPERIMENTS.md.
cargo run --release -p bench --bin staging -- --smoke --json target/BENCH_staging.smoke.json

# Observability smoke: run a workflow with monitoring on, then summarize the
# exported trace with parsl-trace in both human and JSON form. The JSON
# output must name every diamond task.
rm -rf target/trace-smoke-work target/trace-smoke.jsonl target/trace-smoke.jsonl.chrome.json
cargo run --release -p cwl_parsl --bin parsl-cwl -- \
    configs/trace-smoke.yml fixtures/diamond.cwl --message='trace smoke'
test -s target/trace-smoke.jsonl
test -s target/trace-smoke.jsonl.chrome.json
cargo run --release -p obs --bin parsl-trace -- target/trace-smoke.jsonl
trace_json=$(cargo run --release -p obs --bin parsl-trace -- target/trace-smoke.jsonl --json)
for step in seed left right join; do
    echo "$trace_json" | grep -q "\"$step\"" || {
        echo "error: parsl-trace --json is missing task \"$step\"" >&2
        exit 1
    }
done

# Data-plane smoke, on the same trace: the diamond's fan-out must have
# staged at least one input by link (not copy) and saved bytes doing it.
for metric in stage.links stage.bytes_saved; do
    value=$(echo "$trace_json" \
        | grep -o "\"name\":\"$metric\",\"kind\":\"counter\",\"value\":[0-9]*" \
        | grep -o '[0-9]*$')
    if [ -z "$value" ] || [ "$value" -eq 0 ]; then
        echo "error: data plane staged nothing zero-copy ($metric=${value:-missing})" >&2
        exit 1
    fi
    echo "data-plane smoke: $metric=$value"
done

# Crash-resume smoke: kill parsl-cwl mid-run with SIGKILL, resume from the
# checkpoint journal, and require the resumed run to report replayed tasks
# through parsl-trace. The workflow is generated under target/ (not
# fixtures/) so the cwl-check gate's corpus is unchanged; each step gates on
# the previous one so the kill window is wide.
rm -rf target/ckpt-smoke target/ckpt-smoke-work target/ckpt-smoke.jsonl
mkdir -p target/ckpt-smoke
cat > target/ckpt-smoke/slow_step.cwl <<'EOF'
cwlVersion: v1.2
class: CommandLineTool
baseCommand: sleepms
inputs:
  ms:
    type: int
    inputBinding:
      position: 1
  gate:
    type: File?
    inputBinding:
      position: 2
outputs:
  output:
    type: stdout
stdout: slept.txt
EOF
cat > target/ckpt-smoke/slow.cwl <<'EOF'
cwlVersion: v1.2
class: Workflow
inputs:
  first_ms:
    type: int
outputs:
  done:
    type: File
    outputSource: s4/output
steps:
  s1:
    run: slow_step.cwl
    in:
      ms: first_ms
    out: [output]
  s2:
    run: slow_step.cwl
    in:
      ms:
        default: 800
      gate: s1/output
    out: [output]
  s3:
    run: slow_step.cwl
    in:
      ms:
        default: 800
      gate: s2/output
    out: [output]
  s4:
    run: slow_step.cwl
    in:
      ms:
        default: 800
      gate: s3/output
    out: [output]
EOF
cat > target/ckpt-smoke/config.yml <<'EOF'
executor:
  kind: thread-pool
  workers: 1
checkpoint:
  mode: task-exit
monitoring:
  enabled: true
  sample_rate: 1.0
  export: target/ckpt-smoke.jsonl
  sinks: [jsonl]
run:
  workdir: ./target/ckpt-smoke-work
  builtin_tools: true
EOF
./target/release/parsl-cwl target/ckpt-smoke/config.yml \
    target/ckpt-smoke/slow.cwl --first_ms=10 >/dev/null 2>&1 &
smoke_pid=$!
ckpt_journal=target/ckpt-smoke-work/ckpt/journal.ckpt
# A journal with at least one task record is well past the ~40-byte header.
for _ in $(seq 1 600); do
    size=$(stat -c %s "$ckpt_journal" 2>/dev/null || echo 0)
    [ "$size" -gt 120 ] && break
    kill -0 "$smoke_pid" 2>/dev/null || break
    sleep 0.05
done
kill -9 "$smoke_pid" 2>/dev/null || true
wait "$smoke_pid" 2>/dev/null || true
test -s "$ckpt_journal"
./target/release/parsl-cwl target/ckpt-smoke/config.yml \
    target/ckpt-smoke/slow.cwl --first_ms=10 --resume target/ckpt-smoke-work
replayed=$(cargo run --release -p obs --bin parsl-trace -- target/ckpt-smoke.jsonl --json \
    | grep -o '"name":"ckpt.replayed","kind":"counter","value":[0-9]*' \
    | grep -o '[0-9]*$')
if [ -z "$replayed" ] || [ "$replayed" -eq 0 ]; then
    echo "error: resumed run replayed no checkpointed tasks (ckpt.replayed=${replayed:-missing})" >&2
    exit 1
fi
echo "crash-resume smoke: $replayed task(s) replayed from the journal"

# Service smoke: one warm parsl-serve daemon runs several workflows
# concurrently, is SIGTERMed mid-run, restarts with --resume replaying the
# interrupted run's journal, and drains cleanly. The slow workflow reuses
# the crash-resume smoke's gated sleepms steps so the kill window is wide.
rm -rf target/serve-smoke target/serve-smoke-work target/serve-smoke.jsonl
mkdir -p target/serve-smoke
cp target/ckpt-smoke/slow_step.cwl target/ckpt-smoke/slow.cwl target/serve-smoke/
cat > target/serve-smoke/config.yml <<'EOF'
executor:
  kind: thread-pool
  workers: 4
monitoring:
  enabled: true
  sample_rate: 1.0
  export: target/serve-smoke.jsonl
  sinks: [jsonl]
run:
  workdir: ./target/serve-smoke-work
  builtin_tools: true
serve:
  max_in_flight: 3
  tenants:
    alice: 2.0
    bob: 1.0
EOF
cat > target/serve-smoke/words.yml <<'EOF'
words: [serve, smoke, gate]
EOF
serve_cfg=target/serve-smoke/config.yml
serve_sock=target/serve-smoke-work/serve.sock
wait_for_socket() {
    for _ in $(seq 1 200); do
        [ -S "$serve_sock" ] && return 0
        sleep 0.05
    done
    echo "error: parsl-serve never bound $serve_sock" >&2
    exit 1
}
./target/release/parsl-serve "$serve_cfg" &
serve_pid=$!
wait_for_socket
# Two concurrent submissions from different tenants through one daemon.
./target/release/parsl-cwl submit "$serve_cfg" fixtures/diamond.cwl \
    --message='serve smoke' --tenant=alice
./target/release/parsl-cwl submit "$serve_cfg" fixtures/scatter_words_py.cwl \
    target/serve-smoke/words.yml --tenant=bob
for _ in $(seq 1 600); do
    finished=$(./target/release/parsl-cwl status "$serve_cfg" \
        | grep -c 'state=completed' || true)
    [ "$finished" -ge 2 ] && break
    sleep 0.1
done
if [ "${finished:-0}" -lt 2 ]; then
    echo "error: concurrent serve runs never completed:" >&2
    ./target/release/parsl-cwl status "$serve_cfg" >&2 || true
    exit 1
fi
echo "serve smoke: 2 concurrent runs completed"
# Third run, then SIGTERM the daemon mid-run (after >=1 journaled task).
./target/release/parsl-cwl submit "$serve_cfg" target/serve-smoke/slow.cwl \
    --first_ms=10 --tenant=alice
serve_journal=target/serve-smoke-work/runs/run-2/ckpt/journal.ckpt
for _ in $(seq 1 600); do
    size=$(stat -c %s "$serve_journal" 2>/dev/null || echo 0)
    [ "$size" -gt 120 ] && break
    sleep 0.05
done
kill -TERM "$serve_pid"
wait "$serve_pid"
test -s "$serve_journal"
# Restart with --resume: the interrupted run must replay, not re-execute.
./target/release/parsl-serve "$serve_cfg" --resume &
serve_pid=$!
wait_for_socket
for _ in $(seq 1 600); do
    line=$(./target/release/parsl-cwl status "$serve_cfg" 2 | grep '^run 2 ' || true)
    echo "$line" | grep -q 'state=completed' && break
    sleep 0.1
done
echo "$line" | grep -q 'state=completed' || {
    echo "error: resumed serve run never completed: $line" >&2
    exit 1
}
resumed_replayed=$(echo "$line" | grep -o 'replayed=[0-9]*' | grep -o '[0-9]*$')
if [ -z "$resumed_replayed" ] || [ "$resumed_replayed" -eq 0 ]; then
    echo "error: resumed serve run replayed nothing: $line" >&2
    exit 1
fi
./target/release/parsl-cwl drain "$serve_cfg" --wait
wait "$serve_pid"
# The drained daemon exported its trace; replay must be visible there too.
serve_replayed=$(cargo run --release -p obs --bin parsl-trace -- target/serve-smoke.jsonl --json \
    | grep -o '"name":"ckpt.replayed","kind":"counter","value":[0-9]*' \
    | grep -o '[0-9]*$')
if [ -z "$serve_replayed" ] || [ "$serve_replayed" -eq 0 ]; then
    echo "error: serve trace shows no replayed tasks (ckpt.replayed=${serve_replayed:-missing})" >&2
    exit 1
fi
echo "serve smoke: resumed run replayed $resumed_replayed task(s) (trace ckpt.replayed=$serve_replayed), drained cleanly"

# Disabled-monitoring overhead gate: the instrumented pipeline with
# monitoring off must stay within noise of the committed pre-instrumentation
# numbers (tolerance overridable via BENCH_CHECK_TOLERANCE).
cargo run --release -p bench --bin throughput -- --check BENCH_dispatch.json

# Data-plane regression gate: the link-vs-copy speedup on the full
# 1000-image scatter must hold the 3x floor and stay within tolerance of
# the committed BENCH_staging.json.
cargo run --release -p bench --bin staging -- --check BENCH_staging.json
