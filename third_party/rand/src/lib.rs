//! Offline stand-in for `rand` 0.8, providing the subset of its API this
//! workspace uses: [`thread_rng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] / [`rngs::SmallRng`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! solid for simulation jitter and synthetic data, which is all this
//! workspace needs (nothing here is cryptographic).

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from OS-ish entropy (time + thread identity here).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9e3779b97f4a7c15);
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write_u64(t);
    h.finish() ^ t
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// xoshiro256** core state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::*;
    use std::cell::Cell;

    /// The "standard" RNG (xoshiro256** here).
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_seed_u64(seed))
        }
    }

    /// A small fast RNG (same core as [`StdRng`] in this stand-in).
    #[derive(Debug, Clone)]
    pub struct SmallRng(pub(crate) Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_seed_u64(seed))
        }
    }

    /// Handle to the calling thread's lazily-seeded generator.
    #[derive(Debug, Clone)]
    pub struct ThreadRng;

    thread_local! {
        pub(crate) static THREAD_STATE: Cell<u64> = Cell::new(super::entropy_seed());
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            THREAD_STATE.with(|state| {
                let mut s = state.get();
                let v = splitmix64(&mut s);
                state.set(s);
                v
            })
        }
    }
}

/// The calling thread's generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng
}

/// Types producible directly from raw random bits (rand's `Standard`
/// distribution, flattened into a trait).
pub trait Standard: Sized {
    /// Sample a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = f64::sample_standard(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Extension methods over any [`RngCore`] (rand's `Rng`).
pub trait Rng: RngCore {
    /// Sample a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f: f64 = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
            let u: u8 = rng.gen_range(1u8..=255);
            assert!(u >= 1);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s), "{seen:?}");
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn thread_rng_usable() {
        let mut rng = thread_rng();
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        // Overwhelmingly unlikely to collide.
        assert_ne!(a, b);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
