//! Offline stand-in for `parking_lot`, providing the subset of its API this
//! workspace uses — `Mutex`, `MutexGuard`, `Condvar`, `WaitTimeoutResult` —
//! implemented over `std::sync`. Semantics match parking_lot where they
//! matter here: `lock()` returns the guard directly (no poisoning — a
//! panicked holder does not poison the lock for later users), `Condvar::wait`
//! takes `&mut MutexGuard`, and both types have `const fn new`.

use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (no poisoning, `const`-constructible).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so [`Condvar::wait`] can temporarily move
/// the underlying std guard out while the thread is parked.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified. The guard is released while parked and
    /// re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    static CONST_LOCK: Mutex<i32> = Mutex::new(7);

    #[test]
    fn const_mutex_locks() {
        assert_eq!(*CONST_LOCK.lock(), 7);
    }

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, c) = &*pair2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_until(&mut g, Instant::now() + Duration::from_millis(20));
        assert!(r.timed_out());
    }
}
