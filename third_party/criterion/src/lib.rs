//! Offline stand-in for `criterion`, covering the API surface this
//! workspace's benches use: benchmark groups, `bench_function` /
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — each routine runs a fixed number of
//! iterations and the mean wall-clock time is printed. There is no warm-up,
//! outlier analysis, or HTML report; the point is that `cargo bench`
//! compiles and produces comparable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (best-effort without intrinsics).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How batched setup output is grouped between routine calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh setup for every routine invocation.
    PerIteration,
    /// One setup feeding a small batch of invocations.
    SmallInput,
    /// One setup feeding a large batch of invocations.
    LargeInput,
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, as real criterion renders it.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Something usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this bencher's iteration budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.into_id(), &b);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.into_id(), &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let mean = if b.iterations > 0 {
            b.elapsed / b.iterations as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{id}: {:?} mean over {} iterations",
            self.name, mean, b.iterations
        );
        let _ = &self.criterion;
    }

    /// End the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter_batched(|| n, |x| x * x, BatchSize::PerIteration)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn benchmark_id_renders_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
