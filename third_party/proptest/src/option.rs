//! `Option` strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Some`/`None` with even odds.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.gen_bool(0.5) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Option<T>` values where `Some` wraps `inner`'s output.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let s = of(0u8..4);
        let mut rng = TestRng::from_seed(11);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                Some(v) => {
                    assert!(v < 4);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}
