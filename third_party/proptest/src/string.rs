//! Regex-driven string strategies (`proptest::string::string_regex`).
//!
//! Implements the regex subset the workspace's strategies actually use:
//! literal characters, `\`-escapes, character classes with ranges
//! (`[a-zA-Z0-9_.@-]`, `[ -~]`), and the `{n}` / `{m,n}` / `?` / `*` / `+`
//! quantifiers. Anything else is a parse error.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Parse failure for an unsupported or malformed pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported regex: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// One generatable unit plus its repetition bounds.
#[derive(Debug, Clone)]
struct Atom {
    /// The characters this atom may produce.
    choices: Vec<char>,
    /// Inclusive repetition bounds.
    min: u32,
    max: u32,
}

#[derive(Debug, Clone)]
struct Pattern {
    atoms: Vec<Atom>,
}

fn resolve_escape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse(pattern: &str) -> Result<Pattern, Error> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                let mut pending_range = false;
                loop {
                    let item = chars
                        .next()
                        .ok_or_else(|| Error(format!("{pattern}: unterminated class")))?;
                    match item {
                        ']' => {
                            if let Some(p) = prev {
                                set.push(p);
                            }
                            if pending_range {
                                set.push('-');
                            }
                            break;
                        }
                        '-' if prev.is_some() && !pending_range => {
                            // Might be a range; decided by the next char.
                            pending_range = true;
                        }
                        mut item => {
                            if item == '\\' {
                                let esc = chars
                                    .next()
                                    .ok_or_else(|| Error(format!("{pattern}: dangling escape")))?;
                                item = resolve_escape(esc);
                            }
                            if pending_range {
                                let lo = prev.take().expect("range needs a start");
                                pending_range = false;
                                if lo as u32 > item as u32 {
                                    return Err(Error(format!(
                                        "{pattern}: inverted range {lo}-{item}"
                                    )));
                                }
                                for cp in lo as u32..=item as u32 {
                                    if let Some(ch) = char::from_u32(cp) {
                                        set.push(ch);
                                    }
                                }
                            } else {
                                if let Some(p) = prev.replace(item) {
                                    set.push(p);
                                }
                            }
                        }
                    }
                }
                if set.is_empty() {
                    return Err(Error(format!("{pattern}: empty class")));
                }
                set
            }
            '\\' => {
                let esc = chars
                    .next()
                    .ok_or_else(|| Error(format!("{pattern}: dangling escape")))?;
                match esc {
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z')
                        .chain('A'..='Z')
                        .chain('0'..='9')
                        .chain(['_'])
                        .collect(),
                    other => vec![resolve_escape(other)],
                }
            }
            '(' | ')' | '|' | '.' | '^' => {
                return Err(Error(format!("{pattern}: `{c}` not supported")));
            }
            literal => vec![literal],
        };

        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(d) => spec.push(d),
                        None => return Err(Error(format!("{pattern}: unterminated quantifier"))),
                    }
                }
                let parse_u32 = |s: &str| {
                    s.trim()
                        .parse::<u32>()
                        .map_err(|_| Error(format!("{pattern}: bad quantifier {{{spec}}}")))
                };
                match spec.split_once(',') {
                    None => {
                        let n = parse_u32(&spec)?;
                        (n, n)
                    }
                    Some((lo, "")) => {
                        let m = parse_u32(lo)?;
                        (m, m + 16)
                    }
                    Some((lo, hi)) => (parse_u32(lo)?, parse_u32(hi)?),
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        if min > max {
            return Err(Error(format!("{pattern}: quantifier min > max")));
        }
        atoms.push(Atom { choices, min, max });
    }
    Ok(Pattern { atoms })
}

/// Strategy generating strings matching a supported regex pattern.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    pattern: Pattern,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.pattern.atoms {
            let span = (atom.max - atom.min + 1) as usize;
            let count = atom.min + rng.gen_usize(span) as u32;
            for _ in 0..count {
                out.push(atom.choices[rng.gen_usize(atom.choices.len())]);
            }
        }
        out
    }
}

/// Build a string strategy from `pattern`.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    Ok(RegexGeneratorStrategy {
        pattern: parse(pattern)?,
    })
}

/// Parse + generate in one step (used by the `&str: Strategy` impl).
pub fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> Result<String, Error> {
    Ok(string_regex(pattern)?.generate(rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_many(pattern: &str) -> Vec<String> {
        let s = string_regex(pattern).unwrap();
        let mut rng = TestRng::from_seed(31);
        (0..200).map(|_| s.generate(&mut rng)).collect()
    }

    #[test]
    fn simple_class_with_quantifier() {
        for s in gen_many("[a-z]{1,6}") {
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn literal_prefix() {
        for s in gen_many("--[a-z]{1,8}") {
            assert!(s.starts_with("--"), "{s:?}");
            assert!(s.len() >= 3 && s.len() <= 10, "{s:?}");
        }
    }

    #[test]
    fn class_with_trailing_dash_and_symbols() {
        let mut saw_symbol = false;
        for s in gen_many("[a-zA-Z0-9_.@-]{0,16}") {
            assert!(s.len() <= 16);
            for c in s.chars() {
                assert!(
                    c.is_ascii_alphanumeric() || "_.@-".contains(c),
                    "{c:?} in {s:?}"
                );
                if "_.@-".contains(c) {
                    saw_symbol = true;
                }
            }
        }
        assert!(saw_symbol);
    }

    #[test]
    fn leading_class_then_tail() {
        for s in gen_many("[a-zA-Z_$][a-zA-Z0-9_.$-]{0,12}") {
            assert!(!s.is_empty());
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_' || first == '$');
        }
    }

    #[test]
    fn printable_ascii_range_with_escape() {
        for s in gen_many("[ -~\\n]{0,24}") {
            for c in s.chars() {
                assert!((' '..='~').contains(&c) || c == '\n', "{c:?}");
            }
        }
    }

    #[test]
    fn exact_count_and_shorthand_quantifiers() {
        for s in gen_many("x{3}") {
            assert_eq!(s, "xxx");
        }
        for s in gen_many("a?b+") {
            assert!(s.ends_with('b'));
            assert!(s.trim_start_matches('a').chars().all(|c| c == 'b'));
        }
    }

    #[test]
    fn unsupported_constructs_error() {
        assert!(string_regex("(ab)").is_err());
        assert!(string_regex("a|b").is_err());
        assert!(string_regex("[a-z").is_err());
    }
}
