//! Offline stand-in for `proptest`, implementing the subset of its API this
//! workspace uses. Test cases are generated from a deterministic per-test
//! RNG (seeded from the test's module path and name plus the case index, or
//! from `PROPTEST_SEED` when set), so failures reproduce across runs.
//!
//! Differences from real proptest, by design:
//! * no shrinking — a failing case reports the generated inputs as-is;
//! * regex strategies support the subset actually used here: literals,
//!   escapes, character classes with ranges, and `{m,n}` quantifiers;
//! * strategies are sampled independently per case.

pub mod strategy;

pub mod collection;
pub mod option;
pub mod sample;
pub mod string;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// The glob import every proptest consumer starts with.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Per-`proptest!` configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Run `cases` generated executions of `body`, where `body` generates its
/// inputs from the per-case RNG. Used by the [`proptest!`] macro; not part
/// of real proptest's public API.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    body: impl Fn(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
) {
    let base = test_runner::base_seed(test_name);
    let mut rejected = 0u32;
    let mut case = 0u32;
    let budget = config.cases.saturating_mul(16).max(1024);
    let mut attempts = 0u32;
    while case < config.cases {
        attempts += 1;
        if attempts > budget {
            panic!(
                "proptest {test_name}: gave up after {attempts} attempts \
                 ({case} cases run, {rejected} rejected)"
            );
        }
        let mut rng = test_runner::TestRng::from_seed(
            base ^ (attempts as u64).wrapping_mul(0x9e3779b97f4a7c15),
        );
        match body(&mut rng) {
            Ok(()) => case += 1,
            Err(test_runner::TestCaseError::Reject(_)) => rejected += 1,
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {test_name} failed at case {case} \
                     (seed {base:#x}, attempt {attempts}): {msg}"
                );
            }
        }
    }
}

/// The macro proptest consumers write their tests in.
///
/// Supports the forms used in this workspace:
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(128))]
///     #[test]
///     fn name(x in strategy1(), y in 0usize..8) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    // Without one.
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        #[test]
        fn $name() {
            let config = $cfg;
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                &config,
                |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __inputs = {
                        let mut s = ::std::string::String::new();
                        $(s.push_str(&format!(
                            "\n  {} = {:?}", stringify!($arg), &$arg
                        ));)+
                        s
                    };
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    __result.map_err(|e| match e {
                        $crate::test_runner::TestCaseError::Fail(msg) => {
                            $crate::test_runner::TestCaseError::Fail(
                                format!("{msg}\ninputs:{__inputs}"),
                            )
                        }
                        reject => reject,
                    })
                },
            );
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Assert inside a proptest body; failure fails the case with the inputs
/// attached, rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (counts as rejected, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
/// Supports optional `weight =>` prefixes (weights are respected).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}
