//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Acceptable length specifications for [`vec`].
pub trait SizeRange {
    /// Draw a length.
    fn pick_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for Range<usize> {
    fn pick_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.gen_usize(self.end - self.start)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick_len(&self, rng: &mut TestRng) -> usize {
        *self.start() + rng.gen_usize(*self.end() - *self.start() + 1)
    }
}

impl SizeRange for usize {
    fn pick_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// Strategy for `Vec<T>` with length drawn from `size`.
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick_len(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of `element` values with a length in `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_respects_range() {
        let s = vec(0u8..10, 2..5);
        let mut rng = TestRng::from_seed(5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
    }
}
