//! Sampling strategies (`proptest::sample::{select, Index}`).

use crate::strategy::{Arbitrary, Strategy};
use crate::test_runner::TestRng;
use std::fmt::Debug;

/// Strategy choosing uniformly from a fixed set of values.
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_usize(self.options.len())].clone()
    }
}

/// Uniform choice among `options` (must be non-empty).
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// A position into a collection whose length is unknown at generation time;
/// resolve it with [`Index::index`].
#[derive(Debug, Clone, Copy)]
pub struct Index(f64);

impl Index {
    /// Map this index onto a collection of `len` elements (`len > 0`).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index requires a non-empty collection");
        ((self.0 * len as f64) as usize).min(len - 1)
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.gen_unit_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn select_stays_in_set() {
        let s = select(vec![3, 5, 9]);
        let mut rng = TestRng::from_seed(21);
        for _ in 0..100 {
            assert!([3, 5, 9].contains(&s.generate(&mut rng)));
        }
    }

    #[test]
    fn index_in_bounds_for_any_len() {
        let s = any::<Index>();
        let mut rng = TestRng::from_seed(22);
        for len in [1usize, 2, 7, 1000] {
            for _ in 0..50 {
                assert!(s.generate(&mut rng).index(len) < len);
            }
        }
    }
}
