//! The [`Strategy`] trait, combinators, and primitive strategy impls.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values passing `pred` (budgeted; falls back to the last
    /// generated value if the predicate keeps failing).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Build recursive strategies: `f` receives the strategy built so far
    /// and returns one that may embed it. Applied `depth` times.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = f(current).boxed();
        }
        current
    }

    /// Type-erase the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Arc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            gen: self.gen.clone(),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: Debug,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut last = self.inner.generate(rng);
        for _ in 0..64 {
            if (self.pred)(&last) {
                break;
            }
            last = self.inner.generate(rng);
        }
        last
    }
}

/// Weighted union of same-valued strategies — what [`prop_oneof!`] builds.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T: Debug> Union<T> {
    /// A union over weighted arms (weights must not all be zero).
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof requires a positive total weight");
        Self { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_usize(self.total as usize) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        self.arms.last().expect("non-empty union").1.generate(rng)
    }
}

/// Marker trait for types [`any`] can generate.
pub trait Arbitrary: Debug + Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, roughly symmetric around zero.
        (rng.gen_unit_f64() - 0.5) * 2.0e12
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.gen_usize(0xD800) as u32).unwrap_or('a')
    }
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained values of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_i128(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_i128(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.gen_unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_for_float_range!(f32, f64);

/// String literals are regex strategies (proptest's `&str: Strategy`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_regex(self, rng)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuple! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// A `Vec` of strategies generates element-wise (used for per-node
/// strategies in DAG generation).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn ranges_and_map() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (1usize..5).generate(&mut r);
            assert!((1..5).contains(&v));
            let doubled = (1i64..4).prop_map(|x| x * 2).generate(&mut r);
            assert!([2, 4, 6].contains(&doubled));
            let incl = (1u8..=3).generate(&mut r);
            assert!((1..=3).contains(&incl));
        }
    }

    #[test]
    fn just_and_union() {
        let mut r = rng();
        let u = Union::new(vec![(1, Just(1i32).boxed()), (1, Just(2i32).boxed())]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn flat_map_chains() {
        let mut r = rng();
        for _ in 0..100 {
            let v = (1usize..4).prop_flat_map(|n| 0usize..n).generate(&mut r);
            assert!(v < 3);
        }
    }

    #[test]
    fn tuple_and_vec_strategies() {
        let mut r = rng();
        let (a, b) = ((0i64..5), (5i64..9)).generate(&mut r);
        assert!((0..5).contains(&a) && (5..9).contains(&b));
        let per_node = vec![(0usize..2), (2usize..4), (4usize..6)];
        let v = per_node.generate(&mut r);
        assert_eq!(v.len(), 3);
        assert!(v[0] < 2 && (2..4).contains(&v[1]) && (4..6).contains(&v[2]));
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)] // payloads exist only to give the variants shape
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let s = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..50 {
            let _ = s.generate(&mut r);
        }
    }
}
