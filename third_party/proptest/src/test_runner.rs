//! Deterministic RNG and case-outcome types backing the [`proptest!`] macro.

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions were not met; generate another case.
    Reject(&'static str),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure from anything printable.
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }
}

/// SplitMix64 — deterministic, seedable, and plenty for test-case
/// generation without shrinking.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator starting from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5bf0_3635_d290_9d5f,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn gen_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_usize bound must be non-zero");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform signed value in `[lo, hi)` over the i128 domain (covers all
    /// primitive integer ranges used by strategies).
    pub fn gen_i128(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u128;
        let raw = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        lo + (raw % span) as i128
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_unit_f64() < p
    }
}

/// Deterministic seed for a test: from `PROPTEST_SEED` when set, else an
/// FNV-1a hash of the fully qualified test name — stable across runs and
/// processes.
pub fn base_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.trim().parse::<u64>() {
            return v;
        }
    }
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::from_seed(1);
        let mut b = TestRng::from_seed(1);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..500 {
            assert!(rng.gen_usize(7) < 7);
            let v = rng.gen_i128(-3, 4);
            assert!((-3..4).contains(&v));
            let f = rng.gen_unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn name_seed_is_stable() {
        assert_eq!(base_seed("a::b"), base_seed("a::b"));
        assert_ne!(base_seed("a::b"), base_seed("a::c"));
    }
}
