//! Offline stand-in for `crossbeam`, providing the subset of its API this
//! workspace uses: an unbounded MPMC channel (`channel::unbounded`) and
//! scoped threads (`thread::scope`), both implemented over `std::sync`.
//!
//! Semantics mirrored from crossbeam where this workspace depends on them:
//! * senders and receivers are `Clone`;
//! * `recv` blocks until a message arrives or every sender is dropped
//!   (then returns `Err(RecvError)` once the queue drains);
//! * `send` fails with the message returned when every receiver is gone;
//! * `thread::scope` joins all spawned threads before returning and converts
//!   child panics into an `Err`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cond: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Queue a message. Never blocks; fails only when every receiver has
        /// been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.shared.cond.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake receivers so they observe the
                // disconnect.
                self.shared.cond.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .cond
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, result) = self
                    .shared
                    .cond
                    .wait_timeout(queue, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
                if result.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Pop a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

pub mod thread {
    /// Handle to a thread spawned inside a [`scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Join the thread, returning its result (Err on panic).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Scope passed to the closure of [`scope`]; spawn threads through it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again
        /// (crossbeam's signature), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Run `f` with a scope whose spawned threads are all joined before this
    /// function returns. A panic in any unjoined child (or in `f` itself)
    /// surfaces as `Err` carrying the panic payload.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(5).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(5));
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0usize;
                while rx.recv().is_ok() {
                    got += 1;
                }
                got
            }));
        }
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn scoped_threads_join() {
        let mut data = vec![0; 4];
        super::thread::scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i + 1);
            }
        })
        .unwrap();
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn scope_reports_child_panic() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("child died"));
        });
        assert!(r.is_err());
    }
}
