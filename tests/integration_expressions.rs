//! Integration of the expression layer across runners: JS and inline-Python
//! documents must agree semantically, the paper's `validate:` hooks must
//! behave identically everywhere, and the Fig. 2 cost asymmetry must point
//! in the documented direction.

use cwl_parsl::{CwlAppOptions, ParslWorkflowRunner};
use cwlexec::BuiltinDispatch;
use parsl::{Config, DataFlowKernel};
use runners::RefRunner;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use yamlite::{Map, Value};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("expr-int-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn word_inputs(n: usize) -> Map {
    let words: Vec<Value> = (0..n).map(|i| Value::str(format!("item{i:03}"))).collect();
    let mut m = Map::new();
    m.insert("words", Value::Seq(words));
    m
}

#[test]
fn js_and_python_word_workflows_agree_across_runners() {
    gridsim::TimeScale::set(0.0);
    let base = scratch("agree");

    // JS under the cwltool-like runner.
    let js_report = RefRunner::new(4, Arc::new(BuiltinDispatch))
        .run(
            fixtures().join("scatter_words_js.cwl"),
            &word_inputs(6),
            base.join("js"),
        )
        .unwrap();

    // Python under parsl-cwl.
    let dfk = DataFlowKernel::new(Config::local_threads(4));
    let py_out = ParslWorkflowRunner::new(
        &dfk,
        CwlAppOptions::in_dir(base.join("py")).with_builtin_tools(),
    )
    .run(fixtures().join("scatter_words_py.cwl"), &word_inputs(6))
    .unwrap();
    dfk.shutdown();

    let texts = |files: &Value| -> Vec<String> {
        files
            .as_seq()
            .unwrap()
            .iter()
            .map(|f| std::fs::read_to_string(f["path"].as_str().unwrap()).unwrap())
            .collect()
    };
    let js_texts = texts(js_report.outputs.get("capitalized").unwrap());
    let py_texts = texts(py_out.get("capitalized").unwrap());
    assert_eq!(js_texts, py_texts);
    assert_eq!(js_texts[0], "Item000\n");
    assert_eq!(js_texts.len(), 6);
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn validate_hook_enforced_by_baseline_runner_too() {
    gridsim::TimeScale::set(0.0);
    let base = scratch("validate");
    std::fs::write(base.join("good.csv"), "a,b\n").unwrap();
    std::fs::write(base.join("bad.json"), "{}").unwrap();
    let runner = RefRunner::new(1, Arc::new(BuiltinDispatch));

    let mut inputs = Map::new();
    inputs.insert(
        "data_file",
        Value::str(base.join("good.csv").to_string_lossy().into_owned()),
    );
    runner
        .run(
            fixtures().join("validate_csv.cwl"),
            &inputs,
            base.join("ok"),
        )
        .unwrap();

    let mut inputs = Map::new();
    inputs.insert(
        "data_file",
        Value::str(base.join("bad.json").to_string_lossy().into_owned()),
    );
    let err = runner
        .run(
            fixtures().join("validate_csv.cwl"),
            &inputs,
            base.join("bad"),
        )
        .unwrap_err();
    assert!(err.contains("Expected '.csv'"), "{err}");
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn fig2_cost_asymmetry_direction() {
    // With overheads at full scale, JS-under-cwltool must cost strictly
    // more than Python-under-parsl for the same word workload — the
    // asymmetry Fig. 2 plots. Small n keeps this fast.
    gridsim::TimeScale::set(0.2);
    let base = scratch("asym");
    let n = 12;

    let t_js = {
        let report = RefRunner::new(8, Arc::new(BuiltinDispatch))
            .run(
                fixtures().join("scatter_words_js.cwl"),
                &word_inputs(n),
                base.join("js"),
            )
            .unwrap();
        report.elapsed
    };
    let t_py = {
        let dfk = DataFlowKernel::new(Config::local_threads(8));
        let start = std::time::Instant::now();
        ParslWorkflowRunner::new(
            &dfk,
            CwlAppOptions::in_dir(base.join("py")).with_builtin_tools(),
        )
        .run(fixtures().join("scatter_words_py.cwl"), &word_inputs(n))
        .unwrap();
        let t = start.elapsed();
        dfk.shutdown();
        t
    };
    assert!(
        t_js > t_py * 2,
        "expected JS ({t_js:?}) to cost well over 2x inline Python ({t_py:?})"
    );
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&base);
}
