//! Cross-system integration: all three runners (cwltool-like, Toil-like,
//! parsl-cwl) must produce **identical pixel content** for the same CWL
//! workflow and inputs — the correctness property underneath the paper's
//! performance comparison.

use cwl_parsl::{CwlAppOptions, ParslWorkflowRunner};
use cwlexec::BuiltinDispatch;
use parsl::{Config, DataFlowKernel};
use runners::{RefRunner, ToilRunner};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use yamlite::{Map, Value};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("xsys-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Fingerprints of the final images from a list of File values.
fn fingerprints(files: &Value) -> Vec<u64> {
    files
        .as_seq()
        .expect("array of Files")
        .iter()
        .map(|f| {
            imaging::read_rimg(f["path"].as_str().expect("path"))
                .expect("readable output")
                .fingerprint()
        })
        .collect()
}

#[test]
fn all_three_systems_agree_on_scattered_pipeline() {
    gridsim::TimeScale::set(0.0); // correctness test: no modelled latency
    let base = scratch("agree");
    let wf = fixtures().join("scatter_images.cwl");

    // Shared inputs.
    let mut images = Vec::new();
    for i in 0..5u64 {
        let p = base.join(format!("in{i}.rimg"));
        imaging::write_rimg(&p, &imaging::noise(40, 40, i)).unwrap();
        images.push(Value::str(p.to_string_lossy().into_owned()));
    }
    let mut inputs = Map::new();
    inputs.insert("input_images", Value::Seq(images));
    inputs.insert("size", Value::Int(20));
    inputs.insert("sepia", Value::Bool(true));
    inputs.insert("radius", Value::Int(2));

    // cwltool-like.
    let ref_dir = base.join("refrunner");
    let ref_report = RefRunner::new(4, Arc::new(BuiltinDispatch))
        .run(&wf, &inputs, &ref_dir)
        .unwrap();
    let ref_prints = fingerprints(ref_report.outputs.get("final_outputs").unwrap());

    // Toil-like.
    let toil_dir = base.join("toil");
    let toil_report = ToilRunner::single_machine(4, toil_dir.join("js"), Arc::new(BuiltinDispatch))
        .run(&wf, &inputs, &toil_dir)
        .unwrap();
    let toil_prints = fingerprints(toil_report.outputs.get("final_outputs").unwrap());

    // parsl-cwl.
    let parsl_dir = base.join("parsl");
    let dfk = DataFlowKernel::new(Config::local_threads(4));
    let parsl_out =
        ParslWorkflowRunner::new(&dfk, CwlAppOptions::in_dir(&parsl_dir).with_builtin_tools())
            .run(&wf, &inputs)
            .unwrap();
    dfk.shutdown();
    let parsl_prints = fingerprints(parsl_out.get("final_outputs").unwrap());

    assert_eq!(ref_prints, toil_prints, "cwltool vs toil outputs differ");
    assert_eq!(ref_prints, parsl_prints, "cwltool vs parsl outputs differ");
    assert_eq!(ref_prints.len(), 5);
    // Distinct inputs must give distinct outputs (no accidental sharing).
    let unique: std::collections::HashSet<_> = ref_prints.iter().collect();
    assert_eq!(unique.len(), 5);

    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn manual_parsl_chain_matches_workflow_runner() {
    // Listing 4 (hand-chained CwlApps) and the workflow compiler must give
    // byte-identical results for the same single image.
    gridsim::TimeScale::set(0.0);
    let base = scratch("manual");
    let input = base.join("in.rimg");
    imaging::write_rimg(&input, &imaging::gradient(36, 36, 11)).unwrap();

    // Hand-chained.
    let dfk = DataFlowKernel::new(Config::local_threads(3));
    let opts = || CwlAppOptions::in_dir(base.join("hand")).with_builtin_tools();
    let resize =
        cwl_parsl::CwlApp::load(&dfk, fixtures().join("resize_image.cwl"), opts()).unwrap();
    let filter =
        cwl_parsl::CwlApp::load(&dfk, fixtures().join("filter_image.cwl"), opts()).unwrap();
    let blur = cwl_parsl::CwlApp::load(&dfk, fixtures().join("blur_image.cwl"), opts()).unwrap();
    let r = resize
        .call()
        .arg("input_image", input.to_string_lossy().into_owned())
        .arg("size", 18i64)
        .arg("output_image", "resized.rimg")
        .submit()
        .unwrap();
    let f = filter
        .call()
        .arg_data("input_image", r.output())
        .arg("sepia", true)
        .arg("output_image", "filtered.rimg")
        .submit()
        .unwrap();
    let b = blur
        .call()
        .arg_data("input_image", f.output())
        .arg("radius", 1i64)
        .arg("output_image", "blurred.rimg")
        .submit()
        .unwrap();
    let hand_img = imaging::read_rimg(b.output().result().unwrap().path()).unwrap();

    // Workflow-compiled.
    let mut inputs = Map::new();
    inputs.insert(
        "input_image",
        Value::str(input.to_string_lossy().into_owned()),
    );
    inputs.insert("size", Value::Int(18));
    inputs.insert("sepia", Value::Bool(true));
    inputs.insert("radius", Value::Int(1));
    let wf_out = ParslWorkflowRunner::new(
        &dfk,
        CwlAppOptions::in_dir(base.join("compiled")).with_builtin_tools(),
    )
    .run(fixtures().join("image_pipeline.cwl"), &inputs)
    .unwrap();
    let wf_img = imaging::read_rimg(
        wf_out.get("final_output").unwrap()["path"]
            .as_str()
            .unwrap(),
    )
    .unwrap();
    dfk.shutdown();

    assert_eq!(hand_img.fingerprint(), wf_img.fingerprint());
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&base);
}
