//! Deterministic simulation harness driver (DESIGN.md §4i): schedule
//! exploration over seeded scenarios, with every failure reproducible from
//! its seed.
//!
//! Two layers, with different guarantees:
//!
//! 1. **Discrete-event simulation** (`gridsim::sim`): a single-threaded
//!    virtual-time event loop whose entire run is a pure function of the
//!    seed — the event log is *byte-identical* across repeats. The invariant
//!    suite sweeps a seed matrix (50 seeds by default) and asserts no lost
//!    tasks, no double completions, and no completion from a declared-lost
//!    dispatch attempt.
//! 2. **Full multithreaded stack under a virtual clock**: the real DFK,
//!    HTEX, heartbeats, and retry backoff running on
//!    [`simtest::VirtualClock`], so timeout-scale schedules (30-second
//!    heartbeat thresholds, multi-second backoff ladders) complete in
//!    milliseconds of wall time. Thread interleavings still vary, so the
//!    assertions here are *invariants and outputs*, not event-log bytes.
//!
//! Seed selection (all env-overridable, used by ci.sh):
//! - `SIM_SEED=n`      — run exactly one seed (the replay recipe).
//! - `SIM_SEEDS=a,b,c` — run an explicit list.
//! - `SIM_SEED_BASE=b`, `SIM_SEED_COUNT=n` — run `b..b+n` (default `1..51`).

use gridsim::{FaultPlan, LatencyModel, Scenario};
use parsl::{
    AppArg, Config, DataFlowKernel, FnApp, HtexConfig, LocalProvider, RetryPolicy, TaskEventKind,
};
use simtest::{Clock as _, VirtualClock};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use yamlite::Value;

// ------------------------------------------------------------ seed matrix

/// The seeds this run explores. Deterministic by default; ci.sh adds a
/// rotating run-indexed seed through `SIM_SEEDS` so the explored schedule
/// space grows across CI runs while every failure stays replayable.
fn seed_matrix() -> Vec<u64> {
    if let Ok(s) = std::env::var("SIM_SEED") {
        return vec![s.parse().expect("SIM_SEED must be a u64")];
    }
    if let Ok(s) = std::env::var("SIM_SEEDS") {
        return s
            .split(',')
            .map(|t| t.trim().parse().expect("SIM_SEEDS entries must be u64"))
            .collect();
    }
    let base: u64 = std::env::var("SIM_SEED_BASE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let count: u64 = std::env::var("SIM_SEED_COUNT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    (0..count).map(|i| base + i).collect()
}

/// The line a failing assertion prints so the schedule can be replayed.
fn replay(seed: u64) -> String {
    format!(
        "reproduce with: SIM_SEED={seed} cargo test -p cwl_parsl --test integration_simtest\n\
         event log:       cargo run -p gridsim --bin simrun -- --log {seed}"
    )
}

// ------------------------------------------------- DES schedule exploration

/// The invariant suite: every seed in the matrix builds a random scenario
/// (DAG shape, cluster size, fault schedule) and runs it to completion.
/// The engine checks its own invariants as it runs — a task completed on a
/// node already declared lost, a double completion, or a task stranded
/// while a usable node survived all land in `report.violations`.
#[test]
fn des_invariant_suite_over_seed_matrix() {
    let seeds = seed_matrix();
    let mut faulted = 0usize;
    for &seed in &seeds {
        let scenario = Scenario::from_seed(seed);
        let report = scenario.run();
        assert!(
            report.violations.is_empty(),
            "seed {seed} ({}): invariant violations: {:?}\n{}",
            scenario.shape,
            report.violations,
            replay(seed)
        );
        if !report.nodes_lost.is_empty() {
            faulted += 1;
            assert!(
                report.redispatches > 0 || report.completed == scenario.dag.tasks.len(),
                "seed {seed}: a lost node with in-flight work must re-dispatch\n{}",
                replay(seed)
            );
        }
        // A surviving node means no task may be stranded.
        if report.nodes_lost.len() < scenario.cfg.nodes {
            assert!(
                report.all_completed(),
                "seed {seed} ({}): {} of {} tasks completed, stranded: {:?}\n{}",
                scenario.shape,
                report.completed,
                scenario.dag.tasks.len(),
                report.stranded,
                replay(seed)
            );
        }
    }
    // The generator is biased toward fault schedules; a matrix where almost
    // nothing died would be a regression in exploration power.
    if seeds.len() >= 20 {
        assert!(
            faulted * 5 >= seeds.len(),
            "only {faulted}/{} seeds exercised node loss — fault bias regressed",
            seeds.len()
        );
    }
}

/// Same seed ⇒ byte-identical event log, ten times over. This is the replay
/// guarantee: a CI failure's seed reproduces the exact schedule locally.
#[test]
fn des_same_seed_byte_identical_logs_ten_runs() {
    for seed in [1u64, 7, 23] {
        let reference = Scenario::from_seed(seed).run().event_log();
        for rep in 1..10 {
            let log = Scenario::from_seed(seed).run().event_log();
            assert!(
                log == reference,
                "seed {seed}: run {rep} diverged from run 0\n{}",
                replay(seed)
            );
        }
    }
}

// ------------------------------------- full stack under the virtual clock

fn add_app() -> parsl::AppBody {
    FnApp::new(|vals: &[Value]| {
        let sum = vals.iter().map(|v| v.as_int().unwrap_or(0)).sum::<i64>();
        Ok(Value::Int(sum))
    })
}

/// Diamond workflow on a virtually-clocked kernel: the result is a pure
/// function of the inputs, whatever the schedule.
fn run_diamond(seed: u64) -> Value {
    let vc = VirtualClock::new();
    let dfk = DataFlowKernel::new(
        Config::local_threads(2)
            .with_clock(vc.clone())
            .with_seed(seed),
    );
    let root = dfk.submit("root", vec![AppArg::value(1i64)], add_app());
    let left = dfk.submit(
        "l",
        vec![AppArg::future(&root), AppArg::value(10i64)],
        add_app(),
    );
    let right = dfk.submit(
        "r",
        vec![AppArg::future(&root), AppArg::value(100i64)],
        add_app(),
    );
    let join = dfk.submit(
        "join",
        vec![AppArg::future(&left), AppArg::future(&right)],
        add_app(),
    );
    let out = join.result().unwrap();
    dfk.shutdown();
    out
}

/// Scatter workflow on a virtually-clocked HTEX: every task completes with
/// the right value across every explored seed.
#[test]
fn virtual_clock_scatter_completes_on_htex() {
    for seed in seed_matrix().into_iter().take(5) {
        let vc = VirtualClock::new();
        let dfk = DataFlowKernel::try_new(
            Config::htex(
                HtexConfig {
                    label: format!("sim-scatter-{seed}"),
                    nodes: 3,
                    workers_per_node: 2,
                    latency: LatencyModel::in_process(),
                    ..HtexConfig::default()
                },
                Arc::new(LocalProvider::new(2)),
            )
            .with_clock(vc.clone())
            .with_seed(seed),
        )
        .unwrap();
        let futs: Vec<_> = (0..24)
            .map(|i| dfk.submit("scatter", vec![AppArg::value(i as i64)], add_app()))
            .collect();
        for (i, f) in futs.iter().enumerate() {
            assert_eq!(
                f.result_timeout(Duration::from_secs(20))
                    .unwrap_or_else(|| panic!("seed {seed}: task {i} hung\n{}", replay(seed)))
                    .unwrap(),
                Value::Int(i as i64),
                "seed {seed}: wrong output\n{}",
                replay(seed)
            );
        }
        assert_eq!(dfk.monitoring().summary().failed, 0, "{}", replay(seed));
        dfk.shutdown();
    }
}

/// Outputs are byte-identical run to run for the same seed — serialize the
/// diamond result and compare across 10 repeats (the full-stack half of the
/// determinism criterion; event *logs* are only byte-stable in the DES).
#[test]
fn virtual_clock_diamond_outputs_byte_identical() {
    for seed in [3u64, 11] {
        let reference = yamlite::to_string_flow(&run_diamond(seed));
        for rep in 1..10 {
            let out = yamlite::to_string_flow(&run_diamond(seed));
            assert!(
                out == reference,
                "seed {seed}: output diverged on rep {rep}: {out} vs {reference}\n{}",
                replay(seed)
            );
        }
    }
}

/// A silently-dead node (heartbeat stops, no task ever arrives) with a
/// **30-second** staleness threshold: only virtual time makes this
/// testable — detection needs 30+ seconds of logical time and completes in
/// well under the wall-clock timeout because every sleeper (heartbeat,
/// monitor, dispatcher idle) runs on the virtual clock.
#[test]
fn virtual_clock_detects_silent_death_without_wall_time() {
    let vc = VirtualClock::new();
    let plan = FaultPlan::with_clock(vc.clone()).kill_now("localhost/1");
    let dfk = DataFlowKernel::try_new(
        Config::htex(
            HtexConfig {
                label: "sim-silent".into(),
                nodes: 2,
                workers_per_node: 1,
                latency: LatencyModel::in_process(),
                heartbeat_period: Duration::from_secs(1),
                heartbeat_threshold: Duration::from_secs(30),
                fault_plan: Some(plan),
                ..HtexConfig::default()
            },
            Arc::new(LocalProvider::new(1)),
        )
        .with_clock(vc.clone()),
    )
    .unwrap();
    let wall = std::time::Instant::now();
    dfk.monitoring()
        .wait_for_events(Duration::from_secs(30), |evs| {
            evs.iter().any(|e| e.kind == TaskEventKind::NodeLost)
        });
    let fs = dfk.monitoring().fault_summary();
    assert_eq!(fs.nodes_lost, vec!["localhost/1".to_string()]);
    // The staleness threshold alone is 30 virtual seconds; crossing it this
    // fast in wall time proves the detector ran on the virtual clock.
    assert!(
        wall.elapsed() < Duration::from_secs(25),
        "detection took {:?} of wall time — the monitor is not on the virtual clock",
        wall.elapsed()
    );
    assert!(
        vc.now() >= Duration::from_secs(30),
        "detection at {:?} of virtual time — threshold not honoured",
        vc.now()
    );
    // The survivor still executes work afterwards.
    let fut = dfk.submit("after", vec![AppArg::value(5i64)], add_app());
    assert_eq!(fut.result().unwrap(), Value::Int(5));
    assert_eq!(dfk.monitoring().summary().failed, 0);
    dfk.shutdown();
}

/// Node kill mid-workflow under the virtual clock: in-flight tasks are
/// re-dispatched, every output is correct, and no task is both completed
/// and lost — the full-stack version of the DES invariants.
#[test]
fn virtual_clock_fault_workflow_loses_no_tasks() {
    const TASKS: usize = 24;
    for seed in [5u64, 17, 41] {
        let vc = VirtualClock::new();
        let plan = FaultPlan::with_clock(vc.clone()).kill_after_tasks("localhost/0", 2);
        let dfk = DataFlowKernel::try_new(
            Config::htex(
                HtexConfig {
                    label: format!("sim-fault-{seed}"),
                    nodes: 2,
                    workers_per_node: 1,
                    latency: LatencyModel::in_process(),
                    heartbeat_period: Duration::from_millis(250),
                    heartbeat_threshold: Duration::from_secs(2),
                    fault_plan: Some(plan.clone()),
                    batch_size: 6,
                    ..HtexConfig::default()
                },
                Arc::new(LocalProvider::new(1)),
            )
            .with_clock(vc.clone())
            .with_seed(seed)
            .with_retry_policy(RetryPolicy::retries(2)),
        )
        .unwrap();
        let executions: Arc<Vec<AtomicUsize>> =
            Arc::new((0..TASKS).map(|_| AtomicUsize::new(0)).collect());
        let futs: Vec<_> = (0..TASKS)
            .map(|i| {
                let executions = executions.clone();
                let body = FnApp::new(move |vals: &[Value]| {
                    let n = vals[0].as_int().unwrap() as usize;
                    executions[n].fetch_add(1, Ordering::SeqCst);
                    Ok(Value::Int(n as i64 * 11))
                });
                dfk.submit("sim-fault", vec![AppArg::value(i as i64)], body)
            })
            .collect();
        for (i, f) in futs.iter().enumerate() {
            assert_eq!(
                f.result_timeout(Duration::from_secs(20))
                    .unwrap_or_else(|| panic!("seed {seed}: task {i} lost\n{}", replay(seed)))
                    .unwrap(),
                Value::Int(i as i64 * 11),
                "seed {seed}\n{}",
                replay(seed)
            );
        }
        assert!(plan.is_dead("localhost/0"));
        dfk.monitoring()
            .wait_for_events(Duration::from_secs(10), |evs| {
                evs.iter().any(|e| e.kind == TaskEventKind::NodeLost)
            });
        let fs = dfk.monitoring().fault_summary();
        assert_eq!(fs.nodes_lost, vec!["localhost/0".to_string()]);
        for (i, e) in executions.iter().enumerate() {
            assert!(
                e.load(Ordering::SeqCst) >= 1,
                "seed {seed}: task {i} never executed\n{}",
                replay(seed)
            );
        }
        assert_eq!(dfk.monitoring().summary().failed, 0);
        dfk.shutdown();
    }
}

/// Seeded retry backoff replays exactly: two kernels with the same seed and
/// their own virtual clocks walk the same multi-second backoff ladder, and
/// because the backoff sleeper is the only virtual-time consumer, the final
/// virtual timestamp *is* the summed schedule — identical across runs,
/// different across seeds.
#[test]
fn virtual_clock_backoff_schedule_replays_by_seed() {
    fn total_backoff(seed: u64) -> Duration {
        let vc = VirtualClock::new();
        let policy = RetryPolicy {
            max_retries: 3,
            initial_backoff: Duration::from_secs(5),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(60),
            jitter_frac: 0.5,
            walltime: None,
        };
        let dfk = DataFlowKernel::new(
            Config::local_threads(1)
                .with_clock(vc.clone())
                .with_seed(seed)
                .with_retry_policy(policy),
        );
        let attempts = Arc::new(AtomicUsize::new(0));
        let a = attempts.clone();
        let fut = dfk.submit(
            "flaky",
            vec![],
            FnApp::new(move |_| {
                if a.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(parsl::TaskError::failed("transient"))
                } else {
                    Ok(Value::Int(9))
                }
            }),
        );
        assert_eq!(fut.result().unwrap(), Value::Int(9));
        let total = vc.now();
        dfk.shutdown();
        // Two failures ⇒ two jittered backoffs of ~5s and ~10s of virtual
        // time; the run finishes in milliseconds of wall time regardless.
        assert!(
            total >= Duration::from_secs(7) && total <= Duration::from_secs(23),
            "seed {seed}: implausible backoff total {total:?}"
        );
        total
    }
    for seed in [2u64, 13] {
        let first = total_backoff(seed);
        assert_eq!(first, total_backoff(seed), "seed {seed}: schedule diverged");
    }
    assert_ne!(
        total_backoff(2),
        total_backoff(13),
        "distinct seeds drew identical jitter — RNG not threaded through"
    );
}

/// Checkpoint + replay under the sim harness: a journaled run's completions
/// are never re-executed on resume, and the resumed outputs are
/// byte-identical to the original — the "journal replays never re-execute"
/// invariant from the issue, full-stack.
#[test]
fn virtual_clock_checkpoint_replay_never_reexecutes() {
    let dir = std::env::temp_dir().join(format!("simtest-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal_path = dir.join("journal.ckpt");
    let header = ckpt::Header {
        version: 1,
        run_hash: 0xD1A0_0D5E,
        label: "sim-diamond".into(),
    };
    let executions = Arc::new(AtomicUsize::new(0));

    let submit_diamond = |dfk: &Arc<DataFlowKernel>, executions: &Arc<AtomicUsize>| {
        let body = {
            let executions = executions.clone();
            FnApp::new(move |vals: &[Value]| {
                executions.fetch_add(1, Ordering::SeqCst);
                Ok(Value::Int(
                    vals.iter().map(|v| v.as_int().unwrap_or(0)).sum::<i64>(),
                ))
            })
        };
        let root = dfk.submit("root", vec![AppArg::value(1i64)], body.clone());
        let left = dfk.submit(
            "l",
            vec![AppArg::future(&root), AppArg::value(10i64)],
            body.clone(),
        );
        let right = dfk.submit(
            "r",
            vec![AppArg::future(&root), AppArg::value(100i64)],
            body.clone(),
        );
        dfk.submit(
            "join",
            vec![AppArg::future(&left), AppArg::future(&right)],
            body,
        )
    };

    // First run: all four tasks execute and journal.
    let vc = VirtualClock::new();
    let journal = Arc::new(
        ckpt::Journal::create_with_clock(
            &journal_path,
            &header,
            ckpt::SyncMode::TaskExit,
            vc.clone(),
        )
        .unwrap(),
    );
    let dfk = DataFlowKernel::new(
        Config::local_threads(2)
            .with_clock(vc.clone())
            .with_seed(7)
            .with_checkpoint(journal),
    );
    let first = submit_diamond(&dfk, &executions).result().unwrap();
    dfk.shutdown();
    assert_eq!(executions.load(Ordering::SeqCst), 4);
    assert_eq!(dfk.checkpoint_stats().unwrap().appended, 4);

    // Resume: every task replays from the journal; nothing re-executes.
    let vc = VirtualClock::new();
    let (journal, loaded) =
        ckpt::Journal::resume_with_clock(&journal_path, ckpt::SyncMode::TaskExit, vc.clone())
            .unwrap();
    assert_eq!(loaded.records.len(), 4);
    let dfk = DataFlowKernel::new(
        Config::local_threads(2)
            .with_clock(vc.clone())
            .with_seed(7)
            .with_checkpoint(Arc::new(journal)),
    );
    let (seeded, unparseable) = dfk.seed_checkpoint(&loaded.records);
    assert_eq!((seeded, unparseable), (4, 0));
    let second = submit_diamond(&dfk, &executions).result().unwrap();
    dfk.shutdown();
    assert_eq!(
        executions.load(Ordering::SeqCst),
        4,
        "resume re-executed journaled tasks"
    );
    assert_eq!(dfk.checkpoint_stats().unwrap().replayed, 4);
    assert_eq!(
        yamlite::to_string_flow(&second),
        yamlite::to_string_flow(&first),
        "replayed outputs must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
