//! Golden-trace tests: the *shape* of the span tree each runner produces
//! for a diamond DAG and a scatter workflow is locked in under
//! `tests/goldens/`. The goldens record structure (kind nesting and
//! deterministic task labels), never timestamps or node names, so they are
//! stable across machines and runs. After an intentional instrumentation
//! change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p cwl_parsl --test integration_trace_golden
//! ```

use cwl_parsl::{CwlAppOptions, ParslWorkflowRunner};
use parsl::{
    Config, DataFlowKernel, HtexConfig, LocalProvider, ObsConfig, Observability, SpanKind,
    SpanRecord,
};
use runners::RefRunner;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use yamlite::{vmap, Map, Value};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("trace-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn as_map(v: Value) -> Map {
    match v {
        Value::Map(m) => m,
        _ => unreachable!(),
    }
}

/// Tests share the global gridsim time scale; serialize them so one test
/// restoring real time cannot slow another mid-run.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Render the span forest as a normalized, deterministic shape string.
///
/// Normalization rules:
/// * spans not tied to a task are dropped (`BlockProvision`, `NodeLost` —
///   whether elastic scaling fires mid-run is timing-dependent), except the
///   `WorkflowRun` root whose name is the fixture file, and stage spans,
///   which fire exactly once per task execution but may lose the lineage
///   race (a task body can start before the submitter records its id);
/// * names are kept only for spans labelled by task/step (deterministic);
///   transport spans are labelled by node name, which varies;
/// * siblings sort by their rendered subtree, so arrival order is erased.
fn render_shape(spans: &[SpanRecord]) -> String {
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in spans {
        let keep_untracked = matches!(
            s.kind,
            SpanKind::WorkflowRun | SpanKind::StageIn | SpanKind::StageOut
        );
        if s.lineage == 0 && !keep_untracked {
            continue;
        }
        if s.parent != 0 && ids.contains(&s.parent) {
            children.entry(s.parent).or_default().push(s);
        } else {
            roots.push(s);
        }
    }
    fn render(
        span: &SpanRecord,
        children: &BTreeMap<u64, Vec<&SpanRecord>>,
        depth: usize,
    ) -> String {
        let named = matches!(
            span.kind,
            SpanKind::WorkflowRun
                | SpanKind::Submit
                | SpanKind::MemoLookup
                | SpanKind::Dispatch
                | SpanKind::ToolExec
                | SpanKind::Retry
                | SpanKind::TimedOut
        );
        let mut line = format!("{}{}", "  ".repeat(depth), span.kind.as_str());
        if named {
            line.push_str(&format!(" {:?}", span.name));
        }
        line.push('\n');
        let mut subtrees: Vec<String> = children
            .get(&span.id)
            .map(|kids| {
                kids.iter()
                    .map(|k| render(k, children, depth + 1))
                    .collect()
            })
            .unwrap_or_default();
        subtrees.sort();
        line.extend(subtrees);
        line
    }
    let mut rendered: Vec<String> = roots.iter().map(|r| render(r, &children, 0)).collect();
    rendered.sort();
    rendered.concat()
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/goldens")
        .join(name);
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); generate it with UPDATE_GOLDENS=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "trace shape drifted from golden {name}; if the change is \
         intentional, regenerate with UPDATE_GOLDENS=1"
    );
}

/// Run a workflow on the reference runner with tracing attached; return the
/// normalized span shape.
fn ref_trace(fixture: &str, inputs: Map, tag: &str) -> String {
    let dir = scratch(tag);
    let obs = Arc::new(Observability::on());
    let runner =
        RefRunner::new(2, Arc::new(cwlexec::BuiltinDispatch)).with_observability(obs.clone());
    runner.run(fixtures().join(fixture), &inputs, &dir).unwrap();
    let shape = render_shape(&obs.spans());
    let _ = std::fs::remove_dir_all(&dir);
    shape
}

/// Run a workflow on the Parsl path over HTEX with monitoring enabled;
/// return the normalized span shape.
fn htex_trace(fixture: &str, inputs: Map, tag: &str) -> String {
    let dir = scratch(tag);
    let config = Config::htex(
        HtexConfig {
            label: format!("golden-{tag}"),
            nodes: 1,
            workers_per_node: 2,
            latency: gridsim::LatencyModel::in_process(),
            ..HtexConfig::default()
        },
        Arc::new(LocalProvider::new(2)),
    )
    .with_memoization()
    .with_monitoring(ObsConfig::on());
    let dfk = DataFlowKernel::try_new(config).unwrap();
    let obs = dfk.observability().clone();
    let runner = ParslWorkflowRunner::new(&dfk, CwlAppOptions::in_dir(&dir).with_builtin_tools());
    runner.run(fixtures().join(fixture), &inputs).unwrap();
    dfk.shutdown();
    let shape = render_shape(&obs.spans());
    let _ = std::fs::remove_dir_all(&dir);
    shape
}

fn diamond_inputs() -> Map {
    as_map(vmap! {"message" => "trace me"})
}

fn scatter_inputs() -> Map {
    as_map(vmap! {
        "words" => Value::Seq(vec![
            Value::str("alpha"),
            Value::str("beta"),
            Value::str("gamma"),
        ]),
    })
}

#[test]
fn diamond_reference_runner_matches_golden() {
    let _guard = serial();
    gridsim::TimeScale::set(0.0);
    let shape = ref_trace("diamond.cwl", diamond_inputs(), "diamond-ref");
    gridsim::TimeScale::set(1.0);
    check_golden("diamond_ref.txt", &shape);
}

#[test]
fn diamond_htex_matches_golden() {
    let _guard = serial();
    gridsim::TimeScale::set(0.0);
    let shape = htex_trace("diamond.cwl", diamond_inputs(), "diamond-htex");
    gridsim::TimeScale::set(1.0);
    check_golden("diamond_htex.txt", &shape);
}

#[test]
fn scatter_reference_runner_matches_golden() {
    let _guard = serial();
    gridsim::TimeScale::set(0.0);
    let shape = ref_trace("scatter_words_py.cwl", scatter_inputs(), "scatter-ref");
    gridsim::TimeScale::set(1.0);
    check_golden("scatter_ref.txt", &shape);
}

#[test]
fn scatter_htex_matches_golden() {
    let _guard = serial();
    gridsim::TimeScale::set(0.0);
    let shape = htex_trace("scatter_words_py.cwl", scatter_inputs(), "scatter-htex");
    gridsim::TimeScale::set(1.0);
    check_golden("scatter_htex.txt", &shape);
}

/// The lineage table must join every Parsl task to its CWL step, with
/// monotone submit → dispatch → complete timestamps.
#[test]
fn diamond_htex_lineage_joins_tasks_to_steps() {
    let _guard = serial();
    gridsim::TimeScale::set(0.0);
    let dir = scratch("diamond-lineage");
    let config = Config::htex(
        HtexConfig {
            label: "golden-lineage".into(),
            nodes: 1,
            workers_per_node: 2,
            latency: gridsim::LatencyModel::in_process(),
            ..HtexConfig::default()
        },
        Arc::new(LocalProvider::new(2)),
    )
    .with_monitoring(ObsConfig::on());
    let dfk = DataFlowKernel::try_new(config).unwrap();
    let obs = dfk.observability().clone();
    let runner = ParslWorkflowRunner::new(&dfk, CwlAppOptions::in_dir(&dir).with_builtin_tools());
    runner
        .run(fixtures().join("diamond.cwl"), &diamond_inputs())
        .unwrap();
    dfk.shutdown();
    gridsim::TimeScale::set(1.0);

    let mut records = obs.lineage_records();
    records.sort_by(|a, b| a.cwl_step.cmp(&b.cwl_step));
    let steps: Vec<&str> = records
        .iter()
        .map(|r| r.cwl_step.as_deref().expect("every task bound to a step"))
        .collect();
    assert_eq!(steps, vec!["join", "left", "right", "seed"]);
    for r in &records {
        assert_eq!(
            Some(r.label.as_str()),
            r.cwl_step.as_deref(),
            "diamond labels are bare step ids"
        );
        assert_eq!(r.attempts, 1, "{}", r.label);
        assert_eq!(r.outcome.as_deref(), Some("completed"), "{}", r.label);
        assert!(
            r.submit_us <= r.dispatch_us && r.dispatch_us <= r.complete_us,
            "{}: submit {} dispatch {} complete {}",
            r.label,
            r.submit_us,
            r.dispatch_us,
            r.complete_us
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
