//! Service-level integration tests for `parsl-serve`: many workflow runs
//! multiplexed over one warm kernel + shared CAS must be observationally
//! identical to running each workflow alone.
//!
//! These tests drive [`serve::Service`] directly (the in-process core);
//! the Unix-socket daemon and client are exercised end-to-end by the CI
//! serve smoke (`ci.sh`), including SIGTERM + `--resume`.

use cwl_parsl::config::{load_config_value, RunnerConfig};
use cwl_parsl::runner::run_tool_cli;
use serve::{RunRecord, RunState, Service, SubmitError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use yamlite::{Map, Value};

const WAIT: Duration = Duration::from_secs(120);

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
}

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "serve-int-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A thread-pool runner config rooted at `workdir`; `extra` appends raw
/// YAML blocks (monitoring, serve, …).
fn config(workdir: &Path, extra: &str) -> RunnerConfig {
    let yaml = format!(
        "executor:\n  kind: thread-pool\n  workers: 4\n\
         run:\n  workdir: {}\n  builtin_tools: true\n{extra}",
        workdir.display()
    );
    load_config_value(&yamlite::parse_str(&yaml).unwrap()).unwrap()
}

fn msg_inputs(message: &str) -> Map {
    let mut m = Map::new();
    m.insert("message", Value::Str(message.to_string()));
    m
}

fn words_inputs(words: &[&str]) -> Map {
    let mut m = Map::new();
    m.insert(
        "words",
        Value::Seq(words.iter().map(|w| Value::Str(w.to_string())).collect()),
    );
    m
}

/// Collect the bytes of every `class: File` in an output value, in
/// deterministic traversal order.
fn collect_output_bytes(value: &Value, out: &mut Vec<Vec<u8>>) {
    match value {
        Value::Map(m) => {
            if m.get("class").and_then(Value::as_str) == Some("File") {
                let path = m.get("path").and_then(Value::as_str).unwrap();
                out.push(std::fs::read(path).unwrap());
                return;
            }
            for (_, v) in m.iter() {
                collect_output_bytes(v, out);
            }
        }
        Value::Seq(s) => {
            for v in s {
                collect_output_bytes(v, out);
            }
        }
        _ => {}
    }
}

fn output_bytes(outputs: &Map) -> Vec<Vec<u8>> {
    let mut bytes = Vec::new();
    collect_output_bytes(&Value::Map(outputs.clone()), &mut bytes);
    assert!(!bytes.is_empty(), "workflow produced no file outputs");
    bytes
}

/// The standalone baseline: run `wf` alone with `parsl-cwl`'s code path
/// in a private workdir, returning every file output's bytes.
fn solo_bytes(wf: &Path, inputs: &Map, tag: &str) -> Vec<Vec<u8>> {
    let dir = scratch(tag);
    let outcome = run_tool_cli(config(&dir, ""), wf, inputs)
        .unwrap_or_else(|e| panic!("solo run of {} failed: {e}", wf.display()));
    let bytes = output_bytes(&outcome.outputs);
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

fn completed(svc: &Service, id: u64) -> serve::RunSnapshot {
    let snap = svc.wait(id, WAIT).unwrap();
    assert_eq!(
        snap.state,
        RunState::Completed,
        "run {id} ended {:?}: {:?}",
        snap.state,
        snap.error
    );
    snap
}

/// Three concurrent runs — two workflows, two tenants — through one
/// daemon must each produce outputs byte-identical to running the same
/// workflow alone: no cross-run bleed through the shared CAS, memo
/// table, or lineage namespace.
#[test]
fn concurrent_runs_match_standalone_outputs() {
    let dir = scratch("concurrent");
    let svc = Service::start(config(&dir, ""), false).unwrap();
    let diamond = fixtures().join("diamond.cwl");
    let scatter = fixtures().join("scatter_words_py.cwl");

    let a = svc
        .submit(&diamond, &msg_inputs("service alpha"), "alice")
        .unwrap();
    let b = svc
        .submit(
            &scatter,
            &words_inputs(&["shared", "warm", "kernel"]),
            "bob",
        )
        .unwrap();
    let c = svc
        .submit(&diamond, &msg_inputs("service gamma"), "alice")
        .unwrap();

    let snap_a = completed(&svc, a);
    let snap_b = completed(&svc, b);
    let snap_c = completed(&svc, c);

    assert_eq!(
        output_bytes(snap_a.outputs.as_ref().unwrap()),
        solo_bytes(&diamond, &msg_inputs("service alpha"), "solo-a"),
    );
    assert_eq!(
        output_bytes(snap_b.outputs.as_ref().unwrap()),
        solo_bytes(
            &scatter,
            &words_inputs(&["shared", "warm", "kernel"]),
            "solo-b"
        ),
    );
    assert_eq!(
        output_bytes(snap_c.outputs.as_ref().unwrap()),
        solo_bytes(&diamond, &msg_inputs("service gamma"), "solo-c"),
    );

    let obs = svc.kernel().observability();
    assert_eq!(obs.counter(obs::names::SERVE_ADMITTED).value(), 3);
    assert_eq!(obs.counter(obs::names::SERVE_REJECTED).value(), 0);
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An identical resubmission dedupes against the shared memo table: the
/// second run executes nothing (its journal gains zero entries) yet
/// returns the same outputs.
#[test]
fn identical_resubmission_dedupes_in_shared_memo() {
    let dir = scratch("dedupe");
    let svc = Service::start(
        config(&dir, "monitoring:\n  enabled: true\n  sample_rate: 1.0\n"),
        false,
    )
    .unwrap();
    let diamond = fixtures().join("diamond.cwl");

    let first = svc
        .submit(&diamond, &msg_inputs("same message"), "alice")
        .unwrap();
    let snap1 = completed(&svc, first);
    assert!(snap1.appended > 0, "first run journals its executed tasks");

    let obs = svc.kernel().observability();
    let hits_before = obs.counter(obs::names::MEMO_HITS).value();
    let second = svc
        .submit(&diamond, &msg_inputs("same message"), "bob")
        .unwrap();
    let snap2 = completed(&svc, second);

    assert_eq!(
        snap2.appended, 0,
        "fully deduplicated run must execute (and journal) nothing"
    );
    assert!(
        obs.counter(obs::names::MEMO_HITS).value() >= hits_before + 4,
        "all four diamond tasks should hit the shared memo table"
    );
    assert_eq!(
        output_bytes(snap1.outputs.as_ref().unwrap()),
        output_bytes(snap2.outputs.as_ref().unwrap()),
    );
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control rejects an unschedulable document at submit time
/// with the analyzer's E032 diagnostics — nothing is queued.
#[test]
fn unschedulable_document_is_rejected_at_the_door() {
    let dir = scratch("reject");
    let svc = Service::start(config(&dir, ""), false).unwrap();
    let doc = fixtures().join("broken/unschedulable.cwl");

    let err = svc.submit(&doc, &msg_inputs("hello"), "alice").unwrap_err();
    match err {
        SubmitError::Rejected { diagnostics, .. } => {
            assert!(
                diagnostics.contains("E032"),
                "expected E032 in rejection diagnostics, got:\n{diagnostics}"
            );
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert!(
        svc.list().is_empty(),
        "rejected submissions are not recorded"
    );
    let obs = svc.kernel().observability();
    assert_eq!(obs.counter(obs::names::SERVE_REJECTED).value(), 1);
    assert_eq!(obs.counter(obs::names::SERVE_ADMITTED).value(), 0);
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every task in the exported trace is attributed to exactly one run
/// namespace (`tenant/run-id`) — concurrent runs never bleed lineage.
#[test]
fn lineage_is_namespaced_per_run() {
    let dir = scratch("lineage");
    let trace_path = dir.join("trace.jsonl");
    let svc = Service::start(
        config(
            &dir,
            &format!(
                "monitoring:\n  enabled: true\n  sample_rate: 1.0\n  export: {}\n  sinks: [jsonl]\n",
                trace_path.display()
            ),
        ),
        false,
    )
    .unwrap();
    let diamond = fixtures().join("diamond.cwl");

    let a = svc
        .submit(&diamond, &msg_inputs("lineage alpha"), "alice")
        .unwrap();
    let b = svc
        .submit(&diamond, &msg_inputs("lineage beta"), "bob")
        .unwrap();
    completed(&svc, a);
    completed(&svc, b);
    svc.shutdown();

    let trace = obs::report::load_trace(&trace_path).unwrap();
    assert!(!trace.lineage.is_empty(), "trace has lineage records");
    let ns_a = format!("alice/run-{a}");
    let ns_b = format!("bob/run-{b}");
    let mut per_ns = std::collections::BTreeMap::new();
    for rec in &trace.lineage {
        let ns = rec
            .run
            .as_deref()
            .unwrap_or_else(|| panic!("service task {} has no run namespace", rec.label));
        assert!(
            ns == ns_a || ns == ns_b,
            "unexpected run namespace {ns:?} on task {}",
            rec.label
        );
        *per_ns.entry(ns.to_string()).or_insert(0usize) += 1;
    }
    assert_eq!(
        per_ns.get(&ns_a),
        per_ns.get(&ns_b),
        "both runs of the same workflow carry the same task count: {per_ns:?}"
    );
    assert_eq!(per_ns.len(), 2, "exactly two run namespaces: {per_ns:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A daemon restarted with `--resume` re-queues an interrupted run and
/// replays every journaled task from its checkpoint — zero re-execution,
/// identical outputs.
#[test]
fn resume_replays_interrupted_run_from_its_journal() {
    let dir = scratch("resume");
    let diamond = fixtures().join("diamond.cwl");

    let svc = Service::start(config(&dir, ""), false).unwrap();
    let id = svc
        .submit(&diamond, &msg_inputs("resume me"), "alice")
        .unwrap();
    let before = completed(&svc, id);
    assert!(before.appended > 0, "run journals its executed tasks");
    svc.shutdown();

    // Rewind the manifest to `running`, as a SIGTERM mid-run leaves it.
    let mut rec = RunRecord::load(&before.run_dir).unwrap();
    rec.state = RunState::Running;
    rec.save().unwrap();

    let svc = Service::start(config(&dir, ""), true).unwrap();
    let after = completed(&svc, id);
    assert_eq!(
        after.replayed, before.appended,
        "every journaled task replays instead of re-executing"
    );
    assert_eq!(after.appended, 0, "a full replay journals nothing new");
    assert_eq!(
        output_bytes(before.outputs.as_ref().unwrap()),
        output_bytes(after.outputs.as_ref().unwrap()),
    );
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
