//! Fault-tolerance integration: a scripted node death mid-workflow must be
//! detected by the heartbeat monitor, the lost node's in-flight tasks
//! re-dispatched to survivors, the block replaced to hold the `min_nodes`
//! floor, and the workflow must still produce exactly the right outputs.
//!
//! The scenario is run three times back-to-back: fault handling has to be
//! deterministic in outcome (the same events fire, the same answers come
//! out) even though thread interleavings differ run to run.

use cwl_parsl::config::load_config_file;
use cwl_parsl::{CwlApp, CwlAppOptions};
use gridsim::{BatchScheduler, ClusterSpec, FaultPlan, LatencyModel, SchedulerConfig};
use parsl::{
    AppArg, Config, DataFlowKernel, FaultSummary, FnApp, HtexConfig, RetryPolicy, SlurmProvider,
    TaskEvent, TaskEventKind,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use yamlite::Value;

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
}

fn configs() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../configs")
}

/// Wait (bounded) for an expected monitoring condition: fault handling runs
/// on the monitor thread, so events like `BlockReplaced` can land slightly
/// after the workflow's futures resolve. Condvar-notified on every recorded
/// event — no sleep-and-poll.
fn wait_for(dfk: &DataFlowKernel, what: &str, cond: impl FnMut(&[TaskEvent]) -> bool) {
    assert!(
        dfk.monitoring()
            .wait_for_events(Duration::from_secs(5), cond),
        "timed out waiting for {what}; events: {:?}",
        dfk.monitoring().events()
    );
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("htex-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Three-node HTEX on a four-node cluster; node01 dies after two task
/// arrivals, the spare node replaces it.
fn faulty_kernel(round: usize) -> (Arc<DataFlowKernel>, BatchScheduler) {
    let cluster = ClusterSpec::small(4, 1);
    let sched = BatchScheduler::new(cluster, SchedulerConfig::immediate());
    let plan = FaultPlan::new().kill_after_tasks("node01", 2);
    let dfk = DataFlowKernel::try_new(
        Config::htex(
            HtexConfig {
                label: format!("fault-r{round}"),
                nodes: 3,
                workers_per_node: 1,
                latency: LatencyModel::in_process(),
                heartbeat_period: Duration::from_millis(5),
                heartbeat_threshold: Duration::from_millis(60),
                min_nodes: 3,
                fault_plan: Some(plan),
                // Batched dispatch: node01 dies mid-batch, so the unfinished
                // remainder of its batch must be re-dispatched.
                batch_size: 4,
                ..HtexConfig::default()
            },
            Arc::new(SlurmProvider::new(sched.clone())),
        )
        .with_retry_policy(RetryPolicy::retries(1)),
    )
    .unwrap();
    (dfk, sched)
}

#[test]
fn node_death_mid_workflow_recovers_deterministically() {
    for round in 0..3 {
        let (dfk, sched) = faulty_kernel(round);
        // The pilot job holds 3 of 4 nodes.
        assert_eq!(sched.free_node_count(), 1, "round {round}");

        let square = FnApp::new(|args: &[Value]| {
            std::thread::sleep(Duration::from_millis(4));
            let n = args[0].as_int().unwrap();
            Ok(Value::Int(n * n))
        });
        let futs: Vec<_> = (0..24)
            .map(|i| dfk.submit("square", vec![AppArg::value(i as i64)], square.clone()))
            .collect();
        for (i, f) in futs.iter().enumerate() {
            let n = i as i64;
            assert_eq!(
                f.result().unwrap(),
                Value::Int(n * n),
                "round {round} task {i}"
            );
        }

        wait_for(&dfk, "block replacement", |evs| {
            FaultSummary::from_events(evs).blocks_replaced == 1
        });
        let fs = dfk.monitoring().fault_summary();
        assert_eq!(
            fs.nodes_lost,
            vec!["node01".to_string()],
            "round {round}: exactly the scripted node dies"
        );
        assert!(
            fs.tasks_redispatched >= 1,
            "round {round}: the task that found the node dead is re-queued"
        );
        let events = dfk.monitoring().events();
        let replacement = events
            .iter()
            .find(|e| e.kind == TaskEventKind::BlockReplaced)
            .unwrap();
        assert_eq!(replacement.label, "node04", "round {round}");
        // No task ends in a failed state.
        assert_eq!(dfk.monitoring().summary().failed, 0, "round {round}");

        dfk.shutdown();
        // Shutdown returns every node, including the dead one's allocation.
        assert_eq!(sched.free_node_count(), 4, "round {round}");
    }
}

/// Batched dispatch meets a mid-batch node kill: localhost/0 receives a
/// multi-task message, executes two of its tasks, and dies. Exactly the
/// unfinished remainder must be re-dispatched — every task completes, no
/// task is lost, and no completed task is double-counted.
#[test]
fn mid_batch_node_kill_redispatches_exactly_the_unfinished() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    const TASKS: usize = 24;
    let plan = FaultPlan::new().kill_after_tasks("localhost/0", 2);
    let dfk = DataFlowKernel::try_new(Config::htex(
        HtexConfig {
            label: "mid-batch".into(),
            nodes: 2,
            workers_per_node: 1,
            latency: LatencyModel::in_process(),
            heartbeat_period: Duration::from_millis(5),
            heartbeat_threshold: Duration::from_millis(60),
            min_nodes: 0,
            fault_plan: Some(plan.clone()),
            // Multi-task messages: the kill lands in the middle of one.
            batch_size: 6,
            ..HtexConfig::default()
        },
        Arc::new(parsl::LocalProvider::new(1)),
    ))
    .unwrap();

    let executions: Arc<Vec<AtomicUsize>> =
        Arc::new((0..TASKS).map(|_| AtomicUsize::new(0)).collect());
    let futs: Vec<_> = (0..TASKS)
        .map(|i| {
            let executions = executions.clone();
            let body = FnApp::new(move |vals: &[Value]| {
                let n = vals[0].as_int().unwrap() as usize;
                executions[n].fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                Ok(Value::Int(n as i64 * 11))
            });
            dfk.submit("batched", vec![AppArg::value(i as i64)], body)
        })
        .collect();
    for (i, f) in futs.iter().enumerate() {
        assert_eq!(
            f.result_timeout(Duration::from_secs(10))
                .expect("task hung")
                .unwrap(),
            Value::Int(i as i64 * 11),
            "task {i}"
        );
    }
    assert!(plan.is_dead("localhost/0"));

    wait_for(&dfk, "node loss processed", |evs| {
        !FaultSummary::from_events(evs).nodes_lost.is_empty()
    });
    let fs = dfk.monitoring().fault_summary();
    assert_eq!(fs.nodes_lost, vec!["localhost/0".to_string()]);
    assert!(
        fs.tasks_redispatched >= 1,
        "a mid-batch kill must strand at least one unfinished task"
    );

    // Per-task accounting: a task runs once, plus at most once per
    // re-dispatch of that specific task — a result that died with the node
    // re-executes, but nothing runs without having been re-dispatched.
    let mut redispatches = [0usize; TASKS];
    for e in dfk.monitoring().events() {
        if e.kind == TaskEventKind::Redispatched && e.task.0 >= 1 {
            redispatches[(e.task.0 - 1) as usize] += 1;
        }
    }
    for i in 0..TASKS {
        let runs = executions[i].load(Ordering::SeqCst);
        assert!(runs >= 1, "task {i} never executed");
        assert!(
            runs <= 1 + redispatches[i],
            "task {i} ran {runs} times with {} redispatches",
            redispatches[i]
        );
        if redispatches[i] == 0 {
            assert_eq!(
                runs, 1,
                "task {i} was never re-dispatched yet ran {runs} times"
            );
        }
    }
    assert_eq!(dfk.monitoring().summary().failed, 0);
    dfk.shutdown();
}

#[test]
fn cwl_workflow_survives_node_loss() {
    let dir = scratch("cwl");
    let (dfk, _sched) = faulty_kernel(9);
    let echo = CwlApp::load(
        &dfk,
        fixtures().join("echo.cwl"),
        CwlAppOptions::in_dir(&dir).with_builtin_tools(),
    )
    .unwrap();
    let runs: Vec<_> = (0..12)
        .map(|i| {
            echo.call()
                .arg("message", format!("survivor {i}"))
                .stdout(format!("out{i}.txt"))
                .submit()
                .unwrap()
        })
        .collect();
    for (i, run) in runs.iter().enumerate() {
        let f = run.output().result().unwrap();
        assert_eq!(
            std::fs::read_to_string(f.path()).unwrap(),
            format!("survivor {i}\n")
        );
    }
    let fs = dfk.monitoring().fault_summary();
    assert_eq!(fs.nodes_lost, vec!["node01".to_string()]);
    dfk.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fault-path trace coverage: a killed manager must leave a `NodeLost`
/// span, and every task re-queued by the loss must leave a `Redispatched`
/// span whose parent is that `NodeLost` span and whose lineage id joins it
/// back to the task's original `Submit`/`Dispatch` spans.
#[test]
fn node_loss_produces_linked_trace_spans() {
    use parsl::SpanKind;
    use std::collections::HashSet;

    const TASKS: usize = 24;
    let plan = FaultPlan::new().kill_after_tasks("localhost/0", 2);
    let dfk = DataFlowKernel::try_new(
        Config::htex(
            HtexConfig {
                label: "fault-trace".into(),
                nodes: 2,
                workers_per_node: 1,
                latency: LatencyModel::in_process(),
                heartbeat_period: Duration::from_millis(5),
                heartbeat_threshold: Duration::from_millis(60),
                min_nodes: 0,
                fault_plan: Some(plan),
                batch_size: 6,
                ..HtexConfig::default()
            },
            Arc::new(parsl::LocalProvider::new(1)),
        )
        .with_monitoring(parsl::ObsConfig::on()),
    )
    .unwrap();
    let obs = dfk.observability().clone();

    let body = FnApp::new(|vals: &[Value]| {
        std::thread::sleep(Duration::from_millis(2));
        Ok(Value::Int(vals[0].as_int().unwrap() * 7))
    });
    let futs: Vec<_> = (0..TASKS)
        .map(|i| dfk.submit("traced", vec![AppArg::value(i as i64)], body.clone()))
        .collect();
    for (i, f) in futs.iter().enumerate() {
        assert_eq!(
            f.result_timeout(Duration::from_secs(10))
                .expect("task hung")
                .unwrap(),
            Value::Int(i as i64 * 7),
            "task {i}"
        );
    }
    wait_for(&dfk, "node loss processed", |evs| {
        !FaultSummary::from_events(evs).nodes_lost.is_empty()
    });
    dfk.shutdown();

    let spans = obs.spans();
    let lost: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::NodeLost)
        .collect();
    assert!(!lost.is_empty(), "node death must leave a NodeLost span");
    for s in &lost {
        assert_eq!(s.name, "localhost/0", "the scripted node is the one lost");
        assert_eq!(s.lineage, 0, "node loss is a node event, not a task event");
    }
    let lost_ids: HashSet<u64> = lost.iter().map(|s| s.id).collect();

    let redispatched: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Redispatched)
        .collect();
    assert!(
        !redispatched.is_empty(),
        "a mid-batch kill must strand and re-dispatch at least one task"
    );
    for r in &redispatched {
        assert!(
            lost_ids.contains(&r.parent),
            "Redispatched span {} must hang off the NodeLost span that caused it",
            r.id
        );
        assert_ne!(r.lineage, 0, "re-dispatch is attributed to a task");
        assert!(
            spans
                .iter()
                .any(|s| s.kind == SpanKind::Dispatch && s.lineage == r.lineage),
            "lineage {} joins the re-dispatch to the task's original Dispatch span",
            r.lineage
        );
        assert!(
            spans
                .iter()
                .any(|s| s.kind == SpanKind::Submit && s.lineage == r.lineage),
            "lineage {} joins the re-dispatch to the task's Submit span",
            r.lineage
        );
    }
}

#[test]
fn yaml_fault_config_drives_injection() {
    let rc = load_config_file(configs().join("htex-fault.yml")).unwrap();
    let plan = rc.fault_plan.clone().expect("fault block parsed");
    assert!(!plan.is_empty());
    let sched = rc.scheduler.clone().expect("slurm provider configured");
    let dfk = DataFlowKernel::try_new(rc.parsl).unwrap();
    let triple = FnApp::new(|args: &[Value]| {
        std::thread::sleep(Duration::from_millis(3));
        Ok(Value::Int(args[0].as_int().unwrap() * 3))
    });
    let futs: Vec<_> = (0..18)
        .map(|i| dfk.submit("triple", vec![AppArg::value(i as i64)], triple.clone()))
        .collect();
    for (i, f) in futs.iter().enumerate() {
        assert_eq!(f.result().unwrap(), Value::Int(3 * i as i64));
    }
    wait_for(&dfk, "block replacement", |evs| {
        FaultSummary::from_events(evs).blocks_replaced == 1
    });
    let fs = dfk.monitoring().fault_summary();
    assert_eq!(fs.nodes_lost, vec!["node02".to_string()]);
    assert!(plan.is_dead("node02"));
    dfk.shutdown();
    assert_eq!(sched.free_node_count(), 4);
}
