//! Failure injection across the stack: injected tool failures must trigger
//! Parsl retries (and succeed once the fault clears), exhaust retries into
//! clean task failures, and propagate through baseline runners without
//! corrupting state.

use cwl_parsl::{CwlApp, CwlAppOptions, ParslWorkflowRunner};
use cwlexec::{BuiltinDispatch, FlakyDispatch};
use parsl::{Config, DataFlowKernel, TaskError};
use runners::{ExecProfile, RefRunner, ToilRunner};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use yamlite::{Map, Value};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("failinj-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn parsl_retries_recover_from_transient_tool_failures() {
    gridsim::TimeScale::set(0.0);
    let dir = scratch("retry");
    let flaky = Arc::new(FlakyDispatch::new(BuiltinDispatch, 2));
    let dfk = DataFlowKernel::new(Config::local_threads(1).with_retries(3));
    let echo = CwlApp::load(
        &dfk,
        fixtures().join("echo.cwl"),
        CwlAppOptions::in_dir(&dir).with_dispatch(flaky.clone()),
    )
    .unwrap();
    let run = echo.call().arg("message", "eventually").submit().unwrap();
    run.future.result().unwrap();
    assert_eq!(flaky.invocations(), 3, "two failures + one success");
    assert_eq!(dfk.monitoring().summary().retried, 2);
    assert_eq!(
        std::fs::read_to_string(run.output().result().unwrap().path()).unwrap(),
        "eventually\n"
    );
    dfk.shutdown();
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parsl_retries_exhaust_into_task_failure() {
    gridsim::TimeScale::set(0.0);
    let dir = scratch("exhaust");
    let flaky = Arc::new(FlakyDispatch::new(BuiltinDispatch, 100));
    let dfk = DataFlowKernel::new(Config::local_threads(1).with_retries(2));
    let echo = CwlApp::load(
        &dfk,
        fixtures().join("echo.cwl"),
        CwlAppOptions::in_dir(&dir).with_dispatch(flaky.clone()),
    )
    .unwrap();
    let run = echo.call().arg("message", "never").submit().unwrap();
    match run.future.result() {
        Err(TaskError::Failed(m)) => assert!(m.contains("injected"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(flaky.invocations(), 3, "initial + 2 retries");
    dfk.shutdown();
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn workflow_on_parsl_fails_downstream_cleanly() {
    gridsim::TimeScale::set(0.0);
    let dir = scratch("wf");
    imaging::write_rimg(dir.join("in.rimg"), &imaging::gradient(16, 16, 1)).unwrap();
    // Every dispatch fails: the first stage fails, later stages must report
    // dependency failures, not run.
    let flaky = Arc::new(FlakyDispatch::new(BuiltinDispatch, usize::MAX / 2));
    let dfk = DataFlowKernel::new(Config::local_threads(2));
    let runner = ParslWorkflowRunner::new(
        &dfk,
        CwlAppOptions::in_dir(&dir).with_dispatch(flaky.clone()),
    );
    let mut inputs = Map::new();
    inputs.insert(
        "input_image",
        Value::str(dir.join("in.rimg").to_string_lossy().into_owned()),
    );
    inputs.insert("size", Value::Int(8));
    inputs.insert("sepia", Value::Bool(false));
    inputs.insert("radius", Value::Int(1));
    let err = runner
        .run(fixtures().join("image_pipeline.cwl"), &inputs)
        .unwrap_err();
    assert!(
        err.contains("injected") || err.contains("dependency"),
        "{err}"
    );
    // Only the first stage's dispatch ran; the rest were short-circuited.
    assert_eq!(flaky.invocations(), 1);
    let summary = dfk.monitoring().summary();
    assert_eq!(summary.failed, 3);
    assert_eq!(summary.completed, 0);
    dfk.shutdown();
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn baseline_runners_surface_injected_failures() {
    gridsim::TimeScale::set(0.0);
    let dir = scratch("baseline");
    let mut inputs = Map::new();
    inputs.insert("message", Value::str("x"));

    let profile = ExecProfile::bare(2);
    let runner = RefRunner::with_profile(
        profile,
        Arc::new(FlakyDispatch::new(BuiltinDispatch, usize::MAX / 2)),
    );
    let err = runner
        .run(fixtures().join("echo.cwl"), &inputs, dir.join("ref"))
        .unwrap_err();
    assert!(err.contains("injected"), "{err}");

    let toil = ToilRunner::single_machine(
        2,
        dir.join("js"),
        Arc::new(FlakyDispatch::new(BuiltinDispatch, usize::MAX / 2)),
    );
    let err = toil
        .run(fixtures().join("echo.cwl"), &inputs, dir.join("toil"))
        .unwrap_err();
    assert!(err.contains("injected"), "{err}");
    // The job store still recorded the failed job.
    let statuses: Vec<String> = std::fs::read_dir(dir.join("js"))
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "status"))
        .map(|e| std::fs::read_to_string(e.path()).unwrap())
        .collect();
    assert!(statuses.iter().any(|s| s.trim() == "failed"));
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&dir);
}
