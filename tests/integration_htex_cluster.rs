//! Integration of the HTEX pilot-job path with the simulated cluster:
//! queue waits, node release, and CWL work flowing through a Slurm-backed
//! HighThroughputExecutor.

use cwl_parsl::{CwlApp, CwlAppOptions};
use gridsim::{BatchScheduler, ClusterSpec, JobRequest, LatencyModel, SchedulerConfig};
use parsl::{Config, DataFlowKernel, HtexConfig, SlurmProvider};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("htex-int-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn cwl_tools_run_on_htex_over_slurm() {
    gridsim::TimeScale::set(0.01);
    let dir = scratch("run");
    let cluster = ClusterSpec::small(3, 2);
    let sched = BatchScheduler::new(cluster, SchedulerConfig::default());
    let dfk = DataFlowKernel::try_new(Config::htex(
        HtexConfig {
            label: "itest".into(),
            nodes: 2,
            workers_per_node: 2,
            latency: LatencyModel::cluster_lan(),
            ..HtexConfig::default()
        },
        Arc::new(SlurmProvider::new(sched.clone())),
    ))
    .unwrap();
    // The pilot job holds 2 of 3 nodes while the kernel is up.
    assert_eq!(sched.free_node_count(), 1);

    let echo = CwlApp::load(
        &dfk,
        fixtures().join("echo.cwl"),
        CwlAppOptions::in_dir(&dir).with_builtin_tools(),
    )
    .unwrap();
    let runs: Vec<_> = (0..8)
        .map(|i| {
            echo.call()
                .arg("message", format!("task {i}"))
                .stdout(format!("out{i}.txt"))
                .submit()
                .unwrap()
        })
        .collect();
    for (i, run) in runs.iter().enumerate() {
        let f = run.output().result().unwrap();
        assert_eq!(
            std::fs::read_to_string(f.path()).unwrap(),
            format!("task {i}\n")
        );
    }
    dfk.shutdown();
    // Shutdown releases the pilot job's nodes.
    assert_eq!(sched.free_node_count(), 3);
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pilot_job_waits_in_queue_behind_other_work() {
    gridsim::TimeScale::set(0.0);
    let cluster = ClusterSpec::small(2, 2);
    let sched = BatchScheduler::new(cluster, SchedulerConfig::immediate());
    // Occupy the whole cluster first.
    let blocker = sched.submit(JobRequest::nodes(2, "blocker")).unwrap();

    let sched2 = sched.clone();
    let starter = std::thread::spawn(move || {
        DataFlowKernel::try_new(Config::htex(
            HtexConfig {
                label: "queued".into(),
                nodes: 1,
                workers_per_node: 1,
                latency: LatencyModel::in_process(),
                ..HtexConfig::default()
            },
            Arc::new(SlurmProvider::new(sched2)),
        ))
    });
    // The kernel cannot start while the blocker holds all nodes; wait
    // (bounded) for its pilot-job request to reach the batch queue.
    assert!(
        simtest::wait_until(Duration::from_secs(5), || sched.queue_depth() == 1),
        "pilot job should be queued"
    );
    blocker.release().unwrap();
    let dfk = starter.join().unwrap().unwrap();
    dfk.shutdown();
    gridsim::TimeScale::set(1.0);
}

#[test]
fn oversized_htex_request_fails_fast() {
    let cluster = ClusterSpec::small(1, 2);
    let sched = BatchScheduler::new(cluster, SchedulerConfig::immediate());
    let err = DataFlowKernel::try_new(Config::htex(
        HtexConfig {
            label: "big".into(),
            nodes: 4,
            workers_per_node: 1,
            latency: LatencyModel::in_process(),
            ..HtexConfig::default()
        },
        Arc::new(SlurmProvider::new(sched)),
    ))
    .err()
    .expect("provisioning must fail");
    assert!(err.contains("has only 1"), "{err}");
}
