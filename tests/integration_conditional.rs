//! CWL v1.2 conditional execution (`when:`) across all runners: a falsy
//! condition skips the step and nulls its outputs; a truthy one runs it.

use cwl_parsl::{CwlAppOptions, ParslWorkflowRunner};
use cwlexec::BuiltinDispatch;
use parsl::{Config, DataFlowKernel};
use runners::RefRunner;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use yamlite::{Map, Value};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cond-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn inputs(dir: &Path, radius: i64) -> Map {
    let img = dir.join("in.rimg");
    if !img.exists() {
        imaging::write_rimg(&img, &imaging::gradient(24, 24, 1)).unwrap();
    }
    let mut m = Map::new();
    m.insert(
        "input_image",
        Value::str(img.to_string_lossy().into_owned()),
    );
    m.insert("size", Value::Int(12));
    m.insert("radius", Value::Int(radius));
    m
}

#[test]
fn refrunner_when_true_runs_and_false_skips() {
    gridsim::TimeScale::set(0.0);
    let dir = scratch("ref");
    let wf = fixtures().join("conditional_blur.cwl");
    let runner = RefRunner::new(2, Arc::new(BuiltinDispatch));

    let on = runner.run(&wf, &inputs(&dir, 2), dir.join("on")).unwrap();
    assert!(on.outputs.get("blurred_output").unwrap()["path"]
        .as_str()
        .is_some());
    assert_eq!(on.tasks, 2);

    let off = runner.run(&wf, &inputs(&dir, 0), dir.join("off")).unwrap();
    assert!(off.outputs.get("blurred_output").unwrap().is_null());
    // Only the resize task ran.
    assert_eq!(off.tasks, 1);
    // The unconditional output is still produced.
    assert!(off.outputs.get("resized_output").unwrap()["path"]
        .as_str()
        .is_some());
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parsl_compiler_when_semantics_match() {
    gridsim::TimeScale::set(0.0);
    let dir = scratch("parsl");
    let wf = fixtures().join("conditional_blur.cwl");
    let dfk = DataFlowKernel::new(Config::local_threads(2));
    let runner = ParslWorkflowRunner::new(
        &dfk,
        CwlAppOptions::in_dir(dir.join("w")).with_builtin_tools(),
    );

    let on = runner.run(&wf, &inputs(&dir, 2)).unwrap();
    assert!(on.get("blurred_output").unwrap()["path"].as_str().is_some());

    let off = runner.run(&wf, &inputs(&dir, 0)).unwrap();
    assert!(off.get("blurred_output").unwrap().is_null());
    assert!(off.get("resized_output").unwrap()["path"]
        .as_str()
        .is_some());
    dfk.shutdown();
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `when` may reference *upstream outputs* — decided at runtime, after the
/// producing task completes. A tiny resize target yields a small file that
/// fails the size gate, skipping the blur.
#[test]
fn when_on_upstream_output_decides_at_runtime() {
    gridsim::TimeScale::set(0.0);
    let dir = scratch("dynamic");
    let wf_src = r#"
cwlVersion: v1.2
class: Workflow
requirements:
  - class: StepInputExpressionRequirement
inputs:
  input_image:
    type: File
  size:
    type: int
outputs:
  maybe_blurred:
    type: File?
    outputSource: blur_image/output_image
steps:
  resize_image:
    run: resize_image.cwl
    in:
      input_image: input_image
      size: size
      output_image:
        valueFrom: "resized.rimg"
    out: [output_image]
  blur_image:
    run: blur_image.cwl
    when: $(inputs.input_image.size > 2000)
    in:
      input_image: resize_image/output_image
      radius:
        default: 1
      output_image:
        valueFrom: "blurred.rimg"
    out: [output_image]
"#;
    // The fixture references resize_image.cwl/blur_image.cwl relative to
    // its own location, so write it into the fixtures directory's sibling
    // space by copying those tools next to it instead.
    std::fs::copy(
        fixtures().join("resize_image.cwl"),
        dir.join("resize_image.cwl"),
    )
    .unwrap();
    std::fs::copy(
        fixtures().join("blur_image.cwl"),
        dir.join("blur_image.cwl"),
    )
    .unwrap();
    let wf = dir.join("gated.cwl");
    std::fs::write(&wf, wf_src).unwrap();

    let dfk = DataFlowKernel::new(Config::local_threads(2));
    let runner = ParslWorkflowRunner::new(
        &dfk,
        CwlAppOptions::in_dir(dir.join("w")).with_builtin_tools(),
    );

    // Large resize target → file over the gate → blur runs.
    let big = runner.run(&wf, &inputs(&dir, 0).tap_set_size(40)).unwrap();
    assert!(big.get("maybe_blurred").unwrap()["path"].as_str().is_some());

    // Tiny resize target → small file → blur skipped at runtime.
    let small = runner.run(&wf, &inputs(&dir, 0).tap_set_size(4)).unwrap();
    assert!(small.get("maybe_blurred").unwrap().is_null());
    dfk.shutdown();
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&dir);
}

trait TapSize {
    fn tap_set_size(self, size: i64) -> Map;
}

impl TapSize for Map {
    fn tap_set_size(mut self, size: i64) -> Map {
        self.insert("size", Value::Int(size));
        self.remove("radius");
        self
    }
}

#[test]
fn validator_accepts_conditional_document() {
    let diags = RefRunner::validate(fixtures().join("conditional_blur.cwl")).unwrap();
    assert!(cwl::validate::is_valid(&diags), "{diags:?}");
}
