//! End-to-end tests of the `parsl-cwl` binary (§III-B): the runner command
//! with a YAML config, inputs file, and `--key=value` overrides.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn parsl_cwl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_parsl-cwl"))
}

#[test]
fn runs_echo_with_flag_inputs() {
    let dir = scratch("echo");
    let config = dir.join("config.yml");
    std::fs::write(
        &config,
        format!(
            "executor:\n  kind: thread-pool\n  workers: 2\nrun:\n  workdir: {}\n  builtin_tools: true\n",
            dir.join("work").display()
        ),
    )
    .unwrap();
    let output = parsl_cwl()
        .arg(&config)
        .arg(fixtures().join("echo.cwl"))
        .arg("--message=Hello from the CLI")
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("hello.txt"), "stdout: {stdout}");
    let produced = std::fs::read_to_string(dir.join("work").join("echo_0").join("hello.txt"))
        .expect("output file exists");
    assert_eq!(produced, "Hello from the CLI\n");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn runs_tool_with_inputs_file() {
    let dir = scratch("inputsfile");
    let config = dir.join("config.yml");
    std::fs::write(
        &config,
        format!(
            "executor:\n  kind: thread-pool\n  workers: 1\nrun:\n  workdir: {}\n  builtin_tools: true\n",
            dir.join("work").display()
        ),
    )
    .unwrap();
    let inputs = dir.join("inputs.yml");
    std::fs::write(&inputs, "message: from inputs.yml\n").unwrap();
    let output = parsl_cwl()
        .arg(&config)
        .arg(fixtures().join("echo.cwl"))
        .arg(&inputs)
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let produced = std::fs::read_to_string(dir.join("work").join("echo_0").join("hello.txt"))
        .expect("output file exists");
    assert_eq!(produced, "from inputs.yml\n");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn validate_mode_reports_diagnostics() {
    let ok = parsl_cwl()
        .arg("--validate")
        .arg(fixtures().join("image_pipeline.cwl"))
        .output()
        .expect("binary runs");
    assert!(ok.status.success());
    assert!(String::from_utf8_lossy(&ok.stdout).contains("valid"));

    let dir = scratch("badval");
    let bad = dir.join("bad.cwl");
    std::fs::write(&bad, "class: CommandLineTool\ninputs: {}\noutputs: {}\n").unwrap();
    let res = parsl_cwl()
        .arg("--validate")
        .arg(&bad)
        .output()
        .expect("binary runs");
    assert!(!res.status.success());
    let text = String::from_utf8_lossy(&res.stdout);
    assert!(text.contains("cwlVersion"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_arguments_produce_usage() {
    let res = parsl_cwl().output().expect("binary runs");
    assert!(!res.status.success());
    assert!(String::from_utf8_lossy(&res.stderr).contains("usage"));
}

#[test]
fn workflow_execution_through_cli() {
    let dir = scratch("wf");
    let input_img = dir.join("in.rimg");
    imaging::write_rimg(&input_img, &imaging::gradient(20, 20, 3)).unwrap();
    let config = dir.join("config.yml");
    std::fs::write(
        &config,
        format!(
            "executor:\n  kind: thread-pool\n  workers: 4\nrun:\n  workdir: {}\n  builtin_tools: true\n",
            dir.join("work").display()
        ),
    )
    .unwrap();
    let output = parsl_cwl()
        .arg(&config)
        .arg(fixtures().join("image_pipeline.cwl"))
        .arg(format!("--input_image={}", input_img.display()))
        .arg("--size=10")
        .arg("--sepia=false")
        .arg("--radius=1")
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("final_output"), "stdout: {stdout}");
    assert!(stdout.contains("blurred.rimg"), "stdout: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
