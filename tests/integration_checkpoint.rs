//! Crash-injection integration tests for durable checkpointing: a run
//! killed at an arbitrary point must resume from its journal with zero
//! re-execution of journaled tasks and byte-identical outputs.
//!
//! Crashes are injected three ways, each exercising a different layer:
//!
//! * a dispatch that dies after N successful tool executions (deterministic
//!   in-process crash at every possible point of the DAG);
//! * a scripted HTEX node death ([`gridsim::FaultPlan`]) with retries
//!   disabled, so the run aborts partway like a real worker loss;
//! * a literal `SIGKILL` of the `parsl-cwl` binary mid-run.

use cwl_parsl::checkpoint::{self, PreparedCkpt};
use cwl_parsl::config::{CheckpointMode, CheckpointSettings};
use cwl_parsl::{CwlAppOptions, ParslWorkflowRunner};
use cwlexec::{BuiltinDispatch, ToolDispatch};
use gridsim::{BatchScheduler, ClusterSpec, FaultPlan, LatencyModel, SchedulerConfig};
use parsl::{Config, DataFlowKernel, HtexConfig, SlurmProvider};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use yamlite::{Map, Value};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ckpt-int-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn settings(dir: &Path) -> CheckpointSettings {
    CheckpointSettings {
        mode: CheckpointMode::TaskExit,
        dir: Some(dir.join("ckpt")),
        period: Duration::from_millis(500),
    }
}

/// Counts real tool executions, so tests can assert that replayed tasks
/// never reach the dispatch layer.
struct CountingDispatch {
    inner: BuiltinDispatch,
    runs: AtomicUsize,
}

impl CountingDispatch {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            inner: BuiltinDispatch,
            runs: AtomicUsize::new(0),
        })
    }

    fn runs(&self) -> usize {
        self.runs.load(Ordering::SeqCst)
    }
}

impl ToolDispatch for CountingDispatch {
    fn run(&self, cmd: &cwl::BuiltCommand, workdir: &Path) -> Result<(), String> {
        self.runs.fetch_add(1, Ordering::SeqCst);
        self.inner.run(cmd, workdir)
    }

    fn label(&self) -> &'static str {
        "counting"
    }
}

/// Succeeds for the first `budget` tool executions, then fails every call —
/// the process-internal equivalent of the worker host dying after N tasks.
struct DyingDispatch {
    inner: BuiltinDispatch,
    budget: AtomicIsize,
}

impl DyingDispatch {
    fn after(budget: usize) -> Arc<Self> {
        Arc::new(Self {
            inner: BuiltinDispatch,
            budget: AtomicIsize::new(budget as isize),
        })
    }
}

impl ToolDispatch for DyingDispatch {
    fn run(&self, cmd: &cwl::BuiltCommand, workdir: &Path) -> Result<(), String> {
        if self.budget.fetch_sub(1, Ordering::SeqCst) <= 0 {
            return Err("simulated crash (DyingDispatch budget exhausted)".to_string());
        }
        self.inner.run(cmd, workdir)
    }

    fn label(&self) -> &'static str {
        "dying"
    }
}

/// Run a workflow on a thread-pool kernel with a checkpoint journal wired
/// exactly the way `run_tool_cli_resumable` wires it. Returns the workflow
/// result plus the prepared journal state and end-of-run stats.
fn run_checkpointed(
    wf: &Path,
    inputs: &Map,
    workdir: &Path,
    resume: Option<&Path>,
    dispatch: Arc<dyn ToolDispatch>,
    workers: usize,
) -> (Result<Map, String>, PreparedCkpt, parsl::CkptStats) {
    let settings = settings(workdir);
    let hash = checkpoint::run_hash(wf, inputs).unwrap();
    let prepared = checkpoint::prepare(&settings, workdir, resume, hash, "test")
        .unwrap()
        .expect("checkpointing is on");
    let config = Config::local_threads(workers).with_checkpoint(prepared.journal.clone());
    let dfk = DataFlowKernel::try_new(config).unwrap();
    let (_, unparseable) = dfk.seed_checkpoint(&prepared.seed);
    assert_eq!(unparseable, 0, "validated seed records must all parse");
    let runner =
        ParslWorkflowRunner::new(&dfk, CwlAppOptions::in_dir(workdir).with_dispatch(dispatch));
    let result = runner.run(wf, inputs);
    dfk.shutdown();
    let stats = dfk.checkpoint_stats().expect("checkpointing is on");
    (result, prepared, stats)
}

fn diamond_inputs() -> Map {
    let mut m = Map::new();
    m.insert("message", Value::str("crash and resume"));
    m
}

/// Read the file behind a `File`-typed workflow output.
fn output_bytes(outputs: &Map, key: &str) -> Vec<u8> {
    let path = outputs.get(key).unwrap()["path"]
        .as_str()
        .unwrap()
        .to_string();
    std::fs::read(path).unwrap()
}

/// Tentpole proof: kill the diamond workflow after every possible number of
/// completed tasks (0..4), resume, and require byte-identical output with
/// exactly the journaled tasks skipped. One worker keeps completion order
/// (and thus each crash point) deterministic.
#[test]
fn diamond_crash_at_every_point_resumes_without_reexecution() {
    // Clean baseline for the byte-identity check.
    let base_dir = scratch("diamond-base");
    let (result, _, _) = run_checkpointed(
        &fixtures().join("diamond.cwl"),
        &diamond_inputs(),
        &base_dir,
        None,
        CountingDispatch::new(),
        1,
    );
    let expected = output_bytes(&result.unwrap(), "joined");

    for crash_after in 0..4usize {
        let dir = scratch(&format!("diamond-k{crash_after}"));
        let wf = fixtures().join("diamond.cwl");

        // First run: the dispatch dies after `crash_after` successes.
        let (result, prepared, stats) = run_checkpointed(
            &wf,
            &diamond_inputs(),
            &dir,
            None,
            DyingDispatch::after(crash_after),
            1,
        );
        assert!(result.is_err(), "k={crash_after}: run must abort");
        assert_eq!(stats.appended, crash_after, "k={crash_after}");
        let journal_path = prepared.journal.path().to_path_buf();
        drop(prepared);
        assert_eq!(
            ckpt::load(&journal_path).unwrap().records.len(),
            crash_after,
            "k={crash_after}: every completion must be durable at crash time"
        );

        // Resume: journaled tasks replay, the rest execute.
        let counting = CountingDispatch::new();
        let (result, prepared, stats) = run_checkpointed(
            &wf,
            &diamond_inputs(),
            &dir,
            Some(&dir.join("ckpt")),
            counting.clone(),
            1,
        );
        let outputs = result.unwrap_or_else(|e| panic!("k={crash_after}: resume failed: {e}"));
        assert_eq!(
            output_bytes(&outputs, "joined"),
            expected,
            "k={crash_after}"
        );
        assert_eq!(counting.runs(), 4 - crash_after, "k={crash_after}");
        assert_eq!(stats.replayed, crash_after, "k={crash_after}");
        assert_eq!(stats.appended, 4 - crash_after, "k={crash_after}");
        assert_eq!(prepared.invalidated, 0, "k={crash_after}");
        assert!(!prepared.torn, "k={crash_after}");

        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base_dir);
}

/// Same discipline for a scattered workflow: two of four parallel scatter
/// instances complete before the crash; the resume replays exactly those.
#[test]
fn scatter_crash_resume_replays_completed_instances() {
    let wf = fixtures().join("scatter_words_py.cwl");
    let mut inputs = Map::new();
    inputs.insert(
        "words",
        Value::Seq(vec![
            Value::str("alpha"),
            Value::str("beta"),
            Value::str("gamma"),
            Value::str("delta"),
        ]),
    );

    let base_dir = scratch("scatter-base");
    let (result, _, _) =
        run_checkpointed(&wf, &inputs, &base_dir, None, CountingDispatch::new(), 4);
    let base_outputs = result.unwrap();
    let expected: Vec<Vec<u8>> = base_outputs
        .get("capitalized")
        .and_then(Value::as_seq)
        .unwrap()
        .iter()
        .map(|f| std::fs::read(f["path"].as_str().unwrap()).unwrap())
        .collect();

    let dir = scratch("scatter-crash");
    let (result, _, stats) = run_checkpointed(&wf, &inputs, &dir, None, DyingDispatch::after(2), 4);
    assert!(result.is_err(), "run must abort");
    assert_eq!(stats.appended, 2, "exactly the budgeted instances complete");

    let counting = CountingDispatch::new();
    let (result, _, stats) = run_checkpointed(
        &wf,
        &inputs,
        &dir,
        Some(&dir.join("ckpt")),
        counting.clone(),
        4,
    );
    let outputs = result.unwrap();
    let produced: Vec<Vec<u8>> = outputs
        .get("capitalized")
        .and_then(Value::as_seq)
        .unwrap()
        .iter()
        .map(|f| std::fs::read(f["path"].as_str().unwrap()).unwrap())
        .collect();
    assert_eq!(produced, expected);
    assert_eq!(counting.runs(), 2);
    assert_eq!(stats.replayed, 2);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&base_dir);
}

/// A scripted node death that takes down the whole executor
/// ([`gridsim::FaultPlan`] killing the only node, no replacement floor)
/// aborts the run with `ExecutorLost`; the journal holds whatever
/// completed, and a resume on a healthy executor finishes the workflow
/// without redoing it.
#[test]
fn aborted_htex_run_resumes_on_healthy_executor() {
    let dir = scratch("htex-abort");
    let wf = fixtures().join("diamond.cwl");
    let inputs = diamond_inputs();

    let settings = settings(&dir);
    let hash = checkpoint::run_hash(&wf, &inputs).unwrap();
    let prepared = checkpoint::prepare(&settings, &dir, None, hash, "htex")
        .unwrap()
        .unwrap();
    let sched = BatchScheduler::new(ClusterSpec::small(2, 1), SchedulerConfig::immediate());
    let config = Config::htex(
        HtexConfig {
            label: "ckpt-fault".to_string(),
            nodes: 1,
            workers_per_node: 1,
            latency: LatencyModel::in_process(),
            heartbeat_period: Duration::from_millis(5),
            heartbeat_threshold: Duration::from_millis(60),
            // No replacement floor: losing the only node strands the run.
            min_nodes: 0,
            fault_plan: Some(FaultPlan::new().kill_after_tasks("node01", 2)),
            batch_size: 1,
            ..HtexConfig::default()
        },
        Arc::new(SlurmProvider::new(sched)),
    )
    .with_checkpoint(prepared.journal.clone());
    let dfk = DataFlowKernel::try_new(config).unwrap();
    let runner = ParslWorkflowRunner::new(&dfk, CwlAppOptions::in_dir(&dir).with_builtin_tools());
    let result = runner.run(&wf, &inputs);
    dfk.shutdown();
    let stats = dfk.checkpoint_stats().unwrap();
    assert!(
        result.is_err(),
        "losing every node must abort the run: {result:?}"
    );
    let journaled = stats.appended;
    assert!(
        (1..4).contains(&journaled),
        "the node death must land mid-run: {journaled}"
    );
    drop(prepared);
    drop(dfk);

    let counting = CountingDispatch::new();
    let (result, _, stats) = run_checkpointed(
        &wf,
        &inputs,
        &dir,
        Some(&dir.join("ckpt")),
        counting.clone(),
        2,
    );
    let outputs = result.unwrap();
    assert!(!output_bytes(&outputs, "joined").is_empty());
    assert_eq!(stats.replayed, journaled);
    assert_eq!(counting.runs(), 4 - journaled);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A partially written final frame (the torn tail a mid-`write` crash
/// leaves behind) is detected, truncated, and the rest of the journal
/// trusted.
#[test]
fn torn_tail_is_truncated_and_prefix_replayed() {
    let dir = scratch("torn");
    let wf = fixtures().join("diamond.cwl");
    let inputs = diamond_inputs();

    let (result, prepared, _) =
        run_checkpointed(&wf, &inputs, &dir, None, CountingDispatch::new(), 1);
    let expected = output_bytes(&result.unwrap(), "joined");
    let journal_path = prepared.journal.path().to_path_buf();
    drop(prepared);

    // Simulate a crash mid-append: a frame header promising more bytes
    // than follow.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal_path)
        .unwrap();
    f.write_all(&[0xEE, 0xFF, 0x00, 0x00, 0x12, 0x34]).unwrap();
    drop(f);
    let before = ckpt::load(&journal_path).unwrap();
    assert!(before.torn);
    assert_eq!(before.records.len(), 4);

    let counting = CountingDispatch::new();
    let (result, prepared, stats) = run_checkpointed(
        &wf,
        &inputs,
        &dir,
        Some(&dir.join("ckpt")),
        counting.clone(),
        1,
    );
    assert!(prepared.torn, "the resume must report the truncated tail");
    assert_eq!(output_bytes(&result.unwrap(), "joined"), expected);
    assert_eq!(counting.runs(), 0);
    assert_eq!(stats.replayed, 4);

    // The truncation is durable: a clean reload sees no tear.
    let after = ckpt::load(&journal_path).unwrap();
    assert!(!after.torn);
    assert_eq!(after.records.len(), 4, "replays must not re-append records");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: a journaled task whose `File` output was deleted on disk is
/// invalidated and re-executed; everything downstream whose inputs are
/// unchanged still replays.
#[test]
fn deleted_file_output_invalidates_record_and_reruns_task() {
    let dir = scratch("deleted");
    let wf = fixtures().join("diamond.cwl");
    let inputs = diamond_inputs();

    let (result, prepared, _) =
        run_checkpointed(&wf, &inputs, &dir, None, CountingDispatch::new(), 1);
    let outputs = result.unwrap();
    let expected = output_bytes(&outputs, "joined");
    drop(prepared);

    // Find the `left` copy task's output file via its journal record and
    // delete it out from under the journal.
    let journal_path = dir.join("ckpt").join("journal.ckpt");
    let loaded = ckpt::load(&journal_path).unwrap();
    let left = loaded
        .records
        .iter()
        .find(|r| r.step.as_deref() == Some("left"))
        .expect("left step journaled with its CWL step id");
    let parsed = ckpt::invalidate::parse_result(&left.result).unwrap();
    let left_file = parsed["output"]["path"].as_str().unwrap().to_string();
    std::fs::remove_file(&left_file).unwrap();

    let counting = CountingDispatch::new();
    let (result, prepared, stats) = run_checkpointed(
        &wf,
        &inputs,
        &dir,
        Some(&dir.join("ckpt")),
        counting.clone(),
        1,
    );
    assert_eq!(
        prepared.invalidated, 1,
        "only the deleted-output record is dropped"
    );
    let outputs = result.unwrap();
    assert_eq!(output_bytes(&outputs, "joined"), expected);
    assert_eq!(counting.runs(), 1, "only `left` re-executes");
    assert_eq!(stats.replayed, 3);
    assert_eq!(stats.appended, 1);
    assert!(
        Path::new(&left_file).exists(),
        "the re-run must recreate the deleted output"
    );

    // Second resume: the fresh record supersedes the stale one (last-wins
    // dedupe), so now everything replays.
    let counting = CountingDispatch::new();
    let (result, prepared, stats) = run_checkpointed(
        &wf,
        &inputs,
        &dir,
        Some(&dir.join("ckpt")),
        counting.clone(),
        1,
    );
    assert!(result.is_ok());
    assert_eq!(
        prepared.invalidated, 1,
        "the superseded duplicate counts as invalidated"
    );
    assert_eq!(counting.runs(), 0);
    assert_eq!(stats.replayed, 4);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Same-size, same-path corruption: an exists-check (and even a size
/// check) would wrongly replay the record. The data plane's content
/// digest, journaled with each `class: File` output, catches it.
#[test]
fn corrupted_file_output_fails_digest_check_and_reruns_task() {
    let dir = scratch("corrupt");
    let wf = fixtures().join("diamond.cwl");
    let inputs = diamond_inputs();

    let (result, prepared, _) =
        run_checkpointed(&wf, &inputs, &dir, None, CountingDispatch::new(), 1);
    let outputs = result.unwrap();
    let expected = output_bytes(&outputs, "joined");
    drop(prepared);

    // Overwrite `left`'s output with different bytes of the same length:
    // still present, same size, wrong content.
    let journal_path = dir.join("ckpt").join("journal.ckpt");
    let loaded = ckpt::load(&journal_path).unwrap();
    let left = loaded
        .records
        .iter()
        .find(|r| r.step.as_deref() == Some("left"))
        .expect("left step journaled with its CWL step id");
    let parsed = ckpt::invalidate::parse_result(&left.result).unwrap();
    assert!(
        parsed["output"]["checksum"]
            .as_str()
            .is_some_and(|c| c.starts_with("xxh64:")),
        "journaled outputs must carry the data plane's content digest"
    );
    let left_file = parsed["output"]["path"].as_str().unwrap().to_string();
    let original = std::fs::read(&left_file).unwrap();
    let corrupted: Vec<u8> = original.iter().map(|_| b'X').collect();
    assert_eq!(corrupted.len(), original.len());
    std::fs::write(&left_file, &corrupted).unwrap();

    let counting = CountingDispatch::new();
    let (result, prepared, stats) = run_checkpointed(
        &wf,
        &inputs,
        &dir,
        Some(&dir.join("ckpt")),
        counting.clone(),
        1,
    );
    assert_eq!(
        prepared.invalidated, 1,
        "the digest mismatch must invalidate exactly the corrupted record"
    );
    let outputs = result.unwrap();
    assert_eq!(output_bytes(&outputs, "joined"), expected);
    assert_eq!(counting.runs(), 1, "only `left` re-executes");
    assert_eq!(stats.replayed, 3);
    assert_eq!(
        std::fs::read(&left_file).unwrap(),
        original,
        "the re-run must restore the corrupted output's true content"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Editing the workflow (or its inputs) makes the journal untrustworthy:
/// it is set aside whole and the run starts over.
#[test]
fn changed_inputs_set_stale_journal_aside() {
    let dir = scratch("stale");
    let wf = fixtures().join("diamond.cwl");

    let (result, prepared, _) = run_checkpointed(
        &wf,
        &diamond_inputs(),
        &dir,
        None,
        CountingDispatch::new(),
        1,
    );
    assert!(result.is_ok());
    drop(prepared);

    let mut changed = Map::new();
    changed.insert("message", Value::str("a different message"));
    let counting = CountingDispatch::new();
    let (result, prepared, stats) = run_checkpointed(
        &wf,
        &changed,
        &dir,
        Some(&dir.join("ckpt")),
        counting.clone(),
        1,
    );
    assert!(prepared.stale, "the mismatched journal must be set aside");
    assert_eq!(prepared.invalidated, 4);
    assert!(result.is_ok());
    assert_eq!(
        counting.runs(),
        4,
        "nothing replays across a run-hash change"
    );
    assert_eq!(stats.replayed, 0);
    assert!(
        dir.join("ckpt").join("journal.ckpt.stale").exists(),
        "the stale journal is kept for post-mortems"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// The real thing: SIGKILL the parsl-cwl binary mid-run, then resume it.
// ---------------------------------------------------------------------------

fn parsl_cwl() -> std::process::Command {
    std::process::Command::new(env!("CARGO_BIN_EXE_parsl-cwl"))
}

/// Write a slow sequential workflow (each step gates on the previous one's
/// output) so there is a wide window to kill the process after the first
/// completion but before the last.
fn write_slow_workflow(dir: &Path) -> (PathBuf, PathBuf) {
    let tool = dir.join("slow_step.cwl");
    std::fs::write(
        &tool,
        "cwlVersion: v1.2\n\
         class: CommandLineTool\n\
         baseCommand: sleepms\n\
         inputs:\n\
         \x20 ms:\n\
         \x20   type: int\n\
         \x20   inputBinding:\n\
         \x20     position: 1\n\
         \x20 gate:\n\
         \x20   type: File?\n\
         \x20   inputBinding:\n\
         \x20     position: 2\n\
         outputs:\n\
         \x20 output:\n\
         \x20   type: stdout\n\
         stdout: slept.txt\n",
    )
    .unwrap();
    let wf = dir.join("slow.cwl");
    let mut doc = String::from(
        "cwlVersion: v1.2\n\
         class: Workflow\n\
         inputs:\n\
         \x20 first_ms:\n\
         \x20   type: int\n\
         outputs:\n\
         \x20 done:\n\
         \x20   type: File\n\
         \x20   outputSource: s4/output\n\
         steps:\n\
         \x20 s1:\n\
         \x20   run: slow_step.cwl\n\
         \x20   in:\n\
         \x20     ms: first_ms\n\
         \x20   out: [output]\n",
    );
    for i in 2..=4 {
        doc.push_str(&format!(
            "\x20 s{i}:\n\
             \x20   run: slow_step.cwl\n\
             \x20   in:\n\
             \x20     ms:\n\
             \x20       default: 500\n\
             \x20     gate: s{}/output\n\
             \x20   out: [output]\n",
            i - 1
        ));
    }
    std::fs::write(&wf, doc).unwrap();
    (wf, tool)
}

#[test]
fn sigkill_mid_run_then_resume_completes() {
    let dir = scratch("sigkill");
    let (wf, _) = write_slow_workflow(&dir);
    let work = dir.join("work");
    let config = dir.join("config.yml");
    std::fs::write(
        &config,
        format!(
            "executor:\n  kind: thread-pool\n  workers: 1\n\
             run:\n  workdir: {}\n  builtin_tools: true\n\
             checkpoint:\n  mode: task-exit\n",
            work.display()
        ),
    )
    .unwrap();

    let mut child = parsl_cwl()
        .arg(&config)
        .arg(&wf)
        .arg("--first_ms=10")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("binary runs");

    // Wait for at least one durable record, then SIGKILL the process.
    // Deadline-bounded wall-clock wait: the observed state lives in another
    // process's filesystem writes, so there is no in-process condvar or
    // virtual clock to hang this on — polling the journal file is the only
    // signal available.
    let journal = work.join("ckpt").join("journal.ckpt");
    let appeared = simtest::wait_until(Duration::from_secs(30), || {
        if let Some(status) = child.try_wait().unwrap() {
            panic!("parsl-cwl finished before it could be killed: {status}");
        }
        ckpt::load(&journal).is_ok_and(|loaded| !loaded.records.is_empty())
    });
    assert!(appeared, "no journal record appeared in time");
    child.kill().unwrap();
    child.wait().unwrap();

    let survived = ckpt::load(&journal).unwrap().records.len();
    assert!(
        (1..4).contains(&survived),
        "kill landed mid-run: {survived}"
    );

    // Resume: must succeed, replay the survivors, and execute the rest.
    let output = parsl_cwl()
        .arg(&config)
        .arg(&wf)
        .arg("--first_ms=10")
        .arg("--resume")
        .arg(&work)
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains(&format!("{survived} replayed")),
        "stderr: {stderr}"
    );
    assert!(
        stderr.contains(&format!("{} appended", 4 - survived)),
        "stderr: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("slept.txt"), "stdout: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// CLI contract around checkpointing.
// ---------------------------------------------------------------------------

#[test]
fn cli_rejects_unknown_flags_with_usage() {
    let dir = scratch("badflag");
    let config = dir.join("config.yml");
    std::fs::write(
        &config,
        format!(
            "executor:\n  kind: thread-pool\n  workers: 1\nrun:\n  workdir: {}\n  builtin_tools: true\n",
            dir.join("work").display()
        ),
    )
    .unwrap();
    let output = parsl_cwl()
        .arg(&config)
        .arg(fixtures().join("echo.cwl"))
        .arg("--reusme")
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("unknown flag \"--reusme\""),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_resume_without_checkpoint_config_is_an_error() {
    let dir = scratch("resume-off");
    let config = dir.join("config.yml");
    std::fs::write(
        &config,
        format!(
            "executor:\n  kind: thread-pool\n  workers: 1\nrun:\n  workdir: {}\n  builtin_tools: true\n",
            dir.join("work").display()
        ),
    )
    .unwrap();
    let output = parsl_cwl()
        .arg(&config)
        .arg(fixtures().join("echo.cwl"))
        .arg("--message=x")
        .arg("--resume")
        .arg(dir.join("work"))
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--resume requires checkpointing"),
        "stderr: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fresh_run_refuses_to_clobber_existing_journal() {
    let dir = scratch("noclobber");
    let wf = fixtures().join("diamond.cwl");
    let inputs = diamond_inputs();
    let (result, prepared, _) =
        run_checkpointed(&wf, &inputs, &dir, None, CountingDispatch::new(), 1);
    assert!(result.is_ok());
    drop(prepared);

    let hash = checkpoint::run_hash(&wf, &inputs).unwrap();
    let err = checkpoint::prepare(&settings(&dir), &dir, None, hash, "test")
        .err()
        .expect("a fresh run over a live journal must be refused");
    assert!(err.contains("already exists"), "{err}");
    assert!(err.contains("--resume"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
