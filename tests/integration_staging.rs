//! Data-plane correctness: zero-copy staging must be invisible to
//! workflow semantics.
//!
//! * Property tests: for arbitrary inputs over the diamond and scatter
//!   fixtures, `staging: {mode: link}` and `{mode: copy}` produce
//!   byte-identical workflow outputs (the zero-copy ladder is a pure
//!   optimization).
//! * Concurrency stress: two simultaneous runs pointed at one shared CAS
//!   directory — no clobbered objects, no leaked temp files, and the
//!   second run's identical content deduplicates instead of duplicating.

use cwl_parsl::config::{load_config_value, RunnerConfig};
use cwl_parsl::runner::run_tool_cli;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use yamlite::{Map, Value};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
}

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "staging-int-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A thread-pool runner config with the given `staging:` block.
fn config(workdir: &Path, mode: &str, store: Option<&Path>) -> RunnerConfig {
    let store_line = store
        .map(|d| format!("  dir: {}\n", d.display()))
        .unwrap_or_default();
    let yaml = format!(
        "executor:\n  kind: thread-pool\n  workers: 4\n\
         run:\n  workdir: {}\n  builtin_tools: true\n\
         staging:\n  mode: {mode}\n{store_line}",
        workdir.display()
    );
    load_config_value(&yamlite::parse_str(&yaml).unwrap()).unwrap()
}

/// Collect the bytes of every `class: File` in an output value, in
/// deterministic (traversal) order.
fn collect_output_bytes(value: &Value, out: &mut Vec<Vec<u8>>) {
    match value {
        Value::Map(m) => {
            if m.get("class").and_then(Value::as_str) == Some("File") {
                let path = m.get("path").and_then(Value::as_str).unwrap();
                out.push(std::fs::read(path).unwrap());
                return;
            }
            for (_, v) in m.iter() {
                collect_output_bytes(v, out);
            }
        }
        Value::Seq(s) => {
            for v in s {
                collect_output_bytes(v, out);
            }
        }
        _ => {}
    }
}

/// Run `wf` under the given staging mode in a fresh workdir; return every
/// file output's bytes.
fn run_mode(wf: &Path, inputs: &Map, mode: &str, tag: &str) -> Vec<Vec<u8>> {
    let dir = scratch(&format!("{tag}-{mode}"));
    let outcome = run_tool_cli(config(&dir, mode, None), wf, inputs)
        .unwrap_or_else(|e| panic!("{mode} run of {} failed: {e}", wf.display()));
    let mut bytes = Vec::new();
    collect_output_bytes(&Value::Map(outcome.outputs), &mut bytes);
    assert!(!bytes.is_empty(), "workflow produced no file outputs");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

fn write_images(dir: &Path, seeds: &[u64]) -> Value {
    let mut paths = Vec::new();
    for (i, seed) in seeds.iter().enumerate() {
        let p = dir.join(format!("img{i}.rimg"));
        imaging::write_rimg(&p, &imaging::gradient(24, 24, *seed)).unwrap();
        paths.push(Value::str(p.to_string_lossy().into_owned()));
    }
    Value::Seq(paths)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Diamond fixture: link-staged and copy-staged runs agree for any
    /// message.
    #[test]
    fn diamond_outputs_identical_across_modes(msg in "[A-Za-z0-9 .,!-]{1,32}") {
        let wf = fixtures().join("diamond.cwl");
        let mut inputs = Map::new();
        inputs.insert("message", Value::str(msg));
        let copy = run_mode(&wf, &inputs, "copy", "diamond");
        let link = run_mode(&wf, &inputs, "link", "diamond");
        prop_assert_eq!(copy, link);
    }

    /// Scatter fixture (inline Python): agreement for any word list.
    #[test]
    fn word_scatter_outputs_identical_across_modes(
        words in proptest::collection::vec("[a-z]{1,8}", 1..5usize)
    ) {
        let wf = fixtures().join("scatter_words_py.cwl");
        let mut inputs = Map::new();
        inputs.insert(
            "words",
            Value::Seq(words.iter().map(|w| Value::str(w.as_str())).collect()),
        );
        let copy = run_mode(&wf, &inputs, "copy", "words");
        let link = run_mode(&wf, &inputs, "link", "words");
        prop_assert_eq!(copy, link);
    }

    /// Image scatter: root `File[]` inputs (the staged-fan-out case) give
    /// identical pipeline outputs under every mode, auto included.
    #[test]
    fn image_scatter_outputs_identical_across_modes(
        seeds in proptest::collection::vec(0u64..100, 1..4usize),
        size in 8u32..24,
    ) {
        let wf = fixtures().join("scatter_images.cwl");
        let img_dir = scratch("imgs");
        let mut inputs = Map::new();
        inputs.insert("input_images", write_images(&img_dir, &seeds));
        inputs.insert("size", Value::Int(size as i64));
        inputs.insert("sepia", Value::Bool(true));
        inputs.insert("radius", Value::Int(1));
        let copy = run_mode(&wf, &inputs, "copy", "imgs");
        let link = run_mode(&wf, &inputs, "link", "imgs");
        let auto = run_mode(&wf, &inputs, "auto", "imgs");
        let _ = std::fs::remove_dir_all(&img_dir);
        prop_assert_eq!(&copy, &link);
        prop_assert_eq!(&copy, &auto);
    }
}

/// Count the objects in a CAS directory.
fn object_count(store: &Path) -> usize {
    let mut n = 0;
    for shard in std::fs::read_dir(store.join("objects")).unwrap() {
        let shard = shard.unwrap().path();
        if shard.is_dir() {
            n += std::fs::read_dir(shard).unwrap().count();
        }
    }
    n
}

/// Any temp files left under the store (partial copies that were never
/// atomically renamed in).
fn leaked_tmp(store: &Path) -> Vec<String> {
    let mut leaked = Vec::new();
    for shard in std::fs::read_dir(store.join("objects")).unwrap() {
        let shard = shard.unwrap().path();
        if !shard.is_dir() {
            continue;
        }
        for f in std::fs::read_dir(shard).unwrap() {
            let name = f.unwrap().file_name().to_string_lossy().into_owned();
            if name.contains("tmp") {
                leaked.push(name);
            }
        }
    }
    leaked
}

/// Two simultaneous runs sharing one CAS dir: both must finish with
/// correct outputs, leave no torn objects behind, and the duplicate
/// content must deduplicate (object count unchanged vs a single run).
#[test]
fn concurrent_runs_share_one_store_without_clobbering() {
    let base = scratch("shared");
    let store = base.join("cas");
    let wf = fixtures().join("scatter_images.cwl");
    let img_dir = base.join("imgs");
    std::fs::create_dir_all(&img_dir).unwrap();
    let mut inputs = Map::new();
    inputs.insert("input_images", write_images(&img_dir, &[1, 2, 3]));
    inputs.insert("size", Value::Int(12));
    inputs.insert("sepia", Value::Bool(false));
    inputs.insert("radius", Value::Int(1));

    // Warm run: establishes the expected outputs and the full object set.
    let warm_dir = base.join("warm");
    let warm = run_tool_cli(config(&warm_dir, "link", Some(&store)), &wf, &inputs).unwrap();
    let mut expected = Vec::new();
    collect_output_bytes(&Value::Map(warm.outputs), &mut expected);
    let warm_objects = object_count(&store);
    assert!(warm_objects > 0);

    // Two racing runs of the identical workload against the same store.
    let results: Vec<Vec<Vec<u8>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|k| {
                let wf = wf.clone();
                let inputs = inputs.clone();
                let run_dir = base.join(format!("racer{k}"));
                let cfg = config(&run_dir, "link", Some(&store));
                s.spawn(move || {
                    let outcome = run_tool_cli(cfg, &wf, &inputs)
                        .unwrap_or_else(|e| panic!("racer {k} failed: {e}"));
                    let mut bytes = Vec::new();
                    collect_output_bytes(&Value::Map(outcome.outputs), &mut bytes);
                    bytes
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (k, bytes) in results.iter().enumerate() {
        assert_eq!(bytes, &expected, "racer {k} diverged from the warm run");
    }
    assert_eq!(
        object_count(&store),
        warm_objects,
        "identical content must deduplicate, not multiply"
    );
    assert_eq!(leaked_tmp(&store), Vec::<String>::new());
    let _ = std::fs::remove_dir_all(&base);
}
