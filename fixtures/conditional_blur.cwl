# CWL v1.2 conditional execution: the blur step only runs when radius > 0
# (extension coverage beyond the paper's listings; v1.2 `when` semantics).
cwlVersion: v1.2
class: Workflow
doc: Resize an image and blur it only when a positive radius is requested.
requirements:
  - class: StepInputExpressionRequirement
inputs:
  input_image:
    type: File
  size:
    type: int
  radius:
    type: int
outputs:
  resized_output:
    type: File
    outputSource: resize_image/output_image
  blurred_output:
    type: File?
    outputSource: blur_image/output_image
steps:
  resize_image:
    run: resize_image.cwl
    in:
      input_image: input_image
      size: size
      output_image:
        valueFrom: "resized.rimg"
    out: [output_image]
  blur_image:
    run: blur_image.cwl
    when: $(inputs.radius > 0)
    in:
      input_image: resize_image/output_image
      radius: radius
      output_image:
        valueFrom: "blurred.rimg"
    out: [output_image]
