# E011: an int workflow input feeds a File tool input.
cwlVersion: v1.2
class: Workflow
inputs:
  count: int
outputs: {}
steps:
  consume:
    run:
      class: CommandLineTool
      baseCommand: cat
      inputs:
        f: File
      outputs: {}
    in:
      f: count
    out: []
