# E022: an expression references a name outside inputs/self/runtime.
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
arguments:
  - $(undeclared_name)
inputs: {}
outputs: {}
