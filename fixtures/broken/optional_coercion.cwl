# W103: an optional workflow input feeds a required tool input.
cwlVersion: v1.2
class: Workflow
inputs:
  x: string?
outputs: {}
steps:
  s:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        x: string
      outputs: {}
    in:
      x: x
    out: []
