# E015: unknown linkMerge method.
cwlVersion: v1.2
class: Workflow
inputs:
  a: string
  b: string
outputs: {}
steps:
  s:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        items: string[]
      outputs: {}
    in:
      items:
        source: [a, b]
        linkMerge: merge_zip
    out: []
