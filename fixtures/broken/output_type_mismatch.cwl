# E016: the workflow output declares int but its source produces a File.
cwlVersion: v1.2
class: Workflow
inputs:
  x: string
outputs:
  result:
    type: int
    outputSource: s/o
steps:
  s:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        x: string
      outputs:
        o:
          type: stdout
    in:
      x: x
    out: [o]
