# W101: step b contributes to no workflow output (strict-only failure).
cwlVersion: v1.2
class: Workflow
inputs:
  x: string
outputs:
  out:
    type: File
    outputSource: a/o
steps:
  a:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        x: string
      outputs:
        o:
          type: stdout
    in:
      x: x
    out: [o]
  b:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        x: string
      outputs:
        o:
          type: stdout
    in:
      x: x
    out: [o]
