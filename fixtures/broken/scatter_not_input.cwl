# E012: the scatter target is not one of the step's inputs.
cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  words: string[]
outputs: {}
steps:
  cap:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        item: string
      outputs: {}
    scatter: nothere
    in:
      item: words
    out: []
