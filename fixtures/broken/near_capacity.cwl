# W111: coresMin 6 demands >= 75% of an 8-core node — the tool schedules,
# but nothing co-schedules with it. Capacity-dependent: this file is only
# flagged when the analyzer is given an executor capacity (the corpus test
# supplies an 8-core node; without one the file is clean).
cwlVersion: v1.2
class: CommandLineTool
baseCommand: sort
requirements:
  - class: ResourceRequirement
    coresMin: 6
    ramMin: 2048
inputs:
  data: File
outputs:
  sorted:
    type: stdout
stdout: sorted.txt
