# E021: the InlinePythonRequirement expressionLib does not parse.
cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InlinePythonRequirement
    expressionLib:
      - |
        def broken(
baseCommand: echo
inputs: {}
outputs: {}
