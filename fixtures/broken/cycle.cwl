# E017: steps a and b feed each other.
cwlVersion: v1.2
class: Workflow
inputs: {}
outputs: {}
steps:
  a:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        x: Any
      outputs:
        o:
          type: stdout
    in:
      x: b/o
    out: [o]
  b:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        x: Any
      outputs:
        o:
          type: stdout
    in:
      x: a/o
    out: [o]
