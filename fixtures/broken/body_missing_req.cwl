# E023: a ${...} body without any inline-expression requirement.
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
arguments:
  - ${ return 42; }
inputs: {}
outputs: {}
