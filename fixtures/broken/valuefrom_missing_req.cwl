# E024: valueFrom without StepInputExpressionRequirement.
cwlVersion: v1.2
class: Workflow
inputs:
  x: string
outputs: {}
steps:
  s:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        y: string
      outputs: {}
    in:
      y:
        source: x
        valueFrom: $(self)
    out: []
