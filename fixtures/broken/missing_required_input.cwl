# E026: the run target's required input f is never wired.
cwlVersion: v1.2
class: Workflow
inputs: {}
outputs: {}
steps:
  s:
    run:
      class: CommandLineTool
      baseCommand: cat
      inputs:
        f: File
      outputs: {}
    in: {}
    out: []
