# E013: scatter over a plain string workflow input.
cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  word: string
outputs: {}
steps:
  cap:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        item: string
      outputs: {}
    scatter: item
    in:
      item: word
    out: []
