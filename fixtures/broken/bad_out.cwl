# E018: the step lists an out entry the run target does not declare.
cwlVersion: v1.2
class: Workflow
inputs: {}
outputs: {}
steps:
  s:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs: {}
      outputs: {}
    in: {}
    out: [nope]
