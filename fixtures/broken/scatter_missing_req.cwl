# E014: scatter without ScatterFeatureRequirement.
cwlVersion: v1.2
class: Workflow
inputs:
  words: string[]
outputs: {}
steps:
  cap:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        item: string
      outputs: {}
    scatter: item
    in:
      item: words
    out: []
