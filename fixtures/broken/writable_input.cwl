# W110: a writable InitialWorkDirRequirement entry referencing a staged
# File input — under the content-addressed data plane an in-place write
# would corrupt the object every other consumer links to.
cwlVersion: v1.2
class: CommandLineTool
baseCommand: [python3, process.py]
requirements:
  - class: InitialWorkDirRequirement
    listing:
      - entry: $(inputs.image)
        writable: true
inputs:
  image: File
outputs:
  processed:
    type: File
    outputBinding:
      glob: processed.png
