# E032: coresMin 64 exceeds coresMax 8 — self-contradictory, no schedule
# satisfies it regardless of executor capacity.
cwlVersion: v1.2
class: Workflow
inputs:
  msg: string
outputs:
  out:
    type: File
    outputSource: crunch/o
steps:
  crunch:
    run:
      class: CommandLineTool
      baseCommand: echo
      requirements:
        - class: ResourceRequirement
          coresMin: 64
          coresMax: 8
      inputs:
        m: string
      outputs:
        o:
          type: stdout
    in:
      m: msg
    out: [o]
