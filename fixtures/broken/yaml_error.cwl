# E001: this is not well-formed YAML.
cwlVersion: v1.2
class: Workflow
inputs:
    x: string
  badly_dedented: true
