# E020: unparseable JavaScript in a valueFrom expression.
cwlVersion: v1.2
class: Workflow
requirements:
  - class: StepInputExpressionRequirement
inputs:
  x: string
outputs: {}
steps:
  s:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        y: string
      outputs: {}
    in:
      y:
        source: x
        valueFrom: $(inputs.x +)
    out: []
