# E010: a step input names a source that does not exist.
cwlVersion: v1.2
class: Workflow
inputs: {}
outputs: {}
steps:
  s:
    run:
      class: CommandLineTool
      baseCommand: cat
      inputs:
        f:
          type: File
          default:
            class: File
            path: /dev/null
      outputs: {}
    in:
      f: nonexistent
    out: []
