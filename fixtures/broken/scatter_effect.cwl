# E031: every scatter shard of `upper` runs concurrently, and all of them
# write the same absolute path /tmp/upper.txt — the name does not vary
# per shard.
cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  words: string[]
outputs:
  shouts:
    type: File[]
    outputSource: upper/o
steps:
  upper:
    run:
      class: CommandLineTool
      baseCommand: tr
      stdout: /tmp/upper.txt
      inputs:
        w: string
      outputs:
        o:
          type: stdout
    scatter: w
    in:
      w: words
    out: [o]
