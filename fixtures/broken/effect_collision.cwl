# E030: audit_a and audit_b both write ../audit.log (the shared run
# directory, escaping their private task dirs) with no dataflow edge
# ordering them — last writer wins nondeterministically.
cwlVersion: v1.2
class: Workflow
inputs:
  msg: string
outputs:
  a_out:
    type: File
    outputSource: audit_a/o
  b_out:
    type: File
    outputSource: audit_b/o
steps:
  audit_a:
    run:
      class: CommandLineTool
      baseCommand: echo
      stdout: ../audit.log
      inputs:
        m: string
      outputs:
        o:
          type: stdout
    in:
      m: msg
    out: [o]
  audit_b:
    run:
      class: CommandLineTool
      baseCommand: echo
      stdout: ../audit.log
      inputs:
        m: string
      outputs:
        o:
          type: stdout
    in:
      m: msg
    out: [o]
