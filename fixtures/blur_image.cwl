# Stage 3 of the paper's image-processing workflow (§IV-A): blur with a
# given radius.
cwlVersion: v1.2
class: CommandLineTool
id: blur_image
doc: Blur the image with the given radius.
baseCommand: [imgtool, blur]
inputs:
  input_image:
    type: File
    inputBinding:
      position: 1
  output_image:
    type: string
    inputBinding:
      position: 2
  radius:
    type: int
    doc: Blur radius
    inputBinding:
      position: 3
      prefix: --radius
outputs:
  output_image:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
