# The paper's Listing 6: an InlinePythonRequirement `validate:` hook that
# verifies the input file is a CSV before the tool executes.
cwlVersion: v1.2
class: CommandLineTool
id: validate_csv
requirements:
  - class: InlinePythonRequirement
    expressionLib: |
      def valid_file(file, ext):
          """
          Check if a file is valid.

          Args:
              file (str): Path to the file.
              ext (str): Expected file extension.
          Raises:
              Exception: If the file is invalid.
          """
          if not file.lower().endswith(ext):
              raise Exception(f"Invalid file. Expected '{ext}'")
          return True
baseCommand: cat
inputs:
  data_file:
    type: File
    validate: |
      f"{valid_file($(inputs.data_file.basename), '.csv')}"
    inputBinding:
      position: 1
outputs:
  validated_output:
    type: stdout
stdout: validated.txt
