# The paper's Listing 5: an InlinePythonRequirement expression capitalizing
# the words of a message before echoing it.
cwlVersion: v1.2
class: CommandLineTool
id: capitalize_message_py
requirements:
  - class: InlinePythonRequirement
    expressionLib: |
      def capitalize_words(message):
          """
          Capitalize each word in the given message.

          Args:
              message (str): The input message.
          Returns:
              str: The message with each word capitalized.
          """
          return message.title()
baseCommand: echo
inputs:
  message:
    type: string
arguments:
  - f"{capitalize_words($(inputs.message))}"
outputs:
  output:
    type: stdout
stdout: capitalized.txt
