# Stage 2 of the paper's image-processing workflow (§IV-A): apply a sepia
# filter controlled by a boolean parameter.
cwlVersion: v1.2
class: CommandLineTool
id: filter_image
doc: Apply (or skip) a sepia filter.
baseCommand: [imgtool, sepia]
inputs:
  input_image:
    type: File
    inputBinding:
      position: 1
  output_image:
    type: string
    inputBinding:
      position: 2
  sepia:
    type: boolean
    doc: Whether to apply the sepia filter
    inputBinding:
      position: 3
      prefix: --sepia
      separate: true
      valueFrom: $(self ? 'true' : 'false')
outputs:
  output_image:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
