# Fig. 2 driver, JavaScript variant: scatter the capitalize tool over the
# word list. Each scatter instance evaluates one JS expression.
cwlVersion: v1.2
class: Workflow
doc: Capitalize every word of a list using InlineJavascript expressions.
requirements:
  - class: ScatterFeatureRequirement
inputs:
  words:
    type: string[]
outputs:
  capitalized:
    type: File[]
    outputSource: cap/output
steps:
  cap:
    run: capitalize_word_js.cwl
    scatter: word
    in:
      word: words
      all_words: words
    out: [output]
