# The §VI evaluation wrapper: scatter the Listing-3 image pipeline over a
# list of images so every CWL runner can exploit the independent per-image
# parallelism.
cwlVersion: v1.2
class: Workflow
doc: Process a list of images by scattering the image pipeline sub-workflow.
requirements:
  - class: ScatterFeatureRequirement
  - class: SubworkflowFeatureRequirement
  - class: StepInputExpressionRequirement
inputs:
  input_images:
    type: File[]
    doc: The images to process
  size:
    type: int
  sepia:
    type: boolean
  radius:
    type: int
outputs:
  final_outputs:
    type: File[]
    outputSource: per_image/final_output
steps:
  per_image:
    run: image_pipeline.cwl
    scatter: input_image
    in:
      input_image: input_images
      size: size
      sepia: sepia
      radius: radius
    out: [final_output]
