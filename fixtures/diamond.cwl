# Diamond DAG for the golden-trace harness: one producer fans out to two
# parallel copies whose outputs join in a final concatenation.
cwlVersion: v1.2
class: Workflow
doc: Echo a message, copy it along two branches, and join the branches.
inputs:
  message:
    type: string
outputs:
  joined:
    type: File
    outputSource: join/output
steps:
  seed:
    run: echo.cwl
    in:
      message: message
    out: [output]
  left:
    run: copy_text.cwl
    in:
      text: seed/output
    out: [output]
  right:
    run: copy_text.cwl
    in:
      text: seed/output
    out: [output]
  join:
    run: join_text.cwl
    in:
      left: left/output
      right: right/output
    out: [output]
