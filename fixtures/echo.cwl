# The paper's Listing 1: CommandLineTool definition for "echo".
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message:
    type: string
    default: "Hello World"
    inputBinding:
      position: 1
outputs:
  output:
    type: stdout
stdout: hello.txt
