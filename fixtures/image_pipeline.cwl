# The paper's Listing 3: the three-stage image-processing Workflow
# (resize → sepia filter → blur).
cwlVersion: v1.2
class: Workflow
doc: This CWL workflow processes images by performing a series of tasks - resizing, filtering, and blurring
requirements:
  - class: StepInputExpressionRequirement
inputs:
  input_image:
    type: File
    doc: The original image to be processed
  size:
    type: int
    doc: The target sizeXsize for resizing
  sepia:
    type: boolean
    doc: Whether to apply the filter
  radius:
    type: int
    doc: The amount of blur to apply
outputs:
  final_output:
    type: File
    outputSource: blur_image/output_image
steps:
  resize_image:
    run: resize_image.cwl
    in:
      input_image: input_image
      size: size
      output_image:
        valueFrom: "resized.rimg"
    out: [output_image]
  filter_image:
    run: filter_image.cwl
    in:
      input_image: resize_image/output_image
      sepia: sepia
      output_image:
        valueFrom: "filtered.rimg"
    out: [output_image]
  blur_image:
    run: blur_image.cwl
    in:
      input_image: filter_image/output_image
      radius: radius
      output_image:
        valueFrom: "blurred.rimg"
    out: [output_image]
