# Fig. 2 workload, JavaScript variant: capitalize one word with an inline
# JavaScript expression (the CWL-spec path; cwltool/Toil evaluate this by
# spawning a node process and piping the full input object in as JSON).
# `all_words` carries the complete word list into the tool's input object,
# as the paper's scaling workload does, so each evaluation marshals O(n)
# context.
cwlVersion: v1.2
class: CommandLineTool
id: capitalize_word_js
doc: Capitalize a single word via an InlineJavascript expression.
requirements:
  - class: InlineJavascriptRequirement
baseCommand: echo
arguments:
  - ${ return inputs.word.charAt(0).toUpperCase() + inputs.word.slice(1); }
inputs:
  word:
    type: string
  all_words:
    type: string[]
outputs:
  output:
    type: stdout
stdout: word.txt
