# Fig. 2 driver, inline-Python variant.
cwlVersion: v1.2
class: Workflow
doc: Capitalize every word of a list using InlinePython expressions.
requirements:
  - class: ScatterFeatureRequirement
inputs:
  words:
    type: string[]
outputs:
  capitalized:
    type: File[]
    outputSource: cap/output
steps:
  cap:
    run: capitalize_word_py.cwl
    scatter: word
    in:
      word: words
      all_words: words
    out: [output]
