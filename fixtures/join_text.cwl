# Diamond-DAG building block: concatenate the two branch outputs.
cwlVersion: v1.2
class: CommandLineTool
baseCommand: cat
inputs:
  left:
    type: File
    inputBinding:
      position: 1
  right:
    type: File
    inputBinding:
      position: 2
outputs:
  output:
    type: stdout
stdout: joined.txt
