# Diamond-DAG building block: pass a text file through unchanged.
cwlVersion: v1.2
class: CommandLineTool
baseCommand: cat
inputs:
  text:
    type: File
    inputBinding:
      position: 1
outputs:
  output:
    type: stdout
stdout: copy.txt
