# Stage 1 of the paper's image-processing workflow (§IV-A): resize an image
# to size×size. Backed by this repository's imgtool (PNG → .rimg substitution
# documented in DESIGN.md).
cwlVersion: v1.2
class: CommandLineTool
id: resize_image
doc: Resize an input image to the specified square dimensions.
baseCommand: [imgtool, resize]
inputs:
  input_image:
    type: File
    doc: The image to resize
    inputBinding:
      position: 1
  output_image:
    type: string
    doc: Name of the resized output file
    inputBinding:
      position: 2
  size:
    type: int
    doc: Target size (width and height)
    inputBinding:
      position: 3
      prefix: --size
outputs:
  output_image:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
