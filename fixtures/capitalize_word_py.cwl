# Fig. 2 workload, inline-Python variant (the paper's §V proposal):
# the same capitalization, evaluated in-process by parsl-cwl.
cwlVersion: v1.2
class: CommandLineTool
id: capitalize_word_py
doc: Capitalize a single word via an InlinePython expression.
requirements:
  - class: InlinePythonRequirement
    expressionLib: |
      def capitalize_word(word):
          """
          Capitalize the given word.

          Args:
              word (str): The input word.
          Returns:
              str: The word with its first letter capitalized.
          """
          return word.title()
baseCommand: echo
arguments:
  - f"{capitalize_word($(inputs.word))}"
inputs:
  word:
    type: string
  all_words:
    type: string[]
outputs:
  output:
    type: stdout
stdout: word.txt
